//! Gamma distribution.

use super::{uniform_open01, Continuous, Normal, Support};
use crate::error::{ProbError, Result};
use crate::special::{inv_reg_lower_gamma, ln_gamma, reg_lower_gamma};
use crate::rng::RngCore;

/// Gamma distribution with shape `k` and *rate* `beta` (mean `k / beta`).
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, Gamma};
/// let g = Gamma::new(2.0, 0.5)?;
/// assert!((g.mean() - 4.0).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a gamma distribution with the given shape and rate.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if either parameter is not
    /// strictly positive and finite.
    pub fn new(shape: f64, rate: f64) -> Result<Self> {
        if !shape.is_finite() || !rate.is_finite() || shape <= 0.0 || rate <= 0.0 {
            return Err(ProbError::InvalidParameter(format!(
                "Gamma requires shape > 0 and rate > 0, got ({shape}, {rate})"
            )));
        }
        Ok(Self { shape, rate })
    }

    /// Creates a gamma distribution from shape and *scale* `theta = 1/rate`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] under the same conditions as
    /// [`Gamma::new`].
    pub fn from_shape_scale(shape: f64, scale: f64) -> Result<Self> {
        if scale <= 0.0 || !scale.is_finite() {
            return Err(ProbError::InvalidParameter(format!(
                "Gamma requires scale > 0, got {scale}"
            )));
        }
        Self::new(shape, 1.0 / scale)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter `beta`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Marsaglia–Tsang sampler for shape >= 1 (rate 1).
    fn sample_standard(&self, rng: &mut dyn RngCore) -> f64 {
        let shape = self.shape;
        if shape < 1.0 {
            // Boost: X_a = X_{a+1} * U^{1/a}.
            let boosted = Gamma { shape: shape + 1.0, rate: 1.0 };
            let x = boosted.sample_standard(rng);
            let u = uniform_open01(rng);
            return x * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let norm = Normal::standard();
        loop {
            let z = norm.sample(rng);
            let v = 1.0 + c * z;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = uniform_open01(rng);
            if u < 1.0 - 0.0331 * z.powi(4) || u.ln() < 0.5 * z * z + d * (1.0 - v3 + v3.ln()) {
                return d * v3;
            }
        }
    }
}

impl Continuous for Gamma {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x < 0.0 || (x == 0.0 && self.shape < 1.0) { // tidy: allow(float-eq)
            f64::NEG_INFINITY
        } else if x == 0.0 { // tidy: allow(float-eq)
            if self.shape == 1.0 { // tidy: allow(float-eq)
                self.rate.ln()
            } else {
                f64::NEG_INFINITY
            }
        } else {
            self.shape * self.rate.ln() + (self.shape - 1.0) * x.ln()
                - self.rate * x
                - ln_gamma(self.shape)
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            reg_lower_gamma(self.shape, self.rate * x)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        inv_reg_lower_gamma(self.shape, p) / self.rate
    }

    fn mean(&self) -> f64 {
        self.shape / self.rate
    }

    fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }

    fn support(&self) -> Support {
        Support::non_negative()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.sample_standard(rng) / self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, 0.0).is_err());
        assert!(Gamma::from_shape_scale(1.0, -2.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        use crate::dist::Exponential;
        let g = Gamma::new(1.0, 2.0).unwrap();
        let e = Exponential::new(2.0).unwrap();
        for &x in &[0.1, 0.5, 1.0, 3.0] {
            assert!((g.pdf(x) - e.pdf(x)).abs() < 1e-12);
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_round_trip() {
        let g = Gamma::new(3.5, 1.7).unwrap();
        testutil::check_quantile_cdf_round_trip(&g, &[0.3, 1.0, 2.0, 5.0], 1e-8);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let g = Gamma::new(2.5, 1.0).unwrap();
        testutil::check_pdf_integrates_to_cdf(&g, 0.1, 6.0, 1e-9);
    }

    #[test]
    fn sampling_moments_shape_above_one() {
        let g = Gamma::new(4.0, 2.0).unwrap();
        testutil::check_sample_moments(&g, 31, 300_000, 5.0);
    }

    #[test]
    fn sampling_moments_shape_below_one() {
        let g = Gamma::new(0.5, 1.0).unwrap();
        testutil::check_sample_moments(&g, 37, 400_000, 5.0);
    }
}
