/root/repo/target/debug/examples/strategy_workflow-d5fbc8593b3c95d3.d: examples/strategy_workflow.rs

/root/repo/target/debug/examples/strategy_workflow-d5fbc8593b3c95d3: examples/strategy_workflow.rs

examples/strategy_workflow.rs:
