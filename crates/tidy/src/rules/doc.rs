//! Rule `doc`: public items declared in a crate's `lib.rs` must carry
//! doc comments. The crate root is each crate's front door; an
//! undocumented public item there is an API whose meaning the caller
//! must guess — unnecessary epistemic uncertainty at the boundary.
//!
//! Scope is deliberately `lib.rs` only: submodule items surface through
//! documented re-exports, and policing every file would mostly generate
//! noise. `pub use` re-exports and `pub mod` declarations with inline
//! docs elsewhere are exempt.

use crate::{test_block_lines, FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct DocCoverage;

/// Item keywords whose `pub` declarations require docs.
const ITEM_KINDS: &[&str] =
    &["fn", "struct", "enum", "trait", "const", "static", "type", "mod"];

/// Extracts `(kind, name)` when the line declares a documentable public
/// item.
fn pub_item(line: &str) -> Option<(&'static str, String)> {
    let t = line.trim_start();
    let rest = t.strip_prefix("pub ")?.trim_start_matches("const ").trim_start_matches("unsafe ");
    for kind in ITEM_KINDS {
        if let Some(tail) = rest.strip_prefix(kind).and_then(|r| r.strip_prefix(' ')) {
            let name: String = tail
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                return Some((kind, name));
            }
        }
    }
    None
}

/// True when the contiguous doc/attribute block above `idx` contains a
/// `///` doc line.
fn has_doc_above(lines: &[&str], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        let above = lines[i - 1].trim_start();
        if above.starts_with("///") {
            return true;
        }
        if above.starts_with("#[") || above.starts_with("#![") {
            i -= 1;
        } else {
            return false;
        }
    }
    false
}

impl Lint for DocCoverage {
    fn name(&self) -> &'static str {
        "doc"
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.path.file_name().map(|n| n != "lib.rs").unwrap_or(true) {
            return;
        }
        let in_test = test_block_lines(&file.content);
        let lines: Vec<&str> = file.content.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            let Some((kind, name)) = pub_item(line) else { continue };
            // Module declarations are fine when the module file opens
            // with `//!` docs; requiring `///` here would double-doc.
            if kind == "mod" && line.trim_end().ends_with(';') {
                continue;
            }
            if !has_doc_above(&lines, i) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: i + 1,
                    rule: self.name(),
                    message: format!("public {kind} `{name}` has no doc comment"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::new(path, src, FileKind::RustLibrary);
        let mut out = Vec::new();
        DocCoverage.check(&file, &mut out);
        out
    }

    #[test]
    fn undocumented_public_items_fire() {
        let bad = "\
pub fn naked() {}
pub struct Bare;
pub enum Also { X }
";
        let out = run("crates/x/src/lib.rs", bad);
        assert_eq!(out.len(), 3);
        assert!(out[0].message.contains("naked"));
    }

    #[test]
    fn documented_items_pass_including_through_attributes() {
        let good = "\
/// Does the thing.
pub fn covered() {}

/// A type.
#[derive(Debug)]
pub struct T;
";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn mod_declarations_and_pub_use_are_exempt() {
        let src = "\
pub mod dist;
pub use error::ProbError;
";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn only_lib_rs_is_in_scope() {
        assert!(run("crates/x/src/other.rs", "pub fn naked() {}\n").is_empty());
    }
}
