//! The workspace-unified error type.
//!
//! Every substrate crate keeps its own focused error enum (that is the
//! right boundary for a library you can use stand-alone), but suite-level
//! code that wires several substrates together — the [`crate::propagator`]
//! engine layer, examples, integration tests — would otherwise juggle nine
//! incompatible error types. [`Error`] wraps each of them behind one enum
//! with `From` impls, so `?` composes across every layer of the toolkit.

use std::fmt;

/// The unified error of the `sysunc` toolkit: local failures of the
/// taxonomy/modeling/case-study/propagator layers plus a wrapping variant
/// per substrate crate.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An input slice or parameter was invalid.
    InvalidInput(String),
    /// Construction of the built-in paper case study failed (only possible
    /// if a substrate invariant is violated).
    CaseStudy(String),
    /// A propagation engine cannot represent the request (e.g. a purely
    /// epistemic interval input handed to a sampling engine).
    Unsupported(String),
    /// Probability substrate failure.
    Prob(sysunc_prob::ProbError),
    /// Linear-algebra substrate failure.
    Algebra(sysunc_algebra::AlgebraError),
    /// Sampling/design-of-experiment failure.
    Sampling(sysunc_sampling::SamplingError),
    /// Polynomial-chaos failure.
    Pce(sysunc_pce::PceError),
    /// Evidence-theory failure.
    Evidence(sysunc_evidence::EvidenceError),
    /// Bayesian-network failure.
    BayesNet(sysunc_bayesnet::BnError),
    /// Fault-tree failure.
    Fta(sysunc_fta::FtaError),
    /// Orbital-simulator failure.
    Orbital(sysunc_orbital::OrbitalError),
    /// Perception-chain failure.
    Perception(sysunc_perception::PerceptionError),
}

/// Backwards-compatible name from before the error unification; variant
/// paths like `SysuncError::InvalidInput` keep working through the alias.
pub type SysuncError = Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            Error::CaseStudy(msg) => write!(f, "case study construction failed: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported propagation request: {msg}"),
            Error::Prob(e) => write!(f, "prob: {e}"),
            Error::Algebra(e) => write!(f, "algebra: {e}"),
            Error::Sampling(e) => write!(f, "sampling: {e}"),
            Error::Pce(e) => write!(f, "pce: {e}"),
            Error::Evidence(e) => write!(f, "evidence: {e}"),
            Error::BayesNet(e) => write!(f, "bayesnet: {e}"),
            Error::Fta(e) => write!(f, "fta: {e}"),
            Error::Orbital(e) => write!(f, "orbital: {e}"),
            Error::Perception(e) => write!(f, "perception: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::InvalidInput(_) | Error::CaseStudy(_) | Error::Unsupported(_) => None,
            Error::Prob(e) => Some(e),
            Error::Algebra(e) => Some(e),
            Error::Sampling(e) => Some(e),
            Error::Pce(e) => Some(e),
            Error::Evidence(e) => Some(e),
            Error::BayesNet(e) => Some(e),
            Error::Fta(e) => Some(e),
            Error::Orbital(e) => Some(e),
            Error::Perception(e) => Some(e),
        }
    }
}

impl From<sysunc_prob::ProbError> for Error {
    fn from(e: sysunc_prob::ProbError) -> Self {
        Error::Prob(e)
    }
}

impl From<sysunc_algebra::AlgebraError> for Error {
    fn from(e: sysunc_algebra::AlgebraError) -> Self {
        Error::Algebra(e)
    }
}

impl From<sysunc_sampling::SamplingError> for Error {
    fn from(e: sysunc_sampling::SamplingError) -> Self {
        Error::Sampling(e)
    }
}

impl From<sysunc_pce::PceError> for Error {
    fn from(e: sysunc_pce::PceError) -> Self {
        Error::Pce(e)
    }
}

impl From<sysunc_evidence::EvidenceError> for Error {
    fn from(e: sysunc_evidence::EvidenceError) -> Self {
        Error::Evidence(e)
    }
}

impl From<sysunc_bayesnet::BnError> for Error {
    fn from(e: sysunc_bayesnet::BnError) -> Self {
        Error::BayesNet(e)
    }
}

impl From<sysunc_fta::FtaError> for Error {
    fn from(e: sysunc_fta::FtaError) -> Self {
        Error::Fta(e)
    }
}

impl From<sysunc_orbital::OrbitalError> for Error {
    fn from(e: sysunc_orbital::OrbitalError) -> Self {
        Error::Orbital(e)
    }
}

impl From<sysunc_perception::PerceptionError> for Error {
    fn from(e: sysunc_perception::PerceptionError) -> Self {
        Error::Perception(e)
    }
}

/// Convenience result alias for the `sysunc` crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn question_mark_composes_across_substrates() {
        fn chain() -> Result<f64> {
            let d = sysunc_prob::dist::Normal::new(0.0, 1.0)?;
            let i = sysunc_evidence::Interval::new(0.0, 1.0)?;
            Ok(sysunc_prob::dist::Continuous::mean(&d) + i.midpoint())
        }
        assert!((chain().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wrapped_errors_convert_display_and_source() {
        let e: Error = sysunc_prob::dist::Normal::new(0.0, -1.0).unwrap_err().into();
        assert!(matches!(e, Error::Prob(_)));
        assert!(e.to_string().starts_with("prob: "));
        assert!(std::error::Error::source(&e).is_some());

        let e: Error = sysunc_evidence::Interval::new(2.0, 1.0).unwrap_err().into();
        assert!(matches!(e, Error::Evidence(_)));

        let local = Error::Unsupported("interval input to a sampling engine".into());
        assert!(std::error::Error::source(&local).is_none());
    }
}
