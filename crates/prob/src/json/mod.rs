//! Minimal hand-rolled JSON: a value tree, a recursive-descent parser and
//! an emitter, replacing `serde`/`serde_json` so model artifacts (networks,
//! fault trees, budgets, registers) persist without external dependencies.
//!
//! Numbers are kept in two variants — [`Json::U64`] for unsigned integer
//! tokens and [`Json::Num`] for everything else — so 64-bit subset bitmasks
//! (Dempster–Shafer focal elements) round-trip exactly even beyond 2^53.
//!
//! ```
//! use sysunc_prob::json::{self, Json};
//! let v = json::parse(r#"{"lo": 0.25, "tags": ["a", "b"], "n": null}"#)?;
//! assert_eq!(v.get("lo").and_then(Json::as_f64), Some(0.25));
//! assert_eq!(json::parse(&v.to_string())?, v);
//! # Ok::<(), json::JsonError>(())
//! ```

use std::fmt;

pub mod writer;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer token (lossless for u64 bitmasks).
    U64(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key (`None` for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::U64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a `u64` (floats only when exactly integral).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(n) => Some(*n),
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => { // tidy: allow(float-eq)
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Compact single-line rendering.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn emit_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::Num(x) => out.push_str(&emit_f64(*x)),
            Json::Str(s) => emit_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) if members.is_empty() => out.push_str("{}"),
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    emit_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.emit())
    }
}

fn emit_f64(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        let s = format!("{x:?}");
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        // JSON has no Inf/NaN; encode as null like serde_json does.
        "null".to_string()
    }
}

fn emit_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse or decode failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonError {
    /// The input is not well-formed JSON.
    Parse {
        /// Byte offset of the failure.
        at: usize,
        /// What went wrong.
        message: String,
    },
    /// The JSON is well-formed but does not match the expected shape.
    Decode(String),
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Parse { at, message } => write!(f, "JSON parse error at byte {at}: {message}"),
            JsonError::Decode(message) => write!(f, "JSON decode error: {message}"),
        }
    }
}

impl std::error::Error for JsonError {}

impl JsonError {
    /// Convenience constructor for shape mismatches.
    pub fn decode<S: Into<String>>(message: S) -> Self {
        JsonError::Decode(message.into())
    }

    /// Decode error for a missing object member.
    pub fn missing(key: &str) -> Self {
        JsonError::Decode(format!("missing member '{key}'"))
    }
}

/// Parses a complete JSON document (rejects trailing garbage).
///
/// # Errors
///
/// Returns [`JsonError::Parse`] with a byte offset for malformed input.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

/// Nesting depth beyond which the parser refuses (stack-overflow guard).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError::Parse { at: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar (the input is a &str, so
                    // byte boundaries are guaranteed valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = match s.chars().next() {
                        Some(c) => c,
                        None => return Err(self.err("unterminated string")),
                    };
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the `XXXX` of a `\u` escape (after the `u`); handles
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a low surrogate right behind it.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("invalid unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral && !text.starts_with('-') {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("invalid number"))
    }
}

/// Conversion of a value into its JSON representation.
pub trait ToJson {
    /// Builds the JSON value tree for `self`.
    fn to_json(&self) -> Json;
}

/// Reconstruction of a value from its JSON representation.
pub trait FromJson: Sized {
    /// Decodes `v`, validating shape and invariants.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError::Decode`] when `v` does not represent a valid
    /// instance.
    fn from_json(v: &Json) -> Result<Self, JsonError>;
}

/// Serializes a value to a compact JSON string (mirrors
/// `serde_json::to_string`, but infallible: emission cannot fail).
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().emit()
}

/// Serializes a value to an indented JSON string.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().emit_pretty()
}

/// Parses a JSON string and decodes it into `T`.
///
/// # Errors
///
/// Returns [`JsonError::Parse`] for malformed JSON and
/// [`JsonError::Decode`] for shape mismatches.
pub fn from_str<T: FromJson>(text: &str) -> Result<T, JsonError> {
    T::from_json(&parse(text)?)
}

// ---------------------------------------------------------------------
// Blanket and primitive impls.
// ---------------------------------------------------------------------

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        Ok(v.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_f64().ok_or_else(|| JsonError::decode("expected number"))
    }
}

impl ToJson for u64 {
    fn to_json(&self) -> Json {
        Json::U64(*self)
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_u64().ok_or_else(|| JsonError::decode("expected unsigned integer"))
    }
}

impl ToJson for usize {
    fn to_json(&self) -> Json {
        Json::U64(*self as u64)
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_usize().ok_or_else(|| JsonError::decode("expected unsigned integer"))
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_bool().ok_or_else(|| JsonError::decode("expected bool"))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_str().map(str::to_string).ok_or_else(|| JsonError::decode("expected string"))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        v.as_arr()
            .ok_or_else(|| JsonError::decode("expected array"))?
            .iter()
            .map(T::from_json)
            .collect()
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(x) => x.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Self, JsonError> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json(v).map(Some)
        }
    }
}

/// Builds a [`Json::Obj`] from `(key, value)` pairs.
pub fn obj<const N: usize>(members: [(&str, Json); N]) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Fetches a required member of an object and decodes it.
///
/// # Errors
///
/// Returns [`JsonError::Decode`] when the member is missing or mistyped.
pub fn field<T: FromJson>(v: &Json, key: &str) -> Result<T, JsonError> {
    T::from_json(v.get(key).ok_or_else(|| JsonError::missing(key))?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::U64(42));
        assert_eq!(parse("-1.5").unwrap(), Json::Num(-1.5));
        assert_eq!(parse("2e3").unwrap(), Json::Num(2000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_structures_with_whitespace() {
        let v = parse(" { \"a\" : [ 1 , 2.5 , null ] , \"b\" : { } } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap(), &Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "tru", "1.2.3", "\"unterminated", "{\"a\"}", "[1] x", "nul"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn u64_masks_round_trip_exactly() {
        let big = u64::MAX;
        let v = parse(&Json::U64(big).emit()).unwrap();
        assert_eq!(v.as_u64(), Some(big));
    }

    #[test]
    fn floats_round_trip_shortest() {
        for x in [0.1, 1.0 / 3.0, -2.5e-8, 1e300, 0.0] {
            let v = parse(&Json::Num(x).emit()).unwrap();
            assert_eq!(v.as_f64(), Some(x), "round trip of {x}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote\" backslash\\ newline\n tab\t unicode→ control\u{1}";
        let v = parse(&Json::Str(s.to_string()).emit()).unwrap();
        assert_eq!(v.as_str(), Some(s));
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""A""#).unwrap().as_str(), Some("A"));
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(parse(r#""𝄞""#).unwrap().as_str(), Some("𝄞"));
        assert!(parse(r#""\ud834""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = obj([
            ("name", Json::Str("x".into())),
            ("vals", Json::Arr(vec![Json::U64(1), Json::Num(0.5)])),
        ]);
        let pretty = v.emit_pretty();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn nesting_guard_trips() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn option_and_vec_round_trip() {
        let xs: Vec<Option<f64>> = vec![Some(1.5), None, Some(-2.0)];
        let back: Vec<Option<f64>> = from_str(&to_string(&xs)).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn non_finite_floats_emit_null() {
        assert_eq!(Json::Num(f64::NAN).emit(), "null");
        assert_eq!(Json::Num(f64::INFINITY).emit(), "null");
    }
}
