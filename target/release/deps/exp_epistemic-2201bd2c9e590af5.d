/root/repo/target/release/deps/exp_epistemic-2201bd2c9e590af5.d: crates/bench/src/bin/exp_epistemic.rs

/root/repo/target/release/deps/exp_epistemic-2201bd2c9e590af5: crates/bench/src/bin/exp_epistemic.rs

crates/bench/src/bin/exp_epistemic.rs:
