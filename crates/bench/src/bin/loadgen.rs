//! Self-hosting load generator for the propagation server.
//!
//! ```text
//! loadgen [--clients N] [--requests N] [--engine NAME] [--model NAME]
//!         [--budget N] [--mode cold|cache-hot|batch|all]
//!         [--batch-size N] [--hot-seeds N]
//!         [--addr HOST:PORT] [--out FILE] [--fleet N]
//! ```
//!
//! Without `--addr` the benchmark starts its own server on an
//! ephemeral loopback port, drives it, and shuts it down gracefully.
//! `--mode all` (the default) runs every mode sequentially against the
//! same server — cold first, so the baseline sees an empty cache — and
//! writes the `sysunc-bench-serve/2` suite document to `--out`
//! (default `BENCH_serve.json`). A single `--mode` writes that mode's
//! suite of one.
//!
//! `--fleet N` self-hosts an N-shard [`sysunc_fleet::Fleet`] instead
//! of a single in-process server and drives the same modes through the
//! router; result keys gain a `fleet-` prefix (see
//! [`LoadgenConfig::mode_key`]). During the cache-hot mode a shard is
//! SIGKILLed once a quarter of the requests have been routed — the
//! crash-tolerance acceptance: the run must still finish with zero
//! failed requests while the supervisor restarts the child.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;
use sysunc::ModelRegistry;
use sysunc_bench::loadgen::{run, suite_to_json, LoadMode, LoadgenConfig};
use sysunc_fleet::{Fleet, FleetConfig, FleetHandle};
use sysunc_serve::{Server, ServerConfig};

struct Args {
    config: LoadgenConfig,
    modes: Vec<LoadMode>,
    addr: Option<SocketAddr>,
    out: String,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        config: LoadgenConfig::default(),
        modes: LoadMode::ALL.to_vec(),
        addr: None,
        out: "BENCH_serve.json".into(),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--clients" => {
                parsed.config.clients =
                    value("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                parsed.config.requests_per_client =
                    value("--requests")?.parse().map_err(|e| format!("--requests: {e}"))?
            }
            "--engine" => parsed.config.engine = value("--engine")?,
            "--model" => parsed.config.model = value("--model")?,
            "--budget" => {
                parsed.config.budget =
                    value("--budget")?.parse().map_err(|e| format!("--budget: {e}"))?
            }
            "--mode" => {
                let name = value("--mode")?;
                parsed.modes = match name.as_str() {
                    "all" => LoadMode::ALL.to_vec(),
                    other => vec![LoadMode::parse(other).ok_or_else(|| {
                        format!("--mode: unknown mode '{other}' (cold|cache-hot|batch|all)")
                    })?],
                };
            }
            "--batch-size" => {
                parsed.config.batch_size = value("--batch-size")?
                    .parse()
                    .map_err(|e| format!("--batch-size: {e}"))?
            }
            "--hot-seeds" => {
                parsed.config.hot_seeds = value("--hot-seeds")?
                    .parse()
                    .map_err(|e| format!("--hot-seeds: {e}"))?
            }
            "--addr" => {
                parsed.addr =
                    Some(value("--addr")?.parse().map_err(|e| format!("--addr: {e}"))?)
            }
            "--out" => parsed.out = value("--out")?,
            "--fleet" => {
                parsed.config.fleet_shards =
                    value("--fleet")?.parse().map_err(|e| format!("--fleet: {e}"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if parsed.config.fleet_shards > 0 && parsed.addr.is_some() {
        return Err("--fleet self-hosts its shards; drop --addr".into());
    }
    Ok(parsed)
}

/// Drives one mode against the fleet front. During the cache-hot mode
/// a scoped sidecar thread SIGKILLs shard 0 once a quarter of the
/// requests have been routed, so the measured run includes a crash,
/// the router's retry window, and the supervisor's restart.
fn run_fleet_mode(
    fleet: &FleetHandle,
    config: &LoadgenConfig,
) -> Result<sysunc_bench::loadgen::LoadgenResult, String> {
    let inject_crash = config.mode == LoadMode::CacheHot;
    let trigger = (config.clients * config.requests_per_client / 4).max(1) as u64;
    std::thread::scope(|scope| {
        let killer = inject_crash.then(|| {
            scope.spawn(|| {
                let metrics = fleet.metrics();
                let deadline = std::time::Instant::now() + Duration::from_secs(30);
                while std::time::Instant::now() < deadline {
                    let routed: u64 =
                        (0..fleet.shards()).map(|s| metrics.routed_count(s)).sum();
                    if routed >= trigger {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                fleet.kill_shard(0)
            })
        });
        let result = run(fleet.addr(), config).map_err(|e| e.to_string());
        if let Some(handle) = killer {
            let killed = handle.join().unwrap_or(false);
            if killed && !fleet.await_healthy(fleet.shards(), Duration::from_secs(30)) {
                return Err("killed shard was not restarted to healthy".into());
            }
        }
        result
    })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Self-host unless pointed at an external server: an N-shard fleet
    // with `--fleet N`, a single in-process server otherwise.
    let mut fleet = None;
    let (addr, server) = if args.config.fleet_shards > 0 {
        let config = FleetConfig {
            shards: args.config.fleet_shards,
            child_workers: args.config.clients.max(2),
            child_queue: args.config.clients.max(2) * 4,
            ..FleetConfig::default()
        };
        match Fleet::start(config) {
            Ok(handle) => {
                let addr = handle.addr();
                fleet = Some(handle);
                (addr, None)
            }
            Err(e) => {
                eprintln!("loadgen: cannot start fleet: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match args.addr {
            Some(addr) => (addr, None),
            None => {
                let registry = match ModelRegistry::standard() {
                    Ok(registry) => registry,
                    Err(e) => {
                        eprintln!("loadgen: cannot build the model registry: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let config = ServerConfig {
                    workers: args.config.clients.max(2),
                    queue_capacity: args.config.clients.max(2) * 4,
                    ..ServerConfig::default()
                };
                match Server::start(config, registry) {
                    Ok(server) => (server.addr(), Some(server)),
                    Err(e) => {
                        eprintln!("loadgen: cannot start server: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    };

    let mut entries = Vec::new();
    let mut failure = None;
    for &mode in &args.modes {
        let config = args.config.with_mode(mode);
        let outcome = match &fleet {
            Some(handle) => run_fleet_mode(handle, &config),
            None => run(addr, &config).map_err(|e| e.to_string()),
        };
        match outcome {
            Ok(result) => {
                println!(
                    "loadgen[{}]: {} ok / {} failed, {:.1} jobs/s, p50 {} us, p99 {} us",
                    config.mode_key(),
                    result.ok,
                    result.failed,
                    result.throughput_rps(),
                    result.percentile_micros(50.0),
                    result.percentile_micros(99.0)
                );
                entries.push((config, result));
            }
            Err(e) => {
                failure = Some(format!("mode {} failed: {e}", mode.name()));
                break;
            }
        }
    }
    if let Some(handle) = fleet {
        let restarts = handle.metrics().total_restarts();
        println!("loadgen: fleet absorbed {restarts} shard restart(s)");
        handle.shutdown();
    }
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(msg) = failure {
        eprintln!("loadgen: {msg}");
        return ExitCode::FAILURE;
    }

    let summary = match suite_to_json(&entries) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("loadgen: cannot render summary: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&args.out, summary + "\n") {
        eprintln!("loadgen: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("loadgen: wrote {}", args.out);
    ExitCode::SUCCESS
}
