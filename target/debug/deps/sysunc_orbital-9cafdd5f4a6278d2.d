/root/repo/target/debug/deps/sysunc_orbital-9cafdd5f4a6278d2.d: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

/root/repo/target/debug/deps/sysunc_orbital-9cafdd5f4a6278d2: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

crates/orbital/src/lib.rs:
crates/orbital/src/error.rs:
crates/orbital/src/integrator.rs:
crates/orbital/src/kepler.rs:
crates/orbital/src/observe.rs:
crates/orbital/src/system.rs:
crates/orbital/src/vec2.rs:
