/root/repo/target/debug/deps/sysunc_prob-3cfe62f90a51a418.d: crates/prob/src/lib.rs crates/prob/src/dist/mod.rs crates/prob/src/dist/bernoulli.rs crates/prob/src/dist/beta.rs crates/prob/src/dist/binomial.rs crates/prob/src/dist/categorical.rs crates/prob/src/dist/dirichlet.rs crates/prob/src/dist/exponential.rs crates/prob/src/dist/gamma.rs crates/prob/src/dist/lognormal.rs crates/prob/src/dist/mixture.rs crates/prob/src/dist/normal.rs crates/prob/src/dist/poisson.rs crates/prob/src/dist/student_t.rs crates/prob/src/dist/triangular.rs crates/prob/src/dist/truncated.rs crates/prob/src/dist/uniform.rs crates/prob/src/dist/weibull.rs crates/prob/src/empirical.rs crates/prob/src/error.rs crates/prob/src/fit.rs crates/prob/src/htest.rs crates/prob/src/info.rs crates/prob/src/json.rs crates/prob/src/propcheck.rs crates/prob/src/rng.rs crates/prob/src/special.rs crates/prob/src/stats.rs

/root/repo/target/debug/deps/libsysunc_prob-3cfe62f90a51a418.rmeta: crates/prob/src/lib.rs crates/prob/src/dist/mod.rs crates/prob/src/dist/bernoulli.rs crates/prob/src/dist/beta.rs crates/prob/src/dist/binomial.rs crates/prob/src/dist/categorical.rs crates/prob/src/dist/dirichlet.rs crates/prob/src/dist/exponential.rs crates/prob/src/dist/gamma.rs crates/prob/src/dist/lognormal.rs crates/prob/src/dist/mixture.rs crates/prob/src/dist/normal.rs crates/prob/src/dist/poisson.rs crates/prob/src/dist/student_t.rs crates/prob/src/dist/triangular.rs crates/prob/src/dist/truncated.rs crates/prob/src/dist/uniform.rs crates/prob/src/dist/weibull.rs crates/prob/src/empirical.rs crates/prob/src/error.rs crates/prob/src/fit.rs crates/prob/src/htest.rs crates/prob/src/info.rs crates/prob/src/json.rs crates/prob/src/propcheck.rs crates/prob/src/rng.rs crates/prob/src/special.rs crates/prob/src/stats.rs

crates/prob/src/lib.rs:
crates/prob/src/dist/mod.rs:
crates/prob/src/dist/bernoulli.rs:
crates/prob/src/dist/beta.rs:
crates/prob/src/dist/binomial.rs:
crates/prob/src/dist/categorical.rs:
crates/prob/src/dist/dirichlet.rs:
crates/prob/src/dist/exponential.rs:
crates/prob/src/dist/gamma.rs:
crates/prob/src/dist/lognormal.rs:
crates/prob/src/dist/mixture.rs:
crates/prob/src/dist/normal.rs:
crates/prob/src/dist/poisson.rs:
crates/prob/src/dist/student_t.rs:
crates/prob/src/dist/triangular.rs:
crates/prob/src/dist/truncated.rs:
crates/prob/src/dist/uniform.rs:
crates/prob/src/dist/weibull.rs:
crates/prob/src/empirical.rs:
crates/prob/src/error.rs:
crates/prob/src/fit.rs:
crates/prob/src/htest.rs:
crates/prob/src/info.rs:
crates/prob/src/json.rs:
crates/prob/src/propcheck.rs:
crates/prob/src/rng.rs:
crates/prob/src/special.rs:
crates/prob/src/stats.rs:
