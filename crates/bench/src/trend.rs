//! Trend records folded from the repo's machine-readable reports.
//!
//! Two trajectories live here:
//!
//! - **Lint suppressions** — every `// tidy: allow(rule)` comment and
//!   every baseline budget is acknowledged epistemic debt. A
//!   `sysunc-tidy/3` findings document (the older `/1` and `/2` are
//!   still accepted — `/1` merely lacks the per-finding `resolution`
//!   field, `/2` the `cfg` resolution and the CFG-backed rules) folds
//!   into a per-rule record (`sysunc-bench-trend/1`); the counts
//!   should only ratchet down, and [`suppression_regressions`] is the
//!   tripwire a rising line trips.
//! - **Serving throughput** — a `sysunc-bench-serve/2` loadgen suite
//!   folds into a per-mode record (`sysunc-bench-serve-trend/1`), and
//!   [`throughput_regressions`] / [`cache_speedup_shortfall`] are the
//!   CI tripwire comparing a run against a committed baseline.
//! - **Engine throughput** — a `sysunc-bench-engine/1` document (the
//!   `engine_bench` binary: samples/sec per engine × model, chunked vs
//!   scalar) folds into a `sysunc-bench-engine-trend/1` record;
//!   [`engine_regressions`] compares chunked throughput against a
//!   committed baseline and [`chunked_speedup_shortfall`] enforces that
//!   the chunked kernels keep beating the scalar reference path.

use std::collections::BTreeMap;
use sysunc::prob::json::writer::JsonWriter;
use sysunc::prob::json::{Json, JsonError};

/// Counts the entries of one findings list (`allowed`, `baselined`, …)
/// per rule, sorted by rule name.
///
/// # Errors
///
/// Returns [`JsonError`] when `key` is missing or not an array of
/// finding objects.
pub fn count_by_rule(report: &Json, key: &str) -> Result<Vec<(String, u64)>, JsonError> {
    let list = report
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError::decode(format!("report lacks a '{key}' array")))?;
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for item in list {
        let rule = item
            .get("rule")
            .and_then(Json::as_str)
            .ok_or_else(|| JsonError::decode(format!("'{key}' entry lacks a rule")))?;
        *counts.entry(rule.to_string()).or_insert(0) += 1;
    }
    Ok(counts.into_iter().collect())
}

/// Renders one `sysunc-bench-trend/1` record (a single JSON line) from
/// a parsed `sysunc-tidy/3` (or legacy `/1`, `/2`) findings document.
///
/// # Errors
///
/// Returns [`JsonError`] when the document does not have the
/// `sysunc-tidy/1`, `/2` or `/3` shape.
pub fn trend_record(report: &Json) -> Result<String, JsonError> {
    let schema = report.get("schema").and_then(Json::as_str).unwrap_or("");
    if !matches!(schema, "sysunc-tidy/1" | "sysunc-tidy/2" | "sysunc-tidy/3") {
        return Err(JsonError::decode(format!(
            "expected a sysunc-tidy/1, /2 or /3 document, got schema '{schema}'"
        )));
    }
    let files_scanned = report
        .get("files_scanned")
        .and_then(Json::as_u64)
        .ok_or_else(|| JsonError::decode("report lacks files_scanned"))?;
    let clean = report
        .get("clean")
        .and_then(Json::as_bool)
        .ok_or_else(|| JsonError::decode("report lacks clean"))?;
    let allowed = count_by_rule(report, "allowed")?;
    let baselined = count_by_rule(report, "baselined")?;
    let violations = report
        .get("violations")
        .and_then(Json::as_arr)
        .map(|a| a.len() as u64)
        .ok_or_else(|| JsonError::decode("report lacks violations"))?;

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("sysunc-bench-trend/1");
    w.key("files_scanned").u64(files_scanned);
    w.key("clean").bool(clean);
    w.key("violations").u64(violations);
    let total = |counts: &[(String, u64)]| counts.iter().map(|(_, n)| n).sum::<u64>();
    w.key("allowed_total").u64(total(&allowed));
    w.key("allowed_by_rule").begin_object();
    for (rule, n) in &allowed {
        w.key(rule).u64(*n);
    }
    w.end_object();
    w.key("baselined_total").u64(total(&baselined));
    w.key("baselined_by_rule").begin_object();
    for (rule, n) in &baselined {
        w.key(rule).u64(*n);
    }
    w.end_object();
    w.end_object();
    w.finish()
}

/// The per-rule suppression counts (allowed + baselined) of one
/// `sysunc-bench-trend/1` record, summed across both ledgers.
///
/// # Errors
///
/// Returns [`JsonError`] when the record has the wrong schema or lacks
/// the per-rule count objects.
pub fn suppressions_by_rule(record: &Json) -> Result<BTreeMap<String, u64>, JsonError> {
    let schema = record.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "sysunc-bench-trend/1" {
        return Err(JsonError::decode(format!(
            "expected a sysunc-bench-trend/1 record, got schema '{schema}'"
        )));
    }
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    for key in ["allowed_by_rule", "baselined_by_rule"] {
        let Some(Json::Obj(by_rule)) = record.get(key) else {
            return Err(JsonError::decode(format!("record lacks a '{key}' object")));
        };
        for (rule, n) in by_rule {
            let n = n
                .as_u64()
                .ok_or_else(|| JsonError::decode(format!("'{key}' count for '{rule}' is not a count")))?;
            *counts.entry(rule.clone()).or_insert(0) += n;
        }
    }
    Ok(counts)
}

/// Compares a fresh trend record against the previous one: one message
/// per rule whose suppression count (allowed + baselined) rose, plus
/// one when the standing-violation total rose. Empty means the ratchet
/// held. New rules start from an implicit zero, so the very first
/// suppression of a new rule is itself a regression — by design: debt
/// is taken on explicitly, not discovered later in the trajectory.
///
/// # Errors
///
/// Returns [`JsonError`] when either record does not have the
/// `sysunc-bench-trend/1` shape.
pub fn suppression_regressions(
    current: &Json,
    previous: &Json,
) -> Result<Vec<String>, JsonError> {
    let now = suppressions_by_rule(current)?;
    let before = suppressions_by_rule(previous)?;
    let mut findings = Vec::new();
    for (rule, n) in &now {
        let was = before.get(rule).copied().unwrap_or(0);
        if *n > was {
            findings.push(format!(
                "rule '{rule}' suppressions rose {was} -> {n}; the exception \
                 ledger must only ratchet down"
            ));
        }
    }
    let total = |r: &Json| r.get("violations").and_then(Json::as_u64).unwrap_or(0);
    let (now_v, before_v) = (total(current), total(previous));
    if now_v > before_v {
        findings.push(format!(
            "standing violations rose {before_v} -> {now_v}"
        ));
    }
    Ok(findings)
}

/// One mode's headline numbers pulled out of a `sysunc-bench-serve/2`
/// suite document.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeSummary {
    /// The mode name (`cold`, `cache-hot`, `batch`).
    pub mode: String,
    /// Completed propagation jobs per second.
    pub throughput_rps: f64,
    /// Median per-HTTP-call latency in microseconds.
    pub p50_micros: u64,
    /// Tail per-HTTP-call latency in microseconds.
    pub p99_micros: u64,
    /// Jobs answered successfully.
    pub ok: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Usable cores on the host the run measured (`0` for documents
    /// predating the field) — fleet speedup gates are judged against
    /// the hardware the numbers came from.
    pub cores: u64,
}

/// Extracts the per-mode summaries from a `sysunc-bench-serve/2` suite
/// document, in the document's mode order.
///
/// # Errors
///
/// Returns [`JsonError`] when the document has the wrong schema or a
/// mode entry lacks the expected members.
pub fn serve_mode_summaries(suite: &Json) -> Result<Vec<ModeSummary>, JsonError> {
    let schema = suite.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "sysunc-bench-serve/2" {
        return Err(JsonError::decode(format!(
            "expected a sysunc-bench-serve/2 document, got schema '{schema}'"
        )));
    }
    let Some(Json::Obj(modes)) = suite.get("modes") else {
        return Err(JsonError::decode("suite lacks a 'modes' object"));
    };
    let mut summaries = Vec::with_capacity(modes.len());
    for (mode, doc) in modes {
        let member = |key: &str| {
            doc.get(key).ok_or_else(|| {
                JsonError::decode(format!("mode '{mode}' lacks '{key}'"))
            })
        };
        let latency = member("latency_micros")?;
        let micros = |key: &str| {
            latency.get(key).and_then(Json::as_u64).ok_or_else(|| {
                JsonError::decode(format!("mode '{mode}' lacks latency '{key}'"))
            })
        };
        summaries.push(ModeSummary {
            mode: mode.clone(),
            throughput_rps: member("throughput_rps")?.as_f64().ok_or_else(|| {
                JsonError::decode(format!("mode '{mode}' throughput is not a number"))
            })?,
            p50_micros: micros("p50")?,
            p99_micros: micros("p99")?,
            ok: member("ok")?.as_u64().unwrap_or(0),
            failed: member("failed")?.as_u64().unwrap_or(0),
            cores: doc.get("cores").and_then(Json::as_u64).unwrap_or(0),
        });
    }
    Ok(summaries)
}

/// Merges the mode entries of `extra` into `base` (both
/// `sysunc-bench-serve/2` suites) — how a fleet run's `fleet-*` rows
/// join the single-process rows in one document for trend recording
/// and gating. Duplicate mode keys keep `base`'s entry.
///
/// # Errors
///
/// Returns [`JsonError`] when either document lacks the suite schema
/// or its `modes` object.
pub fn merge_serve_suites(base: &Json, extra: &Json) -> Result<Json, JsonError> {
    let modes_of = |doc: &Json, who: &str| -> Result<Vec<(String, Json)>, JsonError> {
        let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != "sysunc-bench-serve/2" {
            return Err(JsonError::decode(format!(
                "{who} suite has schema '{schema}', expected sysunc-bench-serve/2"
            )));
        }
        match doc.get("modes") {
            Some(Json::Obj(modes)) => Ok(modes.clone()),
            _ => Err(JsonError::decode(format!("{who} suite lacks a 'modes' object"))),
        }
    };
    let mut modes = modes_of(base, "base")?;
    for (key, doc) in modes_of(extra, "extra")? {
        if !modes.iter().any(|(k, _)| *k == key) {
            modes.push((key, doc));
        }
    }
    Ok(Json::Obj(vec![
        ("schema".into(), Json::Str("sysunc-bench-serve/2".into())),
        ("modes".into(), Json::Obj(modes)),
    ]))
}

/// Renders one `sysunc-bench-serve-trend/1` record (a single JSON
/// line) from a parsed `sysunc-bench-serve/2` suite document: the
/// per-mode throughput and latency headline, appended over time.
///
/// # Errors
///
/// As in [`serve_mode_summaries`], plus writer errors for non-finite
/// throughputs.
pub fn serve_trend_record(suite: &Json) -> Result<String, JsonError> {
    let summaries = serve_mode_summaries(suite)?;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("sysunc-bench-serve-trend/1");
    w.key("modes").begin_object();
    for s in &summaries {
        w.key(&s.mode).begin_object();
        w.key("throughput_rps").f64(s.throughput_rps);
        w.key("p50_micros").u64(s.p50_micros);
        w.key("p99_micros").u64(s.p99_micros);
        w.key("ok").u64(s.ok);
        w.key("failed").u64(s.failed);
        w.end_object();
    }
    w.end_object();
    w.end_object();
    w.finish()
}

/// Compares a run against a baseline: one message per mode whose
/// throughput fell below `min_ratio` of the baseline's (or that
/// disappeared entirely). Empty means no regression.
pub fn throughput_regressions(
    current: &[ModeSummary],
    baseline: &[ModeSummary],
    min_ratio: f64,
) -> Vec<String> {
    let mut findings = Vec::new();
    for base in baseline {
        match current.iter().find(|s| s.mode == base.mode) {
            None => findings.push(format!("mode '{}' missing from this run", base.mode)),
            Some(now) => {
                let floor = base.throughput_rps * min_ratio;
                if now.throughput_rps < floor {
                    findings.push(format!(
                        "mode '{}' throughput {:.1} jobs/s fell below {:.1} \
                         ({:.0}% of baseline {:.1})",
                        base.mode,
                        now.throughput_rps,
                        floor,
                        min_ratio * 100.0,
                        base.throughput_rps
                    ));
                }
            }
        }
    }
    findings
}

/// Checks the cache's value proposition: cache-hot throughput must be
/// at least `min_ratio` times cold throughput. `None` when satisfied
/// or when the run lacks either mode.
pub fn cache_speedup_shortfall(current: &[ModeSummary], min_ratio: f64) -> Option<String> {
    let cold = current.iter().find(|s| s.mode == "cold")?;
    let hot = current.iter().find(|s| s.mode == "cache-hot")?;
    if cold.throughput_rps > 0.0 && hot.throughput_rps < cold.throughput_rps * min_ratio {
        return Some(format!(
            "cache-hot throughput {:.1} jobs/s is only {:.1}x cold ({:.1} jobs/s); \
             expected at least {min_ratio:.1}x",
            hot.throughput_rps,
            hot.throughput_rps / cold.throughput_rps,
            cold.throughput_rps
        ));
    }
    None
}

/// The fleet crash-tolerance gate: every `fleet-*` mode must report
/// zero failed jobs. The fleet loadgen run includes a forced child
/// crash mid-run, so any failure means the router dropped a request
/// instead of riding out the restart. One message per offending mode;
/// empty means the gate holds (including when no fleet rows exist).
pub fn fleet_failed_requests(current: &[ModeSummary]) -> Vec<String> {
    current
        .iter()
        .filter(|s| s.mode.starts_with("fleet-") && s.failed > 0)
        .map(|s| {
            format!(
                "fleet mode '{}' dropped {} request(s); crash tolerance demands \
                 zero failures across a forced shard restart",
                s.mode, s.failed
            )
        })
        .collect()
}

/// The hardware-aware fleet speedup gate: `fleet-cache-hot` throughput
/// against single-process `cache-hot`. On a host with at least
/// `full_cores` usable cores the shards run in parallel and the fleet
/// must reach `full_ratio` (the ~linear cache-hot scaling claim);
/// below that the shards time-slice the same cores, a speedup is
/// physically unavailable, and only the overhead floor `floor_ratio`
/// is enforced — routing must not swallow most of the throughput. The
/// core count is read from the fleet row itself (recorded at measure
/// time), so gating a result judges the hardware it ran on. `None`
/// when either mode is absent or the applicable bar is met.
pub fn fleet_speedup_shortfall(
    current: &[ModeSummary],
    full_cores: u64,
    full_ratio: f64,
    floor_ratio: f64,
) -> Option<String> {
    let hot = current.iter().find(|s| s.mode == "cache-hot")?;
    let fleet = current.iter().find(|s| s.mode == "fleet-cache-hot")?;
    let (bar, regime) = if fleet.cores >= full_cores {
        (full_ratio, format!("{} cores (parallel regime)", fleet.cores))
    } else {
        (
            floor_ratio,
            format!("{} core(s) (time-sliced regime, overhead floor)", fleet.cores.max(1)),
        )
    };
    if hot.throughput_rps > 0.0 && fleet.throughput_rps < hot.throughput_rps * bar {
        return Some(format!(
            "fleet-cache-hot throughput {:.1} jobs/s is {:.2}x single-process \
             cache-hot ({:.1} jobs/s); expected at least {bar:.2}x on {regime}",
            fleet.throughput_rps,
            fleet.throughput_rps / hot.throughput_rps,
            hot.throughput_rps,
        ));
    }
    None
}

/// One engine × model row of a `sysunc-bench-engine/1` document.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSummary {
    /// The engine name (catalog name, e.g. `monte-carlo`).
    pub engine: String,
    /// The benchmark model (e.g. `orbital-period`).
    pub model: String,
    /// Scalar reference-path throughput in samples per second.
    pub scalar_sps: f64,
    /// Chunked-kernel throughput in samples per second.
    pub chunked_sps: f64,
    /// `chunked_sps / scalar_sps` (1.0 for engines without a distinct
    /// chunked path).
    pub speedup: f64,
}

impl EngineSummary {
    /// The `engine/model` key rows are matched on across runs.
    pub fn key(&self) -> String {
        format!("{}/{}", self.engine, self.model)
    }
}

/// Extracts the per-row summaries from a `sysunc-bench-engine/1`
/// document, in document order.
///
/// # Errors
///
/// Returns [`JsonError`] when the document has the wrong schema or an
/// entry lacks the expected members.
pub fn engine_summaries(doc: &Json) -> Result<Vec<EngineSummary>, JsonError> {
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != "sysunc-bench-engine/1" {
        return Err(JsonError::decode(format!(
            "expected a sysunc-bench-engine/1 document, got schema '{schema}'"
        )));
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or_else(|| JsonError::decode("document lacks an 'entries' array"))?;
    let mut summaries = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let text = |key: &str| {
            entry.get(key).and_then(Json::as_str).map(str::to_string).ok_or_else(|| {
                JsonError::decode(format!("entry {i} lacks '{key}'"))
            })
        };
        let num = |key: &str| {
            entry.get(key).and_then(Json::as_f64).ok_or_else(|| {
                JsonError::decode(format!("entry {i} lacks a numeric '{key}'"))
            })
        };
        summaries.push(EngineSummary {
            engine: text("engine")?,
            model: text("model")?,
            scalar_sps: num("scalar_sps")?,
            chunked_sps: num("chunked_sps")?,
            speedup: num("speedup")?,
        });
    }
    Ok(summaries)
}

/// Renders one `sysunc-bench-engine-trend/1` record (a single JSON
/// line) from a parsed `sysunc-bench-engine/1` document: throughput and
/// speedup per `engine/model` key, appended over time.
///
/// # Errors
///
/// As in [`engine_summaries`], plus writer errors for non-finite
/// throughputs.
pub fn engine_trend_record(doc: &Json) -> Result<String, JsonError> {
    let summaries = engine_summaries(doc)?;
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("sysunc-bench-engine-trend/1");
    w.key("entries").begin_object();
    for s in &summaries {
        w.key(&s.key()).begin_object();
        w.key("scalar_sps").f64(s.scalar_sps);
        w.key("chunked_sps").f64(s.chunked_sps);
        w.key("speedup").f64(s.speedup);
        w.end_object();
    }
    w.end_object();
    w.end_object();
    w.finish()
}

/// Compares a run against a baseline: one message per `engine/model`
/// row whose chunked throughput fell below `min_ratio` of the
/// baseline's (or that disappeared entirely). Empty means no
/// regression.
pub fn engine_regressions(
    current: &[EngineSummary],
    baseline: &[EngineSummary],
    min_ratio: f64,
) -> Vec<String> {
    let mut findings = Vec::new();
    for base in baseline {
        match current.iter().find(|s| s.key() == base.key()) {
            None => findings.push(format!("row '{}' missing from this run", base.key())),
            Some(now) => {
                let floor = base.chunked_sps * min_ratio;
                if now.chunked_sps < floor {
                    findings.push(format!(
                        "row '{}' throughput {:.0} samples/s fell below {:.0} \
                         ({:.0}% of baseline {:.0})",
                        base.key(),
                        now.chunked_sps,
                        floor,
                        min_ratio * 100.0,
                        base.chunked_sps
                    ));
                }
            }
        }
    }
    findings
}

/// Checks the chunked kernels' value proposition: every row of the
/// named engines must report at least `min_speedup` over the scalar
/// path. Empty when satisfied (or when no named engine has rows).
pub fn chunked_speedup_shortfall(
    current: &[EngineSummary],
    engines: &[&str],
    min_speedup: f64,
) -> Vec<String> {
    current
        .iter()
        .filter(|s| engines.contains(&s.engine.as_str()) && s.speedup < min_speedup)
        .map(|s| {
            format!(
                "row '{}' chunked speedup {:.2}x is below the required {min_speedup:.1}x \
                 ({:.0} vs {:.0} samples/s)",
                s.key(),
                s.speedup,
                s.chunked_sps,
                s.scalar_sps
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc::prob::json::parse;

    const SAMPLE: &str = r#"{
        "schema": "sysunc-tidy/3",
        "files_scanned": 12,
        "clean": true,
        "violations": [],
        "allowed": [
            {"file": "a.rs", "line": 1, "rule": "panic", "resolution": "token", "message": "m"},
            {"file": "b.rs", "line": 2, "rule": "panic", "resolution": "token", "message": "m"},
            {"file": "c.rs", "line": 3, "rule": "seed-discipline", "resolution": "token", "message": "m"}
        ],
        "baselined": [
            {"file": "d.rs", "line": 4, "rule": "doc", "resolution": "token", "message": "m"}
        ]
    }"#;

    #[test]
    fn counts_group_and_sort_by_rule() {
        let report = parse(SAMPLE).expect("parses");
        let counts = count_by_rule(&report, "allowed").expect("counts");
        assert_eq!(
            counts,
            vec![("panic".to_string(), 2), ("seed-discipline".to_string(), 1)]
        );
    }

    #[test]
    fn trend_record_summarizes_the_findings_document() {
        let report = parse(SAMPLE).expect("parses");
        let record = trend_record(&report).expect("renders");
        let v = parse(&record).expect("record parses back");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("sysunc-bench-trend/1")
        );
        assert_eq!(v.get("allowed_total").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("baselined_total").and_then(Json::as_u64), Some(1));
        assert_eq!(
            v.get("allowed_by_rule").and_then(|j| j.get("panic")).and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(v.get("violations").and_then(Json::as_u64), Some(0));
        assert_eq!(v.get("clean").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn foreign_documents_are_rejected() {
        let report = parse(r#"{"schema":"other/9"}"#).expect("parses");
        assert!(trend_record(&report).is_err());
        let report = parse(r#"{"schema":"sysunc-tidy/3"}"#).expect("parses");
        assert!(trend_record(&report).is_err(), "missing members must error");
    }

    #[test]
    fn legacy_tidy_documents_still_fold() {
        // Pre-resolution /1 documents lack the `resolution` member and
        // /2 documents lack the CFG-backed rules; the fold never looked
        // at either, so both keep working.
        for legacy_schema in ["sysunc-tidy/1", "sysunc-tidy/2"] {
            let legacy = SAMPLE.replace("sysunc-tidy/3", legacy_schema);
            let report = parse(&legacy).expect("parses");
            let record = trend_record(&report).expect("legacy schema accepted");
            let v = parse(&record).expect("record parses back");
            assert_eq!(v.get("allowed_total").and_then(Json::as_u64), Some(3));
        }
    }

    #[test]
    fn suppression_regressions_trip_on_rising_counts_only() {
        let record = |panic: u64, doc: u64, violations: u64| {
            parse(&format!(
                r#"{{"schema":"sysunc-bench-trend/1","files_scanned":12,
                    "clean":true,"violations":{violations},
                    "allowed_total":{panic},"allowed_by_rule":{{"panic":{panic}}},
                    "baselined_total":{doc},"baselined_by_rule":{{"doc":{doc}}}}}"#
            ))
            .expect("record parses")
        };
        let base = record(2, 1, 0);
        // Flat or falling counts hold the ratchet.
        assert!(suppression_regressions(&record(2, 1, 0), &base).expect("folds").is_empty());
        assert!(suppression_regressions(&record(1, 0, 0), &base).expect("folds").is_empty());
        // A rising per-rule count trips, naming the rule.
        let findings = suppression_regressions(&record(3, 1, 0), &base).expect("folds");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("'panic'"), "{findings:?}");
        assert!(findings[0].contains("2 -> 3"), "{findings:?}");
        // Rising standing violations trip too.
        let findings = suppression_regressions(&record(2, 1, 4), &base).expect("folds");
        assert!(findings.iter().any(|f| f.contains("violations rose 0 -> 4")), "{findings:?}");
        // A record of the wrong schema is an error, not a silent pass.
        let foreign = parse(r#"{"schema":"other/9"}"#).expect("parses");
        assert!(suppression_regressions(&foreign, &base).is_err());
    }

    fn serve_suite(cold_rps: f64, hot_rps: f64) -> Json {
        let doc = |rps: f64| {
            format!(
                r#"{{"schema":"sysunc-bench-serve/1","ok":10,"failed":0,
                    "throughput_rps":{rps},
                    "latency_micros":{{"p50":100,"p99":400}}}}"#
            )
        };
        parse(&format!(
            r#"{{"schema":"sysunc-bench-serve/2","modes":{{
                "cold":{cold},"cache-hot":{hot}}}}}"#,
            cold = doc(cold_rps),
            hot = doc(hot_rps)
        ))
        .expect("suite parses")
    }

    #[test]
    fn serve_summaries_and_trend_record_fold_the_suite() {
        let suite = serve_suite(50.0, 500.0);
        let summaries = serve_mode_summaries(&suite).expect("folds");
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].mode, "cold");
        assert!((summaries[0].throughput_rps - 50.0).abs() < 1e-9);
        assert_eq!(summaries[1].p99_micros, 400);

        let record = serve_trend_record(&suite).expect("renders");
        let v = parse(&record).expect("record parses back");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("sysunc-bench-serve-trend/1")
        );
        let hot = v.get("modes").and_then(|m| m.get("cache-hot")).expect("mode");
        assert_eq!(hot.get("p50_micros").and_then(Json::as_u64), Some(100));
        assert!(hot.get("throughput_rps").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn serve_fold_rejects_foreign_and_incomplete_documents() {
        let foreign = parse(r#"{"schema":"sysunc-bench-serve/1"}"#).expect("parses");
        assert!(serve_mode_summaries(&foreign).is_err());
        let incomplete = parse(
            r#"{"schema":"sysunc-bench-serve/2","modes":{"cold":{"ok":1}}}"#,
        )
        .expect("parses");
        assert!(serve_mode_summaries(&incomplete).is_err());
    }

    #[test]
    fn throughput_regressions_flag_drops_and_missing_modes() {
        let baseline = serve_mode_summaries(&serve_suite(100.0, 800.0)).expect("folds");
        let healthy = serve_mode_summaries(&serve_suite(90.0, 700.0)).expect("folds");
        assert!(throughput_regressions(&healthy, &baseline, 0.8).is_empty());

        let regressed = serve_mode_summaries(&serve_suite(50.0, 700.0)).expect("folds");
        let findings = throughput_regressions(&regressed, &baseline, 0.8);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("'cold'"), "{findings:?}");

        let findings = throughput_regressions(&healthy[..1], &baseline, 0.8);
        assert!(findings.iter().any(|f| f.contains("missing")), "{findings:?}");
    }

    fn fleet_suite(hot_rps: f64, fleet_rps: f64, cores: u64, failed: u64) -> Json {
        let doc = |rps: f64, failed: u64| {
            format!(
                r#"{{"schema":"sysunc-bench-serve/1","ok":10,"failed":{failed},
                    "cores":{cores},"throughput_rps":{rps},
                    "latency_micros":{{"p50":100,"p99":400}}}}"#
            )
        };
        parse(&format!(
            r#"{{"schema":"sysunc-bench-serve/2","modes":{{
                "cache-hot":{hot},"fleet-cache-hot":{fleet}}}}}"#,
            hot = doc(hot_rps, 0),
            fleet = doc(fleet_rps, failed)
        ))
        .expect("suite parses")
    }

    #[test]
    fn merged_suites_carry_both_row_sets() {
        let merged = merge_serve_suites(
            &serve_suite(50.0, 500.0),
            &fleet_suite(500.0, 900.0, 8, 0),
        )
        .expect("merges");
        let summaries = serve_mode_summaries(&merged).expect("folds");
        let modes: Vec<&str> = summaries.iter().map(|s| s.mode.as_str()).collect();
        assert_eq!(modes, ["cold", "cache-hot", "fleet-cache-hot"]);
        // Duplicate keys keep the base entry.
        assert!(
            (summaries[1].throughput_rps - 500.0).abs() < 1e-9,
            "base cache-hot row wins over the extra suite's copy"
        );
        // The merged document feeds the trend record directly.
        let record = serve_trend_record(&merged).expect("renders");
        assert!(record.contains("fleet-cache-hot"), "{record}");
        // Foreign schemas are refused.
        let foreign = parse(r#"{"schema":"other/9"}"#).expect("parses");
        assert!(merge_serve_suites(&serve_suite(1.0, 1.0), &foreign).is_err());
    }

    #[test]
    fn fleet_failure_gate_demands_zero_dropped_requests() {
        let clean =
            serve_mode_summaries(&fleet_suite(500.0, 900.0, 8, 0)).expect("folds");
        assert!(fleet_failed_requests(&clean).is_empty());
        let dropped =
            serve_mode_summaries(&fleet_suite(500.0, 900.0, 8, 3)).expect("folds");
        let findings = fleet_failed_requests(&dropped);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].contains("fleet-cache-hot"), "{findings:?}");
        assert!(findings[0].contains("3 request(s)"), "{findings:?}");
        // Single-process failures are the baseline gates' business.
        let single = serve_mode_summaries(&serve_suite(50.0, 500.0)).expect("folds");
        assert!(fleet_failed_requests(&single).is_empty());
    }

    #[test]
    fn fleet_speedup_gate_is_hardware_aware() {
        // Parallel regime (cores >= full_cores): the full ratio applies.
        let scaled = serve_mode_summaries(&fleet_suite(500.0, 900.0, 8, 0)).expect("f");
        assert!(fleet_speedup_shortfall(&scaled, 4, 1.7, 0.35).is_none());
        let flat = serve_mode_summaries(&fleet_suite(500.0, 600.0, 8, 0)).expect("f");
        let msg = fleet_speedup_shortfall(&flat, 4, 1.7, 0.35).expect("shortfall");
        assert!(msg.contains("1.20x"), "{msg}");
        assert!(msg.contains("parallel regime"), "{msg}");
        // Time-sliced regime (1 core): only the overhead floor applies.
        let sliced = serve_mode_summaries(&fleet_suite(500.0, 250.0, 1, 0)).expect("f");
        assert!(
            fleet_speedup_shortfall(&sliced, 4, 1.7, 0.35).is_none(),
            "0.5x on one core is above the overhead floor"
        );
        let choked = serve_mode_summaries(&fleet_suite(500.0, 100.0, 1, 0)).expect("f");
        let msg = fleet_speedup_shortfall(&choked, 4, 1.7, 0.35).expect("shortfall");
        assert!(msg.contains("overhead floor"), "{msg}");
        // No fleet rows → no verdict.
        let single = serve_mode_summaries(&serve_suite(50.0, 500.0)).expect("folds");
        assert!(fleet_speedup_shortfall(&single, 4, 1.7, 0.35).is_none());
    }

    fn engine_doc(mc_chunked: f64, mc_speedup: f64) -> Json {
        parse(&format!(
            r#"{{"schema":"sysunc-bench-engine/1","budget":65536,"entries":[
                {{"engine":"monte-carlo","model":"orbital-period",
                  "scalar_sps":1000000.0,"chunked_sps":{mc_chunked},"speedup":{mc_speedup}}},
                {{"engine":"evidential","model":"orbital-period",
                  "scalar_sps":50000.0,"chunked_sps":50000.0,"speedup":1.0}}]}}"#
        ))
        .expect("doc parses")
    }

    #[test]
    fn engine_summaries_and_trend_record_fold_the_document() {
        let doc = engine_doc(4_000_000.0, 4.0);
        let summaries = engine_summaries(&doc).expect("folds");
        assert_eq!(summaries.len(), 2);
        assert_eq!(summaries[0].key(), "monte-carlo/orbital-period");
        assert!((summaries[0].speedup - 4.0).abs() < 1e-9);

        let record = engine_trend_record(&doc).expect("renders");
        let v = parse(&record).expect("record parses back");
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("sysunc-bench-engine-trend/1")
        );
        let row = v
            .get("entries")
            .and_then(|e| e.get("monte-carlo/orbital-period"))
            .expect("row");
        assert_eq!(row.get("speedup").and_then(Json::as_f64), Some(4.0));

        let foreign = parse(r#"{"schema":"other/9"}"#).expect("parses");
        assert!(engine_summaries(&foreign).is_err());
        let incomplete = parse(
            r#"{"schema":"sysunc-bench-engine/1","entries":[{"engine":"monte-carlo"}]}"#,
        )
        .expect("parses");
        assert!(engine_summaries(&incomplete).is_err());
    }

    #[test]
    fn engine_regressions_flag_drops_and_missing_rows() {
        let baseline = engine_summaries(&engine_doc(4_000_000.0, 4.0)).expect("folds");
        let healthy = engine_summaries(&engine_doc(3_500_000.0, 3.5)).expect("folds");
        assert!(engine_regressions(&healthy, &baseline, 0.8).is_empty());

        let regressed = engine_summaries(&engine_doc(2_000_000.0, 2.0)).expect("folds");
        let findings = engine_regressions(&regressed, &baseline, 0.8);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("monte-carlo/orbital-period"), "{findings:?}");

        let findings = engine_regressions(&regressed[1..], &baseline, 0.8);
        assert!(findings.iter().any(|f| f.contains("missing")), "{findings:?}");
    }

    #[test]
    fn chunked_speedup_shortfall_enforces_the_floor_per_engine() {
        let rows = engine_summaries(&engine_doc(4_000_000.0, 4.0)).expect("folds");
        // The evidential row's 1.0x is fine: it is not a named engine.
        assert!(chunked_speedup_shortfall(&rows, &["monte-carlo"], 2.0).is_empty());
        let slow = engine_summaries(&engine_doc(1_500_000.0, 1.5)).expect("folds");
        let findings = chunked_speedup_shortfall(&slow, &["monte-carlo"], 2.0);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("1.50x"), "{findings:?}");
    }

    #[test]
    fn cache_speedup_shortfall_enforces_the_hit_ratio() {
        let fast = serve_mode_summaries(&serve_suite(50.0, 500.0)).expect("folds");
        assert_eq!(cache_speedup_shortfall(&fast, 5.0), None);
        let slow = serve_mode_summaries(&serve_suite(50.0, 100.0)).expect("folds");
        let msg = cache_speedup_shortfall(&slow, 5.0).expect("shortfall");
        assert!(msg.contains("cache-hot"), "{msg}");
        // A run without both modes cannot be judged.
        assert_eq!(cache_speedup_shortfall(&slow[..1], 5.0), None);
    }
}
