/root/repo/target/debug/deps/sysunc_bench-440bc225f2ebdc05.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libsysunc_bench-440bc225f2ebdc05.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libsysunc_bench-440bc225f2ebdc05.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
