/root/repo/target/debug/deps/ablation-d2362407cd6fb23d.d: crates/bench/benches/ablation.rs

/root/repo/target/debug/deps/ablation-d2362407cd6fb23d: crates/bench/benches/ablation.rs

crates/bench/benches/ablation.rs:
