/root/repo/target/debug/deps/sysunc-84fa9bbec19f2755.d: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

/root/repo/target/debug/deps/libsysunc-84fa9bbec19f2755.rlib: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

/root/repo/target/debug/deps/libsysunc-84fa9bbec19f2755.rmeta: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

crates/core/src/lib.rs:
crates/core/src/budget.rs:
crates/core/src/casestudy.rs:
crates/core/src/error.rs:
crates/core/src/modeling.rs:
crates/core/src/register.rs:
crates/core/src/taxonomy.rs:
