//! The paper's worked example, verbatim: the Fig. 4 Bayesian network with
//! the Table I conditional probability table, in both its plain-Bayesian
//! and evidential readings.

use crate::error::{Result, SysuncError};
use sysunc_bayesnet::{BayesNet, EvidentialNetwork};
use sysunc_evidence::{Frame, MassFunction};

/// Ground-truth states of Fig. 4.
pub const GROUND_TRUTH_STATES: [&str; 3] = ["car", "pedestrian", "unknown"];

/// Perception output states of Fig. 4 / Table I.
pub const PERCEPTION_STATES: [&str; 4] = ["car", "pedestrian", "car_pedestrian", "none"];

/// The ground-truth prior of the paper:
/// `P(car) = 0.6, P(pedestrian) = 0.3, P(unknown) = 0.1` (aleatory world
/// model).
pub fn ground_truth_prior() -> [f64; 3] {
    [0.6, 0.3, 0.1]
}

/// Table I of the paper, row-for-row: `P(perception | ground truth)`.
///
/// Note: the `unknown` row as printed sums to 0.9 — the remaining 0.1 is
/// unassigned in the paper. [`paper_bayes_net`] renormalizes that row;
/// [`paper_evidential_network`] instead assigns the missing 0.1 to the
/// whole frame Θ (ontological reserve), which is the evidential reading.
pub fn table1_cpt() -> [[f64; 4]; 3] {
    [
        [0.9, 0.005, 0.05, 0.045],
        [0.005, 0.9, 0.05, 0.045],
        [0.0, 0.0, 0.2, 0.7],
    ]
}

/// Builds the Fig. 4 network as a plain Bayesian network.
///
/// The deficient `unknown` row of Table I is renormalized
/// (`[0, 0, 2/9, 7/9]`).
///
/// # Errors
///
/// Never fails for the built-in constants; the `Result` mirrors the
/// underlying constructors.
pub fn paper_bayes_net() -> Result<BayesNet> {
    let mut bn = BayesNet::new();
    let gt = bn
        .add_root("ground_truth", GROUND_TRUTH_STATES.to_vec(), ground_truth_prior().to_vec())
        .map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    let mut cpt: Vec<Vec<f64>> = table1_cpt().iter().map(|r| r.to_vec()).collect();
    let s: f64 = cpt[2].iter().sum();
    for v in &mut cpt[2] {
        *v /= s;
    }
    bn.add_node("perception", PERCEPTION_STATES.to_vec(), vec![gt], cpt)
        .map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    Ok(bn)
}

/// Handles into the evidential version of the Fig. 4 network.
#[derive(Debug, Clone)]
pub struct PaperEvidentialNetwork {
    /// The network itself.
    pub network: EvidentialNetwork,
    /// Node id of the ground-truth node.
    pub ground_truth: usize,
    /// Node id of the perception node.
    pub perception: usize,
    /// Frame of the perception node (`car`, `pedestrian`, `none`).
    pub perception_frame: Frame,
}

/// Builds the evidential reading of Fig. 4 / Table I: the
/// `car_pedestrian` output is a *focal set* `{car, pedestrian}` (epistemic
/// indecision) and the missing 0.1 of the unknown row is mass on Θ
/// (ontological reserve). Queries return mass functions with Bel/Pl
/// bounds.
///
/// # Errors
///
/// Never fails for the built-in constants; the `Result` mirrors the
/// underlying constructors.
pub fn paper_evidential_network() -> Result<PaperEvidentialNetwork> {
    let gt_frame = Frame::new(GROUND_TRUTH_STATES.to_vec())
        .map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    let prior = MassFunction::bayesian(&gt_frame, &ground_truth_prior())
        .map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    let mut en = EvidentialNetwork::new();
    let ground_truth = en
        .add_root("ground_truth", &prior)
        .map_err(|e| SysuncError::CaseStudy(e.to_string()))?;

    let p_frame = Frame::new(vec!["car", "pedestrian", "none"])
        .map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    let car = p_frame.singleton("car").map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    let ped = p_frame
        .singleton("pedestrian")
        .map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    let none = p_frame.singleton("none").map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    let car_ped = p_frame
        .subset(&["car", "pedestrian"])
        .map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    let theta = p_frame.theta();
    let focal = vec![car, ped, car_ped, none, theta];
    let t = table1_cpt();
    let cmt = vec![
        vec![t[0][0], t[0][1], t[0][2], t[0][3], 0.0],
        vec![t[1][0], t[1][1], t[1][2], t[1][3], 0.0],
        // Table I unknown row + the unprinted 0.1 as ontological reserve.
        vec![t[2][0], t[2][1], t[2][2], t[2][3], 0.1],
    ];
    let perception = en
        .add_node("perception", p_frame.clone(), focal, vec![ground_truth], cmt)
        .map_err(|e| SysuncError::CaseStudy(e.to_string()))?;
    Ok(PaperEvidentialNetwork { network: en, ground_truth, perception, perception_frame: p_frame })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows() {
        let t = table1_cpt();
        assert!((t[0].iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((t[1].iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // The paper's unknown row famously sums to 0.9.
        assert!((t[2].iter().sum::<f64>() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn bayes_net_perception_marginal() {
        let bn = paper_bayes_net().unwrap();
        let m = bn.marginal("perception", &[]).unwrap();
        // P(perception = car) = 0.6*0.9 + 0.3*0.005 + 0.1*0 = 0.5415.
        assert!((m[0] - 0.5415).abs() < 1e-12);
        // P(perception = pedestrian) = 0.6*0.005 + 0.3*0.9 = 0.273.
        assert!((m[1] - 0.273).abs() < 1e-12);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bayes_net_diagnostic_posteriors() {
        let bn = paper_bayes_net().unwrap();
        // Given output "none", the unknown object dominates.
        let post = bn.marginal("ground_truth", &[("perception", "none")]).unwrap();
        assert!(post[2] > post[0] && post[2] > post[1], "unknown dominates: {post:?}");
        // Given output "car", ground truth is almost surely car.
        let post_car = bn.marginal("ground_truth", &[("perception", "car")]).unwrap();
        assert!(post_car[0] > 0.99);
    }

    #[test]
    fn evidential_network_bel_pl_on_car() {
        let p = paper_evidential_network().unwrap();
        let m = p.network.query(p.perception, &[]).unwrap();
        let car = p.perception_frame.singleton("car").unwrap();
        let bel = m.belief(car);
        let pl = m.plausibility(car);
        // Bel = singleton car mass: 0.6*0.9 + 0.3*0.005.
        assert!((bel - 0.5415).abs() < 1e-12);
        // Pl adds the {car,pedestrian} epistemic mass and Θ reserve:
        // + (0.6+0.3)*0.05 + 0.1*0.2 + 0.1*0.1.
        assert!((pl - (0.5415 + 0.045 + 0.02 + 0.01)).abs() < 1e-12);
    }

    #[test]
    fn evidential_and_bayesian_agree_on_bel_when_renormalized() {
        // The Bayesian reading's P(car) equals the evidential Bel(car) for
        // the car/pedestrian rows (which are proper distributions).
        let bn = paper_bayes_net().unwrap();
        let p = paper_evidential_network().unwrap();
        let m_bn = bn.marginal("perception", &[]).unwrap();
        let m_ev = p.network.query(p.perception, &[]).unwrap();
        let car = p.perception_frame.singleton("car").unwrap();
        assert!((m_bn[0] - m_ev.belief(car)).abs() < 1e-12);
    }

    #[test]
    fn ontological_reserve_propagates() {
        let p = paper_evidential_network().unwrap();
        let m = p.network.query(p.perception, &[]).unwrap();
        assert!((m.mass(p.perception_frame.theta()) - 0.01).abs() < 1e-12);
        // Nonspecific (non-Bayesian) mass: {car,ped} column + Θ.
        let nonspec = m.nonspecificity_mass();
        let expect = 0.6 * 0.05 + 0.3 * 0.05 + 0.1 * 0.2 + 0.01;
        assert!((nonspec - expect).abs() < 1e-12);
    }
}
