/root/repo/target/debug/deps/sysunc_algebra-29682cd368f13b26.d: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

/root/repo/target/debug/deps/sysunc_algebra-29682cd368f13b26: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

crates/algebra/src/lib.rs:
crates/algebra/src/decomp.rs:
crates/algebra/src/eigen.rs:
crates/algebra/src/error.rs:
crates/algebra/src/matrix.rs:
crates/algebra/src/orthopoly.rs:
