/root/repo/target/release/deps/sysunc_bayesnet-c88a4dc8c0d9e59e.d: crates/bayesnet/src/lib.rs crates/bayesnet/src/error.rs crates/bayesnet/src/evidential.rs crates/bayesnet/src/factor.rs crates/bayesnet/src/infer.rs crates/bayesnet/src/learn.rs crates/bayesnet/src/mpe.rs crates/bayesnet/src/network.rs crates/bayesnet/src/ranked.rs crates/bayesnet/src/structure.rs

/root/repo/target/release/deps/libsysunc_bayesnet-c88a4dc8c0d9e59e.rlib: crates/bayesnet/src/lib.rs crates/bayesnet/src/error.rs crates/bayesnet/src/evidential.rs crates/bayesnet/src/factor.rs crates/bayesnet/src/infer.rs crates/bayesnet/src/learn.rs crates/bayesnet/src/mpe.rs crates/bayesnet/src/network.rs crates/bayesnet/src/ranked.rs crates/bayesnet/src/structure.rs

/root/repo/target/release/deps/libsysunc_bayesnet-c88a4dc8c0d9e59e.rmeta: crates/bayesnet/src/lib.rs crates/bayesnet/src/error.rs crates/bayesnet/src/evidential.rs crates/bayesnet/src/factor.rs crates/bayesnet/src/infer.rs crates/bayesnet/src/learn.rs crates/bayesnet/src/mpe.rs crates/bayesnet/src/network.rs crates/bayesnet/src/ranked.rs crates/bayesnet/src/structure.rs

crates/bayesnet/src/lib.rs:
crates/bayesnet/src/error.rs:
crates/bayesnet/src/evidential.rs:
crates/bayesnet/src/factor.rs:
crates/bayesnet/src/infer.rs:
crates/bayesnet/src/learn.rs:
crates/bayesnet/src/mpe.rs:
crates/bayesnet/src/network.rs:
crates/bayesnet/src/ranked.rs:
crates/bayesnet/src/structure.rs:
