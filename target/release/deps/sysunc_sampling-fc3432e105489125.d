/root/repo/target/release/deps/sysunc_sampling-fc3432e105489125.d: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

/root/repo/target/release/deps/libsysunc_sampling-fc3432e105489125.rlib: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

/root/repo/target/release/deps/libsysunc_sampling-fc3432e105489125.rmeta: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

crates/sampling/src/lib.rs:
crates/sampling/src/design.rs:
crates/sampling/src/error.rs:
crates/sampling/src/propagate.rs:
crates/sampling/src/variance_reduction.rs:
