//! Matrix decompositions: Cholesky, LU with partial pivoting, and
//! Householder QR least squares.

use crate::error::{AlgebraError, Result};
use crate::matrix::Matrix;

/// Cholesky factorization `A = L L^T` of a symmetric positive-definite
/// matrix.
///
/// Used to sample correlated Gaussian inputs and to solve normal equations.
///
/// # Examples
///
/// ```
/// use sysunc_algebra::{Cholesky, Matrix};
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let ch = Cholesky::new(&a)?;
/// let x = ch.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// # Ok::<(), sysunc_algebra::AlgebraError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::NotSquare`] for rectangular input and
    /// [`AlgebraError::NotPositiveDefinite`] when a pivot is non-positive.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(AlgebraError::NotSquare);
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(AlgebraError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Self { l })
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(AlgebraError::DimensionMismatch(format!(
                "solve: expected length {n}, got {}",
                b.len()
            )));
        }
        // Forward substitution L y = b.
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Backward substitution L^T x = y.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of `A` (`2 Σ ln L_ii`).
    pub fn ln_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Applies `L` to a vector (`L z`), mapping i.i.d. standard normals to
    /// correlated normals with covariance `A`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DimensionMismatch`] when `z` has the wrong
    /// length.
    pub fn mul_l(&self, z: &[f64]) -> Result<Vec<f64>> {
        self.l.mul_vec(z)
    }
}

/// LU factorization with partial pivoting, `P A = L U`.
#[derive(Debug, Clone, PartialEq)]
pub struct Lu {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::NotSquare`] for rectangular input and
    /// [`AlgebraError::Singular`] when a pivot vanishes.
    pub fn new(a: &Matrix) -> Result<Self> {
        if !a.is_square() {
            return Err(AlgebraError::NotSquare);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot.
            let mut p = k;
            let mut max = lu[(k, k)].abs();
            for i in k + 1..n {
                if lu[(i, k)].abs() > max {
                    max = lu[(i, k)].abs();
                    p = i;
                }
            }
            if max < 1e-300 {
                return Err(AlgebraError::Singular);
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                sign = -sign;
            }
            for i in k + 1..n {
                let factor = lu[(i, k)] / lu[(k, k)];
                lu[(i, k)] = factor;
                for j in k + 1..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Ok(Self { lu, perm, sign })
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(AlgebraError::DimensionMismatch(format!(
                "solve: expected length {n}, got {}",
                b.len()
            )));
        }
        // Apply permutation, forward substitution (unit lower).
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[self.perm[i]];
            for k in 0..i {
                sum -= self.lu[(i, k)] * y[k];
            }
            y[i] = sum;
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in i + 1..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        self.sign * (0..self.lu.rows()).map(|i| self.lu[(i, i)]).product::<f64>()
    }

    /// Inverse of the original matrix.
    ///
    /// # Errors
    ///
    /// Propagates errors of [`Lu::solve`] (which cannot occur for a valid
    /// factorization).
    pub fn inverse(&self) -> Result<Matrix> {
        let n = self.lu.rows();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = col[i];
            }
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

/// Solves the least-squares problem `min ||A x - b||` via Householder QR.
///
/// More numerically robust than normal equations for the ill-conditioned
/// Vandermonde-like design matrices of PCE regression.
///
/// # Errors
///
/// Returns [`AlgebraError::DimensionMismatch`] when `b.len() != A.rows()` or
/// the system is underdetermined, and [`AlgebraError::Singular`] when `A` is
/// rank-deficient.
///
/// # Examples
///
/// ```
/// use sysunc_algebra::{lstsq, Matrix};
/// // Fit y = 1 + 2x through noisy-free points.
/// let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let x = lstsq(&a, &[1.0, 3.0, 5.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok::<(), sysunc_algebra::AlgebraError>(())
/// ```
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let m = a.rows();
    let n = a.cols();
    if b.len() != m {
        return Err(AlgebraError::DimensionMismatch(format!(
            "lstsq: A has {m} rows, b has {}",
            b.len()
        )));
    }
    if m < n {
        return Err(AlgebraError::DimensionMismatch(format!(
            "lstsq: underdetermined system ({m} rows < {n} cols)"
        )));
    }
    let mut r = a.clone();
    let mut qtb = b.to_vec();
    // Householder triangularization, applying reflectors to b on the fly.
    for k in 0..n {
        // Compute the norm of the k-th column below the diagonal.
        let mut norm = 0.0;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-300 {
            return Err(AlgebraError::Singular);
        }
        let alpha = if r[(k, k)] > 0.0 { -norm } else { norm };
        // v = x - alpha e1
        let mut v = vec![0.0; m - k];
        for i in k..m {
            v[i - k] = r[(i, k)];
        }
        v[0] -= alpha;
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-300 {
            continue;
        }
        // Apply H = I - 2 v v^T / (v^T v) to R and qtb.
        for j in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r[(i, j)];
            }
            let factor = 2.0 * dot / vnorm2;
            for i in k..m {
                r[(i, j)] -= factor * v[i - k];
            }
        }
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * qtb[i];
        }
        let factor = 2.0 * dot / vnorm2;
        for i in k..m {
            qtb[i] -= factor * v[i - k];
        }
    }
    // Back substitution on the n×n upper triangle.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = qtb[i];
        for j in i + 1..n {
            sum -= r[(i, j)] * x[j];
        }
        if r[(i, i)].abs() < 1e-300 {
            return Err(AlgebraError::Singular);
        }
        x[i] = sum / r[(i, i)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_reconstructs_and_solves() {
        let a = Matrix::from_rows(&[&[25.0, 15.0, -5.0], &[15.0, 18.0, 0.0], &[-5.0, 0.0, 11.0]])
            .unwrap();
        let ch = Cholesky::new(&a).unwrap();
        let l = ch.l();
        let rebuilt = l * &l.transpose();
        assert!((&rebuilt - &a).max_abs() < 1e-12);
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (got, want) in ax.iter().zip(&b) {
            assert!((got - want).abs() < 1e-10);
        }
        assert!(ch.solve(&[1.0]).is_err());
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(Cholesky::new(&a), Err(AlgebraError::NotPositiveDefinite)));
        let rect = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::new(&rect), Err(AlgebraError::NotSquare)));
    }

    #[test]
    fn cholesky_ln_det() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]).unwrap();
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.ln_det() - 36.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn lu_solves_and_determinant() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, 1.0], &[4.0, -6.0, 0.0], &[-2.0, 7.0, 2.0]])
            .unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[5.0, -2.0, 9.0]).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        assert!((ax[0] - 5.0).abs() < 1e-10);
        assert!((ax[1] + 2.0).abs() < 1e-10);
        assert!((ax[2] - 9.0).abs() < 1e-10);
        // det = -16 for this classic example.
        assert!((lu.det() + 16.0).abs() < 1e-10);
    }

    #[test]
    fn lu_inverse_round_trip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 7.0]]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = &a * &inv;
        assert!((&prod - &Matrix::identity(2)).max_abs() < 1e-12);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(AlgebraError::Singular)));
    }

    #[test]
    fn lu_pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&[3.0, 4.0]).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-14);
        assert!((x[1] - 3.0).abs() < 1e-14);
        assert!((lu.det() + 1.0).abs() < 1e-14);
    }

    #[test]
    fn lstsq_exact_and_overdetermined() {
        // Overdetermined consistent system.
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = lstsq(&a, &b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
        // Inconsistent system: solution minimizes the residual → normal
        // equations hold: A^T(Ax - b) = 0.
        let b2 = [0.0, 1.0, 1.0, 3.0];
        let x2 = lstsq(&a, &b2).unwrap();
        let r: Vec<f64> =
            a.mul_vec(&x2).unwrap().iter().zip(&b2).map(|(ax, b)| ax - b).collect();
        let atr = a.transpose_mul_vec(&r).unwrap();
        assert!(atr.iter().all(|v| v.abs() < 1e-12));
    }

    #[test]
    fn lstsq_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        assert!(lstsq(&a, &[1.0, 2.0]).is_err());
        let a2 = Matrix::identity(2);
        assert!(lstsq(&a2, &[1.0]).is_err());
        // Rank-deficient design matrix.
        let a3 = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        assert!(lstsq(&a3, &[1.0, 2.0, 3.0]).is_err());
    }
}
