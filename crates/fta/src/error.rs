//! Error types for fault tree analysis.

use std::fmt;

/// Errors from fault tree construction and quantification.
#[derive(Debug, Clone, PartialEq)]
pub enum FtaError {
    /// A basic event was malformed (bad probability, duplicate name, bad
    /// index).
    InvalidEvent(String),
    /// A gate was malformed (no inputs, dangling reference, bad k).
    InvalidGate(String),
    /// No top event has been set.
    NoTopEvent,
    /// The analysis exceeds the implementation's size guard; the payload
    /// is the offending count.
    TooLarge(usize),
}

impl fmt::Display for FtaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FtaError::InvalidEvent(msg) => write!(f, "invalid basic event: {msg}"),
            FtaError::InvalidGate(msg) => write!(f, "invalid gate: {msg}"),
            FtaError::NoTopEvent => write!(f, "no top event set"),
            FtaError::TooLarge(n) => write!(f, "analysis too large: {n} elements"),
        }
    }
}

impl std::error::Error for FtaError {}

/// Convenience result alias for the FTA crate.
pub type Result<T> = std::result::Result<T, FtaError>;
