/root/repo/target/release/deps/exp_evidential-a371275cd0aca330.d: crates/bench/src/bin/exp_evidential.rs

/root/repo/target/release/deps/exp_evidential-a371275cd0aca330: crates/bench/src/bin/exp_evidential.rs

crates/bench/src/bin/exp_evidential.rs:
