/root/repo/target/debug/deps/exp_fta-e6d8fe81c6477523.d: crates/bench/src/bin/exp_fta.rs

/root/repo/target/debug/deps/libexp_fta-e6d8fe81c6477523.rmeta: crates/bench/src/bin/exp_fta.rs

crates/bench/src/bin/exp_fta.rs:
