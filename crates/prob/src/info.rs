//! Information-theoretic measures.
//!
//! The paper (Secs. III-B/III-C) proposes **conditional entropy** between a
//! system and its model as the formal expression of epistemic uncertainty
//! and of the "surprise factor" that signals ontological events. This module
//! provides those quantities for discrete distributions and joint tables.
//!
//! All entropies are in **nats** unless a `_bits` suffix says otherwise.

use crate::error::{ProbError, Result};

/// Shannon entropy `H(p) = -Σ p_i ln p_i` of a discrete distribution.
///
/// Zero-probability entries contribute zero (the `0 ln 0 = 0` convention).
/// The input need not be exactly normalized; entries are used as given.
///
/// # Examples
///
/// ```
/// use sysunc_prob::info::entropy;
/// let h = entropy(&[0.5, 0.5]);
/// assert!((h - std::f64::consts::LN_2).abs() < 1e-15);
/// ```
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&pi| pi > 0.0).map(|&pi| -pi * pi.ln()).sum()
}

/// Shannon entropy in bits.
pub fn entropy_bits(p: &[f64]) -> f64 {
    entropy(p) / std::f64::consts::LN_2
}

/// Cross entropy `H(p, q) = -Σ p_i ln q_i`.
///
/// Returns infinity when `p` puts mass where `q` has none — exactly the
/// signature of an *ontological* event: the world (`p`) produced something
/// the model (`q`) declared impossible.
///
/// # Errors
///
/// Returns [`ProbError::DimensionMismatch`] when the slices differ in
/// length.
pub fn cross_entropy(p: &[f64], q: &[f64]) -> Result<f64> {
    if p.len() != q.len() {
        return Err(ProbError::DimensionMismatch { expected: p.len(), actual: q.len() });
    }
    let mut acc = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return Ok(f64::INFINITY);
            }
            acc -= pi * qi.ln();
        }
    }
    Ok(acc)
}

/// Kullback–Leibler divergence `D(p || q) = Σ p_i ln(p_i / q_i)`.
///
/// # Errors
///
/// Returns [`ProbError::DimensionMismatch`] when the slices differ in
/// length.
pub fn kl_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    Ok(cross_entropy(p, q)? - entropy(p))
}

/// Jensen–Shannon divergence (symmetric, bounded by `ln 2`).
///
/// # Errors
///
/// Returns [`ProbError::DimensionMismatch`] when the slices differ in
/// length.
pub fn js_divergence(p: &[f64], q: &[f64]) -> Result<f64> {
    if p.len() != q.len() {
        return Err(ProbError::DimensionMismatch { expected: p.len(), actual: q.len() });
    }
    let m: Vec<f64> = p.iter().zip(q).map(|(&pi, &qi)| 0.5 * (pi + qi)).collect();
    Ok(0.5 * kl_divergence(p, &m)? + 0.5 * kl_divergence(q, &m)?)
}

/// A joint probability table over two discrete variables, stored row-major:
/// `joint[i][j] = P(X = i, Y = j)`.
#[derive(Debug, Clone, PartialEq)]
pub struct JointTable {
    rows: usize,
    cols: usize,
    p: Vec<f64>,
}

impl JointTable {
    /// Creates a joint table from row-major probabilities.
    ///
    /// # Errors
    ///
    /// Returns an error for empty tables, negative entries, length
    /// mismatches, or totals that deviate from 1 by more than `1e-6`.
    pub fn new(rows: usize, cols: usize, p: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 {
            return Err(ProbError::InvalidProbabilities("empty joint table".into()));
        }
        if p.len() != rows * cols {
            return Err(ProbError::DimensionMismatch { expected: rows * cols, actual: p.len() });
        }
        if p.iter().any(|&x| x < 0.0 || !x.is_finite()) {
            return Err(ProbError::InvalidProbabilities("negative or non-finite entry".into()));
        }
        let total: f64 = p.iter().sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(ProbError::InvalidProbabilities(format!(
                "joint table sums to {total}, expected 1"
            )));
        }
        // Exact renormalization.
        let p = p.iter().map(|x| x / total).collect();
        Ok(Self { rows, cols, p })
    }

    /// Builds the joint `P(X, Y)` from a prior `P(X)` and a conditional
    /// row-stochastic matrix `P(Y | X)` (rows indexed by `X`).
    ///
    /// This mirrors the construction of the paper's Fig. 4 network: ground
    /// truth prior × Table I CPT.
    ///
    /// # Errors
    ///
    /// Returns an error when dimensions disagree or probabilities are
    /// invalid.
    pub fn from_prior_and_conditional(prior: &[f64], conditional: &[Vec<f64>]) -> Result<Self> {
        if prior.len() != conditional.len() {
            return Err(ProbError::DimensionMismatch {
                expected: prior.len(),
                actual: conditional.len(),
            });
        }
        let cols = conditional.first().map_or(0, |r| r.len());
        let mut p = Vec::with_capacity(prior.len() * cols);
        for (pi, row) in prior.iter().zip(conditional) {
            if row.len() != cols {
                return Err(ProbError::DimensionMismatch { expected: cols, actual: row.len() });
            }
            for &c in row {
                p.push(pi * c);
            }
        }
        Self::new(prior.len(), cols, p)
    }

    /// Number of rows (states of `X`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (states of `Y`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Probability `P(X = i, Y = j)`.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.rows && j < self.cols, "JointTable::get: index out of range");
        self.p[i * self.cols + j]
    }

    /// Marginal distribution of `X` (row sums).
    pub fn marginal_x(&self) -> Vec<f64> {
        (0..self.rows).map(|i| (0..self.cols).map(|j| self.get(i, j)).sum()).collect()
    }

    /// Marginal distribution of `Y` (column sums).
    pub fn marginal_y(&self) -> Vec<f64> {
        (0..self.cols).map(|j| (0..self.rows).map(|i| self.get(i, j)).sum()).collect()
    }

    /// Posterior `P(X | Y = j)` by Bayes' rule.
    ///
    /// Returns `None` when `P(Y = j) = 0`.
    pub fn posterior_x_given_y(&self, j: usize) -> Option<Vec<f64>> {
        let py: f64 = (0..self.rows).map(|i| self.get(i, j)).sum();
        if py <= 0.0 {
            return None;
        }
        Some((0..self.rows).map(|i| self.get(i, j) / py).collect())
    }

    /// Joint entropy `H(X, Y)`.
    pub fn joint_entropy(&self) -> f64 {
        entropy(&self.p)
    }

    /// Conditional entropy `H(Y | X) = H(X, Y) - H(X)` — the paper's formal
    /// "surprise factor" when `X` is the system state and `Y` the model's
    /// account of it (Sec. III-C).
    pub fn conditional_entropy_y_given_x(&self) -> f64 {
        (self.joint_entropy() - entropy(&self.marginal_x())).max(0.0)
    }

    /// Conditional entropy `H(X | Y)` — the residual uncertainty about the
    /// ground truth once the perception output is known.
    pub fn conditional_entropy_x_given_y(&self) -> f64 {
        (self.joint_entropy() - entropy(&self.marginal_y())).max(0.0)
    }

    /// Mutual information `I(X; Y) = H(X) + H(Y) - H(X, Y)`.
    pub fn mutual_information(&self) -> f64 {
        (entropy(&self.marginal_x()) + entropy(&self.marginal_y()) - self.joint_entropy()).max(0.0)
    }
}

/// Surprisal `-ln p` of observing an event the model assigned probability
/// `p`. Infinite for `p = 0` — the quantitative signature of an ontological
/// event.
pub fn surprisal(p: f64) -> f64 {
    if p <= 0.0 {
        f64::INFINITY
    } else {
        -p.ln()
    }
}

/// Average log-loss (negative log-likelihood per observation) of predicted
/// probabilities assigned to realized outcomes.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] on empty input.
pub fn log_loss(predicted_probs_of_outcomes: &[f64]) -> Result<f64> {
    if predicted_probs_of_outcomes.is_empty() {
        return Err(ProbError::EmptyData);
    }
    Ok(predicted_probs_of_outcomes.iter().map(|&p| surprisal(p)).sum::<f64>()
        / predicted_probs_of_outcomes.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_edge_cases() {
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        assert!((entropy(&[0.25; 4]) - 4.0f64.ln()).abs() < 1e-14);
        assert!((entropy_bits(&[0.25; 4]) - 2.0).abs() < 1e-14);
    }

    #[test]
    fn kl_properties() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.5, 0.3, 0.2];
        let d = kl_divergence(&p, &q).unwrap();
        assert!(d > 0.0);
        assert!((kl_divergence(&p, &p).unwrap()).abs() < 1e-14);
        // Ontological signature: mass where the model says impossible.
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]).unwrap(), f64::INFINITY);
        assert!(kl_divergence(&p, &[0.5, 0.5]).is_err());
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [0.9, 0.1];
        let q = [0.1, 0.9];
        let d1 = js_divergence(&p, &q).unwrap();
        let d2 = js_divergence(&q, &p).unwrap();
        assert!((d1 - d2).abs() < 1e-14);
        assert!(d1 <= std::f64::consts::LN_2 + 1e-12);
    }

    #[test]
    fn joint_table_construction_and_marginals() {
        // Paper Table I joint: prior (0.6, 0.3, 0.1) × CPT.
        let prior = [0.6, 0.3, 0.1];
        let cpt = vec![
            vec![0.9, 0.005, 0.05, 0.045],
            vec![0.005, 0.9, 0.05, 0.045],
            vec![0.0, 0.0, 0.2, 0.7],
        ];
        // The third CPT row sums to 0.9 in the paper (the remaining 0.1 is
        // the unmodeled part); pad it to a proper distribution for this test.
        let mut cpt = cpt;
        cpt[2] = vec![0.0, 0.0, 0.25, 0.75];
        let j = JointTable::from_prior_and_conditional(&prior, &cpt).unwrap();
        let mx = j.marginal_x();
        assert!((mx[0] - 0.6).abs() < 1e-12);
        let my = j.marginal_y();
        assert!((my.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // P(perception = car) = 0.6*0.9 + 0.3*0.005 = 0.5415
        assert!((my[0] - 0.5415).abs() < 1e-12);
    }

    #[test]
    fn posterior_bayes_rule() {
        let j = JointTable::new(2, 2, vec![0.4, 0.1, 0.2, 0.3]).unwrap();
        let post = j.posterior_x_given_y(0).unwrap();
        assert!((post[0] - 0.4 / 0.6).abs() < 1e-12);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conditional_entropy_chain_rule() {
        let j = JointTable::new(2, 3, vec![0.1, 0.2, 0.1, 0.2, 0.2, 0.2]).unwrap();
        let lhs = j.joint_entropy();
        let rhs = entropy(&j.marginal_x()) + j.conditional_entropy_y_given_x();
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn mutual_information_zero_iff_independent() {
        // Independent joint.
        let px = [0.3, 0.7];
        let py = [0.4, 0.6];
        let mut p = Vec::new();
        for &a in &px {
            for &b in &py {
                p.push(a * b);
            }
        }
        let j = JointTable::new(2, 2, p).unwrap();
        assert!(j.mutual_information().abs() < 1e-12);
        // Perfectly correlated joint.
        let j2 = JointTable::new(2, 2, vec![0.5, 0.0, 0.0, 0.5]).unwrap();
        assert!((j2.mutual_information() - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn surprisal_and_log_loss() {
        assert_eq!(surprisal(0.0), f64::INFINITY);
        assert!((surprisal(1.0)).abs() < 1e-15);
        let ll = log_loss(&[0.5, 0.25]).unwrap();
        assert!((ll - 1.5 * std::f64::consts::LN_2).abs() < 1e-12);
        assert!(log_loss(&[]).is_err());
    }

    #[test]
    fn joint_table_rejects_bad_input() {
        assert!(JointTable::new(0, 2, vec![]).is_err());
        assert!(JointTable::new(2, 2, vec![0.5, 0.5, 0.5, 0.5]).is_err());
        assert!(JointTable::new(2, 2, vec![0.5, -0.1, 0.3, 0.3]).is_err());
        assert!(JointTable::new(2, 2, vec![0.5, 0.5]).is_err());
    }
}
