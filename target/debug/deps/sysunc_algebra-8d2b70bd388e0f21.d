/root/repo/target/debug/deps/sysunc_algebra-8d2b70bd388e0f21.d: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

/root/repo/target/debug/deps/libsysunc_algebra-8d2b70bd388e0f21.rlib: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

/root/repo/target/debug/deps/libsysunc_algebra-8d2b70bd388e0f21.rmeta: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

crates/algebra/src/lib.rs:
crates/algebra/src/decomp.rs:
crates/algebra/src/eigen.rs:
crates/algebra/src/error.rs:
crates/algebra/src/matrix.rs:
crates/algebra/src/orthopoly.rs:
