//! A fixed-size worker pool with a bounded job queue.
//!
//! The queue bound is the server's backpressure valve: when every
//! worker is busy and the queue is full, [`WorkerPool::try_submit`]
//! refuses the job immediately — the caller answers `503` with
//! `Retry-After` instead of letting latency grow without bound.
//!
//! Shutdown is graceful by construction: workers drain everything that
//! was accepted into the queue before exiting, so an accepted request
//! is never silently dropped.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// A unit of work the pool executes.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutting_down: AtomicBool,
    capacity: usize,
    panics: AtomicU64,
}

/// Locks a mutex, recovering the guard from a poisoned lock — a
/// panicking job must not take the whole pool down with it.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed-size `std::thread` worker pool with a bounded queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &lock(&self.workers).len())
            .field("capacity", &self.shared.capacity)
            .field("queued", &self.queue_len())
            .finish()
    }
}

impl WorkerPool {
    /// Starts `workers` threads sharing a queue of at most
    /// `queue_capacity` waiting jobs. Both are clamped to at least 1.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            capacity: queue_capacity.max(1),
            panics: AtomicU64::new(0),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sysunc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()
            .unwrap_or_default();
        Self { shared, workers: Mutex::new(workers) }
    }

    /// Offers a job to the pool without blocking.
    ///
    /// # Errors
    ///
    /// Returns the job back when the queue is at capacity or the pool
    /// is shutting down — the caller decides how to refuse the work.
    pub fn try_submit(&self, job: Job) -> std::result::Result<(), Job> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(job);
        }
        let mut queue = lock(&self.shared.queue);
        if queue.len() >= self.shared.capacity {
            return Err(job);
        }
        queue.push_back(job);
        drop(queue);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Jobs currently waiting (not yet picked up by a worker).
    pub fn queue_len(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Number of jobs that panicked (and were contained).
    pub fn panic_count(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Stops accepting work, lets the workers drain every queued job,
    /// and joins them. Idempotent: a second call is a no-op.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        self.shared.ready.notify_all();
        let handles: Vec<_> = lock(&self.workers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// Accept-side backpressure: a hard cap on concurrently served
/// connections.
///
/// The acceptor asks for a [`ConnectionPermit`] before spawning a
/// connection thread; at the cap it gets `None` and answers `503 +
/// Retry-After` inline instead of growing the thread count without
/// bound. The permit is RAII — dropping it (normal exit or panic of
/// the connection thread) releases the slot, so the count can never
/// leak.
#[derive(Debug)]
pub struct ConnectionLimiter {
    active: Arc<AtomicUsize>,
    max: usize,
}

impl ConnectionLimiter {
    /// A limiter admitting at most `max` concurrent connections
    /// (clamped to at least 1).
    pub fn new(max: usize) -> Self {
        Self { active: Arc::new(AtomicUsize::new(0)), max: max.max(1) }
    }

    /// Claims a connection slot, or `None` at the cap.
    pub fn try_acquire(&self) -> Option<ConnectionPermit> {
        let mut current = self.active.load(Ordering::Relaxed);
        loop {
            if current >= self.max {
                return None;
            }
            match self.active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(ConnectionPermit { active: Arc::clone(&self.active) }),
                Err(now) => current = now,
            }
        }
    }

    /// Connections currently holding a permit.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The configured cap.
    pub fn max(&self) -> usize {
        self.max
    }
}

/// An RAII claim on one connection slot; dropping it frees the slot.
#[derive(Debug)]
pub struct ConnectionPermit {
    active: Arc<AtomicUsize>,
}

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutting_down.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match job {
            Some(job) => {
                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                    shared.panics.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_shutdown_drains_the_queue() {
        let pool = WorkerPool::new(2, 64);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let ran = Arc::clone(&ran);
            pool.try_submit(Box::new(move || {
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .ok()
            .expect("queue has room");
        }
        pool.shutdown();
        assert_eq!(ran.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn a_full_queue_refuses_jobs_and_returns_them() {
        let pool = WorkerPool::new(1, 1);
        let (block_tx, block_rx) = mpsc::channel::<()>();
        // Occupy the single worker until released.
        pool.try_submit(Box::new(move || {
            let _ = block_rx.recv_timeout(Duration::from_secs(5));
        }))
        .ok()
        .expect("worker slot");
        // Give the worker a moment to pick the job up, then fill the queue.
        std::thread::sleep(Duration::from_millis(50));
        pool.try_submit(Box::new(|| {})).ok().expect("queue slot");
        let refused = pool.try_submit(Box::new(|| {}));
        assert!(refused.is_err(), "third job must be refused");
        // The refused job is handed back intact and still callable.
        if let Err(job) = refused {
            job();
        }
        block_tx.send(()).expect("release worker");
        pool.shutdown();
    }

    #[test]
    fn submissions_after_shutdown_begin_are_refused() {
        let pool = WorkerPool::new(1, 4);
        pool.shared.shutting_down.store(true, Ordering::SeqCst);
        assert!(pool.try_submit(Box::new(|| {})).is_err());
        pool.shutdown();
    }

    #[test]
    fn connection_limiter_caps_and_releases_on_drop() {
        let limiter = ConnectionLimiter::new(2);
        let p1 = limiter.try_acquire().expect("first slot");
        let _p2 = limiter.try_acquire().expect("second slot");
        assert_eq!(limiter.active(), 2);
        assert!(limiter.try_acquire().is_none(), "cap reached");
        drop(p1);
        assert_eq!(limiter.active(), 1);
        assert!(limiter.try_acquire().is_some(), "slot reusable after drop");
        assert_eq!(limiter.max(), 2);
    }

    #[test]
    fn connection_limiter_is_race_free_under_contention() {
        let limiter = Arc::new(ConnectionLimiter::new(3));
        let admitted = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let limiter = Arc::clone(&limiter);
                let admitted = Arc::clone(&admitted);
                let peak = Arc::clone(&peak);
                scope.spawn(move || {
                    for _ in 0..200 {
                        if let Some(permit) = limiter.try_acquire() {
                            admitted.fetch_add(1, Ordering::Relaxed);
                            peak.fetch_max(limiter.active(), Ordering::Relaxed);
                            drop(permit);
                        }
                    }
                });
            }
        });
        assert!(admitted.load(Ordering::Relaxed) > 0);
        assert!(peak.load(Ordering::Relaxed) <= 3, "cap never exceeded");
        assert_eq!(limiter.active(), 0, "every permit released");
    }

    #[test]
    fn a_panicking_job_is_contained_and_counted() {
        let pool = WorkerPool::new(1, 4);
        pool.try_submit(Box::new(|| panic!("job exploded")))
            .ok()
            .expect("queue slot");
        let done = Arc::new(AtomicUsize::new(0));
        let done2 = Arc::clone(&done);
        pool.try_submit(Box::new(move || {
            done2.fetch_add(1, Ordering::SeqCst);
        }))
        .ok()
        .expect("queue slot");
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 1, "worker survived the panic");
    }
}
