//! Tier-1 gate: the workspace must pass its own static-analysis lint,
//! `sysunc-tidy`, with zero standing violations. Runs the real binary
//! the way CI does, so a regression in either the code base or the lint
//! itself fails the ordinary test suite.

use std::path::Path;
use std::process::Command;

#[test]
fn workspace_passes_sysunc_tidy_with_zero_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--offline", "-p", "sysunc-tidy", "--"])
        .arg(root)
        .current_dir(root)
        .output()
        .expect("sysunc-tidy should spawn");
    let stdout = String::from_utf8_lossy(&output.stdout);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        output.status.success(),
        "sysunc-tidy found violations:\n{stdout}\n{stderr}"
    );
    assert!(
        stdout.contains("0 violation(s)"),
        "expected a clean summary, got:\n{stdout}"
    );
    // The gate must actually have scanned the tree, not vacuously passed.
    let scanned: usize = stdout
        .lines()
        .find_map(|l| l.strip_prefix("sysunc-tidy: scanned ")?.split(' ').next()?.parse().ok())
        .expect("summary line present");
    assert!(scanned > 100, "suspiciously few files scanned: {scanned}");
}
