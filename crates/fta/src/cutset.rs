//! Minimal cut set computation (MOCUS) and cut-set-based quantification
//! bounds and importance measures.

use crate::error::{FtaError, Result};
use crate::tree::{FaultTree, GateKind, NodeRef};
use std::collections::BTreeSet;

/// A cut set: a set of basic-event indices whose joint failure causes the
/// top event.
pub type CutSet = BTreeSet<usize>;

/// Computes the minimal cut sets of the tree's top event using the MOCUS
/// top-down expansion with subsumption minimization.
///
/// # Errors
///
/// Returns [`FtaError::NoTopEvent`] when no top is set and
/// [`FtaError::TooLarge`] if the intermediate expansion exceeds one
/// million cut set candidates.
///
/// # Examples
///
/// ```
/// use sysunc_fta::{minimal_cut_sets, FaultTree, GateKind};
/// let mut ft = FaultTree::new();
/// let a = ft.add_basic_event("a", 0.1)?;
/// let b = ft.add_basic_event("b", 0.1)?;
/// let c = ft.add_basic_event("c", 0.1)?;
/// let and = ft.add_gate("ab", GateKind::And, vec![a, b])?;
/// let top = ft.add_gate("top", GateKind::Or, vec![and, c])?;
/// ft.set_top(top)?;
/// let cuts = minimal_cut_sets(&ft)?;
/// assert_eq!(cuts.len(), 2); // {a, b} and {c}
/// # Ok::<(), sysunc_fta::FtaError>(())
/// ```
pub fn minimal_cut_sets(tree: &FaultTree) -> Result<Vec<CutSet>> {
    const LIMIT: usize = 1_000_000;
    let top = tree.top().ok_or(FtaError::NoTopEvent)?;
    let mut sets = expand(tree, top, LIMIT)?;
    // Subsumption: drop any set that contains another.
    sets.sort_by_key(|s| s.len());
    let mut minimal: Vec<CutSet> = Vec::new();
    'outer: for s in sets {
        for m in &minimal {
            if m.is_subset(&s) {
                continue 'outer;
            }
        }
        minimal.push(s);
    }
    Ok(minimal)
}

/// Recursive expansion of a node into (not yet minimal) cut sets.
fn expand(tree: &FaultTree, node: NodeRef, limit: usize) -> Result<Vec<CutSet>> {
    match node {
        NodeRef::Basic(i) => Ok(vec![CutSet::from([i])]),
        NodeRef::Gate(g) => {
            let gate = &tree.gates()[g];
            let children: Vec<Vec<CutSet>> = gate
                .inputs
                .iter()
                .map(|&c| expand(tree, c, limit))
                .collect::<Result<_>>()?;
            match gate.kind {
                GateKind::Or => {
                    let mut out: Vec<CutSet> = children.into_iter().flatten().collect();
                    out.dedup();
                    check_limit(out.len(), limit)?;
                    Ok(out)
                }
                GateKind::And => combine_all(&children, limit),
                GateKind::KOfN(k) => {
                    // OR over all k-subsets of inputs, AND within.
                    let n = children.len();
                    let mut out = Vec::new();
                    let mut combo: Vec<usize> = (0..k).collect();
                    loop {
                        let subset: Vec<Vec<CutSet>> =
                            combo.iter().map(|&i| children[i].clone()).collect();
                        out.extend(combine_all(&subset, limit)?);
                        check_limit(out.len(), limit)?;
                        // Next k-combination.
                        let mut i = k;
                        loop {
                            if i == 0 {
                                return Ok(out);
                            }
                            i -= 1;
                            if combo[i] != i + n - k {
                                combo[i] += 1;
                                for j in i + 1..k {
                                    combo[j] = combo[j - 1] + 1;
                                }
                                break;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// Cartesian product with union — the AND combination of child cut sets.
fn combine_all(children: &[Vec<CutSet>], limit: usize) -> Result<Vec<CutSet>> {
    let mut acc: Vec<CutSet> = vec![CutSet::new()];
    for child in children {
        let mut next = Vec::with_capacity(acc.len() * child.len());
        for a in &acc {
            for c in child {
                let mut u = a.clone();
                u.extend(c.iter().copied());
                next.push(u);
            }
        }
        check_limit(next.len(), limit)?;
        acc = next;
    }
    Ok(acc)
}

fn check_limit(len: usize, limit: usize) -> Result<()> {
    if len > limit {
        Err(FtaError::TooLarge(len))
    } else {
        Ok(())
    }
}

/// Rare-event (first-order) approximation of the top-event probability:
/// the sum of cut-set probabilities. An upper bound for coherent trees.
pub fn rare_event_approximation(tree: &FaultTree, cuts: &[CutSet]) -> f64 {
    cuts.iter()
        .map(|c| c.iter().map(|&i| tree.basic_events()[i].probability).product::<f64>())
        .sum()
}

/// Esary–Proschan (min-cut upper bound) approximation:
/// `1 - Π_k (1 - P(C_k))`. Exact when cut sets are independent.
pub fn esary_proschan(tree: &FaultTree, cuts: &[CutSet]) -> f64 {
    1.0 - cuts
        .iter()
        .map(|c| {
            1.0 - c.iter().map(|&i| tree.basic_events()[i].probability).product::<f64>()
        })
        .product::<f64>()
}

/// Importance measures of a basic event, all defined from the exact
/// top-event probability with the event forced working/failed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceMeasures {
    /// Birnbaum: `P(top | e fails) - P(top | e works)`.
    pub birnbaum: f64,
    /// Fussell–Vesely: fraction of top probability carried by cut sets
    /// containing the event.
    pub fussell_vesely: f64,
    /// Risk achievement worth: `P(top | e fails) / P(top)`.
    pub risk_achievement_worth: f64,
    /// Risk reduction worth: `P(top) / P(top | e works)`.
    pub risk_reduction_worth: f64,
}

/// Computes importance measures for one basic event.
///
/// # Errors
///
/// Returns [`FtaError::InvalidEvent`] for bad indices and propagates
/// quantification errors.
pub fn importance(tree: &FaultTree, basic: usize) -> Result<ImportanceMeasures> {
    if basic >= tree.basic_events().len() {
        return Err(FtaError::InvalidEvent(format!("no basic event {basic}")));
    }
    let p0 = tree.top_probability_exact()?;
    let original = tree.basic_events()[basic].probability;
    let mut t = tree.clone();
    t.set_probability(basic, 1.0)?;
    let p_failed = t.top_probability_exact()?;
    t.set_probability(basic, 0.0)?;
    let p_working = t.top_probability_exact()?;
    t.set_probability(basic, original)?;
    let cuts = minimal_cut_sets(tree)?;
    let with_event: Vec<CutSet> =
        cuts.iter().filter(|c| c.contains(&basic)).cloned().collect();
    let fv = if p0 > 0.0 { esary_proschan(tree, &with_event) / p0 } else { 0.0 };
    Ok(ImportanceMeasures {
        birnbaum: p_failed - p_working,
        fussell_vesely: fv,
        risk_achievement_worth: if p0 > 0.0 { p_failed / p0 } else { f64::INFINITY },
        risk_reduction_worth: if p_working > 0.0 { p0 / p_working } else { f64::INFINITY },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Classic bridge-like tree: top = (A·B) + (C·D) + (A·D·E).
    fn sample_tree() -> FaultTree {
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.1).unwrap();
        let b = ft.add_basic_event("b", 0.2).unwrap();
        let c = ft.add_basic_event("c", 0.15).unwrap();
        let d = ft.add_basic_event("d", 0.05).unwrap();
        let e = ft.add_basic_event("e", 0.3).unwrap();
        let g1 = ft.add_gate("ab", GateKind::And, vec![a, b]).unwrap();
        let g2 = ft.add_gate("cd", GateKind::And, vec![c, d]).unwrap();
        let g3 = ft.add_gate("ade", GateKind::And, vec![a, d, e]).unwrap();
        let top = ft.add_gate("top", GateKind::Or, vec![g1, g2, g3]).unwrap();
        ft.set_top(top).unwrap();
        ft
    }

    #[test]
    fn mocus_finds_minimal_cut_sets() {
        let ft = sample_tree();
        let cuts = minimal_cut_sets(&ft).unwrap();
        assert_eq!(cuts.len(), 3);
        assert!(cuts.contains(&CutSet::from([0, 1])));
        assert!(cuts.contains(&CutSet::from([2, 3])));
        assert!(cuts.contains(&CutSet::from([0, 3, 4])));
    }

    #[test]
    fn subsumption_removes_non_minimal_sets() {
        // top = A + (A·B): minimal cut sets = {A} only.
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.1).unwrap();
        let b = ft.add_basic_event("b", 0.1).unwrap();
        let ab = ft.add_gate("ab", GateKind::And, vec![a, b]).unwrap();
        let top = ft.add_gate("top", GateKind::Or, vec![a, ab]).unwrap();
        ft.set_top(top).unwrap();
        let cuts = minimal_cut_sets(&ft).unwrap();
        assert_eq!(cuts, vec![CutSet::from([0])]);
    }

    #[test]
    fn kofn_cut_sets() {
        let mut ft = FaultTree::new();
        let events: Vec<NodeRef> =
            (0..4).map(|i| ft.add_basic_event(format!("e{i}"), 0.1).unwrap()).collect();
        let vote = ft.add_gate("2oo4", GateKind::KOfN(2), events).unwrap();
        ft.set_top(vote).unwrap();
        let cuts = minimal_cut_sets(&ft).unwrap();
        assert_eq!(cuts.len(), 6); // C(4, 2)
        assert!(cuts.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn bounds_bracket_exact_probability() {
        let ft = sample_tree();
        let cuts = minimal_cut_sets(&ft).unwrap();
        let exact = ft.top_probability_exact().unwrap();
        let rare = rare_event_approximation(&ft, &cuts);
        let ep = esary_proschan(&ft, &cuts);
        assert!(exact <= rare + 1e-12, "rare-event must upper bound: {exact} vs {rare}");
        assert!(exact <= ep + 1e-12, "Esary-Proschan upper bounds coherent trees");
        assert!(ep <= rare + 1e-12, "EP is tighter than the rare-event sum");
        // For small probabilities the bounds are tight.
        assert!((rare - exact) / exact < 0.05);
    }

    #[test]
    fn importance_ordering_is_sensible() {
        let ft = sample_tree();
        // Event a participates in two cut sets, event e in one (the
        // weakest). Birnbaum(a) should exceed Birnbaum(e).
        let ia = importance(&ft, 0).unwrap();
        let ie = importance(&ft, 4).unwrap();
        assert!(ia.birnbaum > ie.birnbaum);
        assert!(ia.fussell_vesely > ie.fussell_vesely);
        assert!(ia.risk_achievement_worth > 1.0);
        assert!(ia.risk_reduction_worth > 1.0);
        assert!(importance(&ft, 99).is_err());
    }

    #[test]
    fn single_event_importance_is_total() {
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.25).unwrap();
        ft.set_top(a).unwrap();
        let m = importance(&ft, 0).unwrap();
        assert!((m.birnbaum - 1.0).abs() < 1e-12);
        assert!((m.fussell_vesely - 1.0).abs() < 1e-12);
    }
}
