//! The paper's end goal (Secs. I, VI): derive and track an *overall
//! strategy* — identify uncertainty sources, classify them, assign means
//! from the Fig. 3 catalog, quantify an uncertainty budget through the
//! unified propagation-engine layer, and gate the release decision.
//!
//! Run with `cargo run --release --example strategy_workflow`.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::budget::UncertaintyBudget;
use sysunc::perception::{FieldCampaign, MissedHazardModel, ReleaseForecast, WorldModel};
use sysunc::prob::dist::Beta;
use sysunc::register::{MitigationStatus, UncertaintyRegister};
use sysunc::taxonomy::{Means, UncertaintyKind};
use sysunc::{
    EvidentialEngine, MonteCarloEngine, Propagator, PropagationRequest, UncertainInput,
};

fn main() -> sysunc::Result<()> {
    // ------------------------------------------------------------------
    // 1. Identify and classify uncertainty sources.
    // ------------------------------------------------------------------
    let mut register = UncertaintyRegister::new();
    register.add(
        "U1",
        "perception/classifier",
        "true confusion rates of the deployed classifier",
        UncertaintyKind::Epistemic,
    )?;
    register.add(
        "U2",
        "environment",
        "object mix encountered per drive (world priors)",
        UncertaintyKind::Aleatory,
    )?;
    register.add(
        "U3",
        "environment",
        "object classes absent from the perception model",
        UncertaintyKind::Ontological,
    )?;
    register.add(
        "U4",
        "perception/sensors",
        "common-cause degradation (weather) across camera and radar",
        UncertaintyKind::Epistemic,
    )?;

    println!("== Open register with catalog recommendations ==");
    for (id, recs) in register.recommendations() {
        println!("  {id}: {}", recs.join(" | "));
    }

    // ------------------------------------------------------------------
    // 2. Assign means per the taxonomy and execute them: the quantitative
    //    steps run through the unified Propagator engine layer, pushing
    //    the missed-hazard model of the Table I camera through the engine
    //    matching each assigned means.
    // ------------------------------------------------------------------
    register.assign("U1", Means::Removal)?; // design-time testing
    register.assign("U2", Means::Tolerance)?; // diverse fusion
    register.assign("U3", Means::Forecasting)?; // residual estimation + gate
    register.assign("U4", Means::Prevention)?; // diverse technologies, no shared mode

    let hazard = MissedHazardModel::paper_camera()?;

    // U2: aleatory world-mix spread. The per-drive pedestrian and novel
    // shares fluctuate around the paper's priors (0.3, 0.1); Monte Carlo
    // (removal engine) propagates that spread through the missed-hazard
    // model.
    let aleatory_request = PropagationRequest::new(
        vec![
            UncertainInput::Beta { alpha: 30.0, beta: 70.0 },
            UncertainInput::Beta { alpha: 10.0, beta: 90.0 },
        ],
        &hazard,
    )?
    .with_budget(20_000)
    .with_seed(2020);
    let aleatory_report = MonteCarloEngine.propagate(&aleatory_request)?;
    println!("\n== U2 aleatory propagation ==\n{aleatory_report}");
    let aleatory_level = aleatory_report.std_dev_estimate();
    register.set_status("U2", MitigationStatus::Verified)?;

    // U1: epistemic bounds. Field observation (10k labeled frames) pins
    // the pedestrian share; the novel share stays a pure interval —
    // only the evidential (tolerance) engine accepts that declaration
    // and returns a guaranteed envelope instead of a fake average.
    let posterior = Beta::new(1.0, 1.0)?.updated(9_641, 359); // 10k labeled frames
    let epistemic_request = PropagationRequest::new(
        vec![
            UncertainInput::Beta { alpha: posterior.alpha(), beta: posterior.beta() },
            UncertainInput::Interval { lo: 0.05, hi: 0.15 },
        ],
        &hazard,
    )?
    .with_budget(2_048)
    .with_seed(2020);
    let epistemic_report = EvidentialEngine::default().propagate(&epistemic_request)?;
    println!("\n== U1 epistemic envelope ==\n{epistemic_report}");
    let epistemic_width = epistemic_report.epistemic_width();
    register.set_status("U1", MitigationStatus::Verified)?;

    // U3: forecasting via a field campaign.
    let mut rng = StdRng::seed_from_u64(1);
    let world = WorldModel::paper_example()?;
    let mut campaign = FieldCampaign::new(2);
    campaign.observe_world(&world, 200_000, &mut rng);
    let forecast = ReleaseForecast::from_campaign(&campaign);
    register.set_status("U3", MitigationStatus::AcceptedResidual)?;

    // U4: prevention by diversity — verified by the common-cause FTA
    // (see exp_fta / E8); marked verified here.
    register.set_status("U4", MitigationStatus::Verified)?;

    // ------------------------------------------------------------------
    // 3. Assemble the budget and gate the release.
    // ------------------------------------------------------------------
    let measured = UncertaintyBudget::new(
        aleatory_level,
        epistemic_width,
        forecast.residual_novelty_rate,
    )?;
    let limits = UncertaintyBudget::new(0.2, 0.05, 0.005)?;
    println!("\n== Uncertainty budget ==");
    println!("  measured: {measured}");
    println!("  limits:   {limits}");
    println!("  dominant kind: {}", measured.dominant());
    println!("  violations: {:?}", measured.violations(&limits));

    println!("\n== Register ==");
    println!("{}", register.to_markdown());
    println!(
        "release ready: register {} / budget {}",
        register.release_ready(),
        measured.acceptable(&limits)
    );
    if !measured.acceptable(&limits) {
        println!(
            "  -> forecast: ~{} further encounters to reach the ontological limit",
            forecast.encounters_to_target(limits.level(UncertaintyKind::Ontological))?
        );
    }
    Ok(())
}
