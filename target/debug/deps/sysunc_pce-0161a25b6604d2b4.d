/root/repo/target/debug/deps/sysunc_pce-0161a25b6604d2b4.d: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

/root/repo/target/debug/deps/libsysunc_pce-0161a25b6604d2b4.rmeta: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

crates/pce/src/lib.rs:
crates/pce/src/error.rs:
crates/pce/src/expansion.rs:
crates/pce/src/input.rs:
crates/pce/src/multiindex.rs:
crates/pce/src/quadrature.rs:
