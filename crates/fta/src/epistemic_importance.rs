//! Epistemic importance: which basic event's *lack of knowledge*
//! contributes most to the uncertainty about the top event?
//!
//! Classic importance measures (Birnbaum, FV — see [`crate::importance`])
//! rank events by their contribution to the top-event *probability*. Under
//! the paper's taxonomy there is a second, distinct question: which
//! event's epistemic interval contributes most to the *width* of the
//! top-event interval — i.e. where would better knowledge (uncertainty
//! removal) pay off most? This is the pinning (freeze-one-at-a-time)
//! sensitivity of interval FTA.

use crate::error::Result;
use crate::tree::FaultTree;
use crate::uncertain::quantify_with;
use sysunc_evidence::Interval;

/// Epistemic importance of one basic event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpistemicImportance {
    /// Basic-event index.
    pub event: usize,
    /// Top-event interval width with this event pinned to its midpoint.
    pub pinned_width: f64,
    /// Width reduction achieved by pinning (baseline width − pinned
    /// width): the value of perfect information about this event.
    pub width_reduction: f64,
}

/// Computes the epistemic importance of every basic event: for each, the
/// top-event interval is re-quantified with that event's interval pinned
/// to its midpoint; the width reduction ranks where knowledge is most
/// valuable. Results are sorted by descending reduction.
///
/// # Errors
///
/// Propagates [`crate::quantify_with`] errors (probability count
/// mismatch, missing top event).
///
/// # Examples
///
/// ```
/// use sysunc_evidence::Interval;
/// use sysunc_fta::{epistemic_importance, FaultTree, GateKind};
/// let mut ft = FaultTree::new();
/// let a = ft.add_basic_event("well-known", 0.01)?;
/// let b = ft.add_basic_event("poorly-known", 0.01)?;
/// let top = ft.add_gate("top", GateKind::Or, vec![a, b])?;
/// ft.set_top(top)?;
/// let bands = vec![
///     Interval::new(0.009, 0.011)?, // tight
///     Interval::new(0.001, 0.1)?,   // wide
/// ];
/// let ranking = epistemic_importance(&ft, &bands)?;
/// assert_eq!(ranking[0].event, 1, "the poorly-known event dominates");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn epistemic_importance(
    tree: &FaultTree,
    intervals: &[Interval],
) -> Result<Vec<EpistemicImportance>> {
    let baseline = quantify_with(tree, intervals)?;
    let baseline_width = baseline.width();
    let mut out = Vec::with_capacity(intervals.len());
    for i in 0..intervals.len() {
        let mut pinned = intervals.to_vec();
        pinned[i] = Interval::degenerate(intervals[i].midpoint());
        let width = quantify_with(tree, &pinned)?.width();
        out.push(EpistemicImportance {
            event: i,
            pinned_width: width,
            width_reduction: (baseline_width - width).max(0.0),
        });
    }
    out.sort_by(|a, b| {
        b.width_reduction
            .partial_cmp(&a.width_reduction)
            .expect("finite widths") // tidy: allow(panic)
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::GateKind;

    fn tree() -> FaultTree {
        let mut ft = FaultTree::new();
        let a = ft.add_basic_event("a", 0.01).unwrap();
        let b = ft.add_basic_event("b", 0.02).unwrap();
        let c = ft.add_basic_event("c", 0.001).unwrap();
        let g = ft.add_gate("ab", GateKind::And, vec![a, b]).unwrap();
        let top = ft.add_gate("top", GateKind::Or, vec![g, c]).unwrap();
        ft.set_top(top).unwrap();
        ft
    }

    #[test]
    fn wide_band_on_dominant_event_ranks_first() {
        let ft = tree();
        // c dominates the top event (single-point); give it a wide band.
        let bands = vec![
            Interval::new(0.009, 0.011).unwrap(),
            Interval::new(0.019, 0.021).unwrap(),
            Interval::new(1e-4, 1e-2).unwrap(),
        ];
        let ranking = epistemic_importance(&ft, &bands).unwrap();
        assert_eq!(ranking[0].event, 2);
        assert!(ranking[0].width_reduction > 10.0 * ranking[1].width_reduction);
    }

    #[test]
    fn pinning_everything_recovers_zero_width() {
        let ft = tree();
        let degenerate: Vec<Interval> = ft
            .basic_events()
            .iter()
            .map(|e| Interval::degenerate(e.probability))
            .collect();
        let ranking = epistemic_importance(&ft, &degenerate).unwrap();
        for r in &ranking {
            assert_eq!(r.width_reduction, 0.0);
            assert_eq!(r.pinned_width, 0.0);
        }
    }

    #[test]
    fn reductions_are_bounded_by_baseline_width() {
        let ft = tree();
        let bands: Vec<Interval> = ft
            .basic_events()
            .iter()
            .map(|e| Interval::new(e.probability * 0.5, e.probability * 2.0).unwrap())
            .collect();
        let baseline = quantify_with(&ft, &bands).unwrap().width();
        for r in epistemic_importance(&ft, &bands).unwrap() {
            assert!(r.width_reduction <= baseline + 1e-15);
            assert!(r.pinned_width <= baseline + 1e-15);
        }
    }

    #[test]
    fn mismatched_band_count_errors() {
        let ft = tree();
        assert!(epistemic_importance(&ft, &[Interval::unit()]).is_err());
    }
}
