//! Poisson distribution.

use super::Discrete;
use crate::error::{ProbError, Result};
use crate::special::{ln_factorial, reg_upper_gamma};
use crate::rng::RngCore;

/// Poisson distribution with mean `lambda`.
///
/// Models counts of rare events per exposure unit — e.g. the number of
/// novel ("ontological") scenario encounters per million kilometres in the
/// field-observation experiments.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Discrete, Poisson};
/// let p = Poisson::new(3.0)?;
/// assert!((p.mean() - 3.0).abs() < 1e-15);
/// assert!((p.pmf(0) - (-3.0f64).exp()).abs() < 1e-14);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with rate `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if `lambda <= 0` or
    /// non-finite.
    pub fn new(lambda: f64) -> Result<Self> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(ProbError::InvalidParameter(format!(
                "Poisson requires lambda > 0, got {lambda}"
            )));
        }
        Ok(Self { lambda })
    }

    /// The rate parameter.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Knuth's multiplication sampler; valid for moderate `lambda`.
    fn sample_knuth(lambda: f64, rng: &mut dyn RngCore) -> u64 {
        use crate::rng::Rng as _;
        let limit = (-lambda).exp();
        let mut k = 0u64;
        let mut prod: f64 = rng.random();
        while prod > limit {
            k += 1;
            prod *= rng.random::<f64>();
        }
        k
    }
}

impl Discrete for Poisson {
    fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        k as f64 * self.lambda.ln() - self.lambda - ln_factorial(k)
    }

    fn cdf(&self, k: u64) -> f64 {
        // P(X <= k) = Q(k + 1, lambda)
        reg_upper_gamma(k as f64 + 1.0, self.lambda)
    }

    fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "Poisson::quantile: p in [0,1], got {q}");
        if q == 1.0 { // tidy: allow(float-eq)
            return u64::MAX;
        }
        // Start near mean, then linear scan (few steps in practice).
        let mut k = self.lambda.floor().max(0.0) as u64;
        // Walk down while the CDF at k-1 still exceeds q.
        while k > 0 && self.cdf(k - 1) >= q {
            k -= 1;
        }
        // Walk up while the CDF at k is below q.
        while self.cdf(k) < q {
            k += 1;
        }
        k
    }

    fn mean(&self) -> f64 {
        self.lambda
    }

    fn variance(&self) -> f64 {
        self.lambda
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        // Split large lambda into chunks (Poisson additivity) so Knuth's
        // method never underflows.
        let mut remaining = self.lambda;
        let mut total = 0u64;
        while remaining > 30.0 {
            total += Self::sample_knuth(30.0, rng);
            remaining -= 30.0;
        }
        total + Self::sample_knuth(remaining, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_lambda() {
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(-2.0).is_err());
    }

    #[test]
    fn pmf_sums_to_one() {
        let p = Poisson::new(4.5).unwrap();
        let total: f64 = (0..100).map(|k| p.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let p = Poisson::new(2.5).unwrap();
        let mut acc = 0.0;
        for k in 0..20u64 {
            acc += p.pmf(k);
            assert!((p.cdf(k) - acc).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn quantile_is_generalized_inverse() {
        let p = Poisson::new(7.0).unwrap();
        for &q in &[0.001, 0.2, 0.5, 0.8, 0.999] {
            let k = p.quantile(q);
            assert!(p.cdf(k) >= q);
            if k > 0 {
                assert!(p.cdf(k - 1) < q);
            }
        }
    }

    #[test]
    fn sample_mean_small_and_large_lambda() {
        for &lambda in &[0.5, 5.0, 120.0] {
            let p = Poisson::new(lambda).unwrap();
            let mut rng = testutil::rng(lambda as u64 + 3);
            let n = 50_000;
            let mean: f64 =
                p.sample_n(&mut rng, n).iter().map(|&x| x as f64).sum::<f64>() / n as f64;
            let se = (lambda / n as f64).sqrt();
            assert!((mean - lambda).abs() < 5.0 * se, "lambda={lambda} mean={mean}");
        }
    }
}
