/root/repo/target/debug/deps/sysunc_tidy-1b58ec637d7e4b4d.d: crates/tidy/src/main.rs

/root/repo/target/debug/deps/sysunc_tidy-1b58ec637d7e4b4d: crates/tidy/src/main.rs

crates/tidy/src/main.rs:
