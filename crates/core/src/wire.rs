//! The wire schema of the propagation service: JSON forms of
//! [`PropagationRequest`]/[`PropagationReport`] plus name-based engine
//! and model registries.
//!
//! An in-process [`PropagationRequest`] borrows its model as `&dyn
//! Model` — nothing a byte stream can carry. The wire form
//! ([`WireRequest`]) instead *names* a model registered in a
//! [`ModelRegistry`] and an engine from the fixed engine catalog, and
//! the serving layer resolves both names back to the in-process types.
//! This mirrors the machine-readable uncertainty-analysis interfaces of
//! the SysML-v2 modeling line of work: an analysis request is data, the
//! executable model stays on the server.
//!
//! Everything here round-trips through the in-tree
//! [`sysunc_prob::json`] reader/writer; floats use the shortest
//! round-tripping representation, so a decoded report is bit-identical
//! to the report the engine produced.

use crate::error::{Error, Result};
use crate::propagator::{
    EvidentialEngine, LatinHypercubeEngine, Model, MonteCarloEngine, PropagationReport,
    PropagationRequest, Propagator, SobolEngine, SpectralEngine, UncertainInput,
};
use sysunc_evidence::Interval;
use sysunc_prob::json::{field, obj, FromJson, Json, JsonError, ToJson};

/// The stable names of the engine catalog, in report order.
pub const ENGINE_NAMES: &[&str] =
    &["monte-carlo", "latin-hypercube", "sobol-qmc", "pce-spectral", "evidential"];

/// Constructs the engine with the given catalog name (default
/// configuration), or `None` for unknown names.
pub fn engine_by_name(name: &str) -> Option<Box<dyn Propagator + Send + Sync>> {
    match name {
        "monte-carlo" => Some(Box::new(MonteCarloEngine)),
        "latin-hypercube" => Some(Box::new(LatinHypercubeEngine)),
        "sobol-qmc" => Some(Box::new(SobolEngine)),
        "pce-spectral" => Some(Box::new(SpectralEngine::default())),
        "evidential" => Some(Box::new(EvidentialEngine::default())),
        _ => None,
    }
}

/// Interns an engine name against the catalog, recovering the
/// `&'static str` identity a [`PropagationReport`] carries.
fn intern_engine_name(name: &str) -> Option<&'static str> {
    ENGINE_NAMES.iter().find(|n| **n == name).copied()
}

/// A named catalog of deterministic models the serving layer can run.
///
/// Models are registered once at startup and looked up by name per
/// request; the registry is immutable while shared, so it can sit
/// behind an `Arc` across worker threads without locking.
#[derive(Default)]
pub struct ModelRegistry {
    entries: Vec<(String, Box<dyn Model + Send + Sync>)>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a model under a unique non-empty name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] for empty or duplicate names.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        model: Box<dyn Model + Send + Sync>,
    ) -> Result<()> {
        let name = name.into();
        if name.is_empty() {
            return Err(Error::InvalidInput("model name must be non-empty".into()));
        }
        if self.get(&name).is_some() {
            return Err(Error::InvalidInput(format!("duplicate model name '{name}'")));
        }
        self.entries.push((name, model));
        Ok(())
    }

    /// The model registered under `name`.
    pub fn get(&self, name: &str) -> Option<&(dyn Model + Send + Sync)> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, m)| m.as_ref())
    }

    /// All registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The standard model catalog served out of the box: closed-form
    /// toy models plus the paper-derived orbital and perception
    /// adapters.
    ///
    /// | name | inputs | output |
    /// |---|---|---|
    /// | `sum` | any | `Σ xᵢ` |
    /// | `linear-2x3y` | 2 | `2 x₀ + 3 x₁` |
    /// | `product` | any | `Π xᵢ` |
    /// | `orbital-period` | `[m1, m2, d]` | circular two-body period |
    /// | `orbital-energy` | `[m1, m2, d]` | total mechanical energy |
    /// | `missed-hazard` | `[p_ped, p_novel]` | missed-hazard rate of the Table I camera |
    ///
    /// # Errors
    ///
    /// Propagates construction failures of the paper case-study models
    /// (impossible for the built-in constants).
    pub fn standard() -> Result<Self> {
        let mut reg = Self::new();
        reg.register("sum", Box::new(|x: &[f64]| x.iter().sum::<f64>()))?;
        reg.register("linear-2x3y", Box::new(|x: &[f64]| {
            2.0 * x.first().copied().unwrap_or(0.0) + 3.0 * x.get(1).copied().unwrap_or(0.0)
        }))?;
        reg.register("product", Box::new(|x: &[f64]| x.iter().product::<f64>()))?;
        reg.register("orbital-period", Box::new(sysunc_orbital::TwoBodyPeriodModel))?;
        reg.register("orbital-energy", Box::new(sysunc_orbital::TwoBodyEnergyModel))?;
        reg.register(
            "missed-hazard",
            Box::new(sysunc_perception::MissedHazardModel::paper_camera()?),
        )?;
        Ok(reg)
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry").field("names", &self.names()).finish()
    }
}

/// The serializable form of a propagation problem: engine and model by
/// name, everything else by value. Defaults mirror
/// [`PropagationRequest::new`].
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Engine catalog name (see [`ENGINE_NAMES`]).
    pub engine: String,
    /// Registered model name (see [`ModelRegistry`]).
    pub model: String,
    /// Input declarations, one per model dimension.
    pub inputs: Vec<UncertainInput>,
    /// Evaluation budget.
    pub budget: usize,
    /// Seed all engine randomness derives from.
    pub seed: u64,
    /// Quantile levels to report, each in `(0, 1)`.
    pub quantile_levels: Vec<f64>,
    /// Optional exceedance query `P(Y > threshold)`.
    pub threshold: Option<f64>,
}

impl WireRequest {
    /// A request with the same defaults as [`PropagationRequest::new`]:
    /// budget 4096, seed 2020, quantiles 5% / 50% / 95%, no threshold.
    pub fn new(
        engine: impl Into<String>,
        model: impl Into<String>,
        inputs: Vec<UncertainInput>,
    ) -> Self {
        Self {
            engine: engine.into(),
            model: model.into(),
            inputs,
            budget: 4096,
            seed: 2020,
            quantile_levels: vec![0.05, 0.5, 0.95],
            threshold: None,
        }
    }

    /// Constructs the named engine from the catalog.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Unsupported`] for names outside [`ENGINE_NAMES`].
    pub fn resolve_engine(&self) -> Result<Box<dyn Propagator + Send + Sync>> {
        engine_by_name(&self.engine).ok_or_else(|| {
            Error::Unsupported(format!(
                "unknown engine '{}'; known engines: {}",
                self.engine,
                ENGINE_NAMES.join(", ")
            ))
        })
    }

    /// Binds the request to a resolved model reference, producing the
    /// in-process [`PropagationRequest`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidInput`] when inputs are empty or the
    /// quantile levels leave `(0, 1)`.
    pub fn to_request<'m>(&self, model: &'m dyn Model) -> Result<PropagationRequest<'m>> {
        PropagationRequest::new(self.inputs.clone(), model)?
            .with_budget(self.budget)
            .with_seed(self.seed)
            .with_quantile_levels(self.quantile_levels.clone())
            .map(|r| match self.threshold {
                Some(t) => r.with_threshold(t),
                None => r,
            })
    }
}

impl ToJson for WireRequest {
    fn to_json(&self) -> Json {
        obj([
            ("engine", self.engine.to_json()),
            ("model", self.model.to_json()),
            ("inputs", self.inputs.to_json()),
            ("budget", self.budget.to_json()),
            ("seed", self.seed.to_json()),
            ("quantile_levels", self.quantile_levels.to_json()),
            ("threshold", self.threshold.to_json()),
        ])
    }
}

impl FromJson for WireRequest {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let defaults = WireRequest::new("", "", Vec::new());
        let opt = |key: &str| v.get(key).filter(|j| !j.is_null());
        Ok(WireRequest {
            engine: field(v, "engine")?,
            model: field(v, "model")?,
            inputs: field(v, "inputs")?,
            budget: match opt("budget") {
                Some(j) => usize::from_json(j)?,
                None => defaults.budget,
            },
            seed: match opt("seed") {
                Some(j) => u64::from_json(j)?,
                None => defaults.seed,
            },
            quantile_levels: match opt("quantile_levels") {
                Some(j) => Vec::from_json(j)?,
                None => defaults.quantile_levels,
            },
            threshold: match v.get("threshold") {
                Some(j) => Option::from_json(j)?,
                None => None,
            },
        })
    }
}

impl ToJson for UncertainInput {
    fn to_json(&self) -> Json {
        match *self {
            UncertainInput::Normal { mu, sigma } => obj([
                ("dist", Json::Str("normal".into())),
                ("mu", mu.to_json()),
                ("sigma", sigma.to_json()),
            ]),
            UncertainInput::Uniform { a, b } => obj([
                ("dist", Json::Str("uniform".into())),
                ("a", a.to_json()),
                ("b", b.to_json()),
            ]),
            UncertainInput::Exponential { rate } => {
                obj([("dist", Json::Str("exponential".into())), ("rate", rate.to_json())])
            }
            UncertainInput::Beta { alpha, beta } => obj([
                ("dist", Json::Str("beta".into())),
                ("alpha", alpha.to_json()),
                ("beta", beta.to_json()),
            ]),
            UncertainInput::Interval { lo, hi } => obj([
                ("dist", Json::Str("interval".into())),
                ("lo", lo.to_json()),
                ("hi", hi.to_json()),
            ]),
        }
    }
}

impl FromJson for UncertainInput {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let tag: String = field(v, "dist")?;
        let input = match tag.as_str() {
            "normal" => {
                UncertainInput::Normal { mu: field(v, "mu")?, sigma: field(v, "sigma")? }
            }
            "uniform" => UncertainInput::Uniform { a: field(v, "a")?, b: field(v, "b")? },
            "exponential" => UncertainInput::Exponential { rate: field(v, "rate")? },
            "beta" => {
                UncertainInput::Beta { alpha: field(v, "alpha")?, beta: field(v, "beta")? }
            }
            "interval" => UncertainInput::Interval { lo: field(v, "lo")?, hi: field(v, "hi")? },
            other => {
                return Err(JsonError::decode(format!(
                    "unknown input dist '{other}' (expected normal | uniform | \
                     exponential | beta | interval)"
                )))
            }
        };
        for (name, x) in input_params(&input) {
            if !x.is_finite() {
                return Err(JsonError::decode(format!(
                    "input parameter '{name}' must be finite"
                )));
            }
        }
        Ok(input)
    }
}

/// The numeric parameters of an input declaration, for validation.
fn input_params(input: &UncertainInput) -> Vec<(&'static str, f64)> {
    match *input {
        UncertainInput::Normal { mu, sigma } => vec![("mu", mu), ("sigma", sigma)],
        UncertainInput::Uniform { a, b } => vec![("a", a), ("b", b)],
        UncertainInput::Exponential { rate } => vec![("rate", rate)],
        UncertainInput::Beta { alpha, beta } => vec![("alpha", alpha), ("beta", beta)],
        UncertainInput::Interval { lo, hi } => vec![("lo", lo), ("hi", hi)],
    }
}

/// The JSON form of an [`Interval`]: `{"lo": …, "hi": …}`.
pub fn interval_to_json(iv: &Interval) -> Json {
    obj([("lo", iv.lo().to_json()), ("hi", iv.hi().to_json())])
}

/// Decodes `{"lo": …, "hi": …}` back into a validated [`Interval`].
///
/// # Errors
///
/// Returns [`JsonError::Decode`] for missing members or an invalid
/// (`lo > hi`, NaN) interval.
pub fn interval_from_json(v: &Json) -> std::result::Result<Interval, JsonError> {
    let lo: f64 = field(v, "lo")?;
    let hi: f64 = field(v, "hi")?;
    Interval::new(lo, hi).map_err(|e| JsonError::decode(e.to_string()))
}

impl ToJson for PropagationReport {
    fn to_json(&self) -> Json {
        let quantiles: Vec<Json> = self
            .quantiles
            .iter()
            .map(|(p, iv)| obj([("level", p.to_json()), ("bounds", interval_to_json(iv))]))
            .collect();
        obj([
            ("engine", self.engine.to_json()),
            ("means", self.means.to_json()),
            ("kind", self.kind.to_json()),
            ("mean", interval_to_json(&self.mean)),
            ("variance", interval_to_json(&self.variance)),
            ("quantiles", Json::Arr(quantiles)),
            (
                "exceedance",
                match &self.exceedance {
                    Some(iv) => interval_to_json(iv),
                    None => Json::Null,
                },
            ),
            ("evaluations", self.evaluations.to_json()),
        ])
    }
}

impl FromJson for PropagationReport {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let engine: String = field(v, "engine")?;
        let engine = intern_engine_name(&engine).ok_or_else(|| {
            JsonError::decode(format!("unknown engine '{engine}' in report"))
        })?;
        let quantiles = v
            .get("quantiles")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::missing("quantiles"))?
            .iter()
            .map(|q| {
                let level: f64 = field(q, "level")?;
                let bounds = q.get("bounds").ok_or_else(|| JsonError::missing("bounds"))?;
                Ok((level, interval_from_json(bounds)?))
            })
            .collect::<std::result::Result<Vec<_>, JsonError>>()?;
        let exceedance = match v.get("exceedance") {
            Some(j) if !j.is_null() => Some(interval_from_json(j)?),
            _ => None,
        };
        Ok(PropagationReport {
            engine,
            means: field(v, "means")?,
            kind: field(v, "kind")?,
            mean: interval_from_json(
                v.get("mean").ok_or_else(|| JsonError::missing("mean"))?,
            )?,
            variance: interval_from_json(
                v.get("variance").ok_or_else(|| JsonError::missing("variance"))?,
            )?,
            quantiles,
            exceedance,
            evaluations: field(v, "evaluations")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::json;

    fn sample_wire_request() -> WireRequest {
        let mut req = WireRequest::new(
            "monte-carlo",
            "linear-2x3y",
            vec![
                UncertainInput::Normal { mu: 1.0, sigma: 2.0 },
                UncertainInput::Uniform { a: 0.0, b: 1.0 },
            ],
        );
        req.budget = 2000;
        req.seed = 7;
        req.threshold = Some(3.5);
        req
    }

    #[test]
    fn wire_request_round_trips() {
        let req = sample_wire_request();
        let text = json::to_string(&req);
        let back: WireRequest = json::from_str(&text).expect("decodes");
        assert_eq!(req, back);
    }

    #[test]
    fn wire_request_defaults_apply_when_members_are_absent() {
        let text = r#"{"engine":"evidential","model":"sum",
                       "inputs":[{"dist":"interval","lo":0.0,"hi":1.0}]}"#;
        let req: WireRequest = json::from_str(text).expect("decodes");
        assert_eq!(req.budget, 4096);
        assert_eq!(req.seed, 2020);
        assert_eq!(req.quantile_levels, vec![0.05, 0.5, 0.95]);
        assert_eq!(req.threshold, None);
    }

    #[test]
    fn every_input_variant_round_trips() {
        let inputs = vec![
            UncertainInput::Normal { mu: -1.5, sigma: 0.25 },
            UncertainInput::Uniform { a: 0.0, b: 2.0 },
            UncertainInput::Exponential { rate: 3.0 },
            UncertainInput::Beta { alpha: 2.0, beta: 5.0 },
            UncertainInput::Interval { lo: -0.5, hi: 0.5 },
        ];
        let text = json::to_string(&inputs);
        let back: Vec<UncertainInput> = json::from_str(&text).expect("decodes");
        assert_eq!(inputs, back);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(json::from_str::<UncertainInput>(r#"{"dist":"cauchy","x0":0.0}"#).is_err());
        assert!(json::from_str::<UncertainInput>(r#"{"mu":0.0,"sigma":1.0}"#).is_err());
        // Non-finite parameters cannot appear in valid JSON (no NaN
        // literal), but `null`-degraded floats decode as missing.
        assert!(
            json::from_str::<UncertainInput>(r#"{"dist":"normal","mu":null,"sigma":1.0}"#)
                .is_err()
        );
    }

    #[test]
    fn engine_catalog_resolves_every_name_and_rejects_others() {
        for name in ENGINE_NAMES {
            let engine = engine_by_name(name).expect("catalog name");
            assert_eq!(engine.name(), *name);
        }
        assert!(engine_by_name("simulated-annealing").is_none());
        let mut req = sample_wire_request();
        assert_eq!(req.resolve_engine().expect("known").name(), "monte-carlo");
        req.engine = "nope".into();
        assert!(matches!(req.resolve_engine(), Err(Error::Unsupported(_))));
    }

    #[test]
    fn standard_registry_serves_the_documented_catalog() {
        let reg = ModelRegistry::standard().expect("builds");
        for name in
            ["sum", "linear-2x3y", "product", "orbital-period", "orbital-energy", "missed-hazard"]
        {
            assert!(reg.get(name).is_some(), "missing model '{name}'");
        }
        assert_eq!(reg.len(), 6);
        let linear = reg.get("linear-2x3y").expect("registered");
        assert_eq!(linear.eval(&[1.0, 1.0]), 5.0);
        assert!(reg.get("unknown").is_none());
    }

    #[test]
    fn registry_rejects_duplicates_and_empty_names() {
        let mut reg = ModelRegistry::new();
        assert!(reg.is_empty());
        reg.register("m", Box::new(|x: &[f64]| x[0])).expect("first");
        assert!(reg.register("m", Box::new(|x: &[f64]| x[0])).is_err());
        assert!(reg.register("", Box::new(|x: &[f64]| x[0])).is_err());
        assert_eq!(reg.names(), vec!["m"]);
    }

    #[test]
    fn wire_request_binds_to_the_in_process_request() {
        let wire = sample_wire_request();
        let reg = ModelRegistry::standard().expect("builds");
        let model = reg.get(&wire.model).expect("registered");
        let req = wire.to_request(model).expect("valid");
        assert_eq!(req.budget, 2000);
        assert_eq!(req.seed, 7);
        assert_eq!(req.threshold, Some(3.5));
        let engine = wire.resolve_engine().expect("known");
        let report = engine.propagate(&req).expect("runs");
        assert!((report.mean_estimate() - 3.5).abs() < 0.5);
    }

    #[test]
    fn report_round_trips_bit_identically_for_every_engine() {
        let reg = ModelRegistry::standard().expect("builds");
        let model = reg.get("linear-2x3y").expect("registered");
        for engine_name in ENGINE_NAMES {
            let mut wire = sample_wire_request();
            wire.engine = (*engine_name).into();
            wire.budget = 600;
            let req = wire.to_request(model).expect("valid");
            let engine = wire.resolve_engine().expect("known");
            let report = engine.propagate(&req).expect("runs");
            let text = json::to_string(&report);
            let back: PropagationReport = json::from_str(&text).expect("decodes");
            assert_eq!(report, back, "{engine_name} report must round-trip exactly");
        }
    }

    #[test]
    fn report_decode_rejects_foreign_engines_and_bad_intervals() {
        let reg = ModelRegistry::standard().expect("builds");
        let model = reg.get("sum").expect("registered");
        let wire = WireRequest::new(
            "monte-carlo",
            "sum",
            vec![UncertainInput::Uniform { a: 0.0, b: 1.0 }],
        );
        let req = wire.to_request(model).expect("valid");
        let report = wire.resolve_engine().expect("known").propagate(&req).expect("runs");
        let mut doc = json::parse(&json::to_string(&report)).expect("parses");
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "engine" {
                    *v = Json::Str("other".into());
                }
            }
        }
        assert!(json::from_str::<PropagationReport>(&doc.emit()).is_err());
        assert!(interval_from_json(&json::parse(r#"{"lo":2.0,"hi":1.0}"#).expect("parses"))
            .is_err());
    }
}
