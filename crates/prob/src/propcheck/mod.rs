//! In-tree property-based testing with strategy combinators and
//! automatic minimal-counterexample shrinking — the workspace's
//! replacement for the external `proptest` crate, applied to itself:
//! the paper's thesis is that epistemic uncertainty is *engineered
//! away* by systematic observation, and a failing property that
//! reports an unshrunk 6-tuple of random floats leaves most of its
//! information content unobserved. This harness reduces every failure
//! to a locally minimal counterexample, reports the exact seed that
//! reproduces it, and persists that seed so the bug stays fatal until
//! fixed.
//!
//! ```
//! use sysunc_prob::propcheck::{self, f64_range, Strategy as _};
//! propcheck::check(
//!     "abs_bounded",
//!     32,
//!     (f64_range(-10.0, 10.0), f64_range(0.0, 1.0)),
//!     |&(x, t)| assert!((x * t).abs() <= 10.0),
//! );
//! ```
//!
//! # Runner semantics
//!
//! [`check`] runs a [`Strategy`] over `cases` generated cases. Each
//! case has its own 64-bit seed, derived from the run seed and the
//! case index; the generated value is a pure function of that seed.
//! On failure the runner:
//!
//! 1. **shrinks**: walks the failing [`ValueTree`] with
//!    simplify/complicate probes (bounded by
//!    [`Config::max_shrink_iters`]) to a *locally minimal*
//!    counterexample — no single remaining simplification step still
//!    fails;
//! 2. **reports**: panics with the minimal value (`Debug`), the
//!    original assertion message, and the case seed as a
//!    `PROPCHECK_SEED=0x...` replay recipe;
//! 3. **persists**: appends `name seed` to the regression corpus
//!    (`propcheck.regressions` at the workspace root), which every
//!    later run replays *before* its random cases.
//!
//! Setting the `PROPCHECK_SEED` environment variable replays exactly
//! that one case seed (same generation, same shrink) instead of the
//! random schedule — deterministic replay of any reported failure.
//!
//! Rejection: [`assume`] discards the current case without failing
//! it, and [`Strategy::prop_filter`] narrows a strategy's domain;
//! both count against [`Config::max_rejects`].

pub mod corpus;
mod strategy;

pub use strategy::{
    any_bool, f64_range, gen_with, just, one_of, prob_vec, recursive, u64_range, usize_range,
    vec_of, AnyBool, BoolTree, BoxTree, BoxedStrategy, F64Range, F64Tree, Filter, FilterTree,
    Gen, GenWith, Just, JustTree, Map, MapTree, OneOf, Strategy, U64Range, U64Tree, ValueTree,
    VecOf, VecTree,
};

pub use corpus::{default_path as corpus_path, parse_seed};

use crate::rng::{SeedableRng as _, StdRng};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// Default base seed of the random case schedule; `case i` of a run
/// derives its seed from this and `i` unless replaying.
const BASE_SEED: u64 = 0x5EED_0000;

/// Configuration of one property run. Construct with [`Config::new`],
/// refine with the builder methods, execute with [`check_config`].
#[derive(Debug, Clone)]
pub struct Config {
    /// The property's stable name: the corpus key and the label in
    /// failure reports. Conventionally the `#[test]` function name.
    pub name: &'static str,
    /// Number of random cases to run.
    pub cases: u64,
    /// Upper bound on simplify/complicate probes during shrinking.
    pub max_shrink_iters: u64,
    /// Upper bound on rejected cases ([`assume`] / `prop_filter`).
    pub max_rejects: u64,
    /// Replay exactly this case seed instead of the random schedule.
    /// `None` defers to the `PROPCHECK_SEED` environment variable.
    pub seed: Option<u64>,
    /// Whether failures are appended to the regression corpus.
    pub persist: bool,
    /// Corpus file override; `None` resolves per [`corpus_path`].
    pub corpus: Option<PathBuf>,
    /// Whether recorded corpus seeds replay before random cases.
    pub replay_corpus: bool,
}

impl Config {
    /// A default configuration: 64 cases, 4096 shrink iterations,
    /// 4096 rejects, corpus replay and persistence on.
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            cases: 64,
            max_shrink_iters: 4096,
            max_rejects: 4096,
            seed: None,
            persist: true,
            corpus: None,
            replay_corpus: true,
        }
    }

    /// Sets the number of random cases.
    pub fn cases(mut self, cases: u64) -> Self {
        self.cases = cases;
        self
    }

    /// Replays exactly one case from `seed` (as reported by a prior
    /// failure) instead of the random schedule.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Disables corpus persistence and replay — for knockout tests
    /// that fail on purpose.
    pub fn ephemeral(mut self) -> Self {
        self.persist = false;
        self.replay_corpus = false;
        self
    }
}

/// The case seed replay request from the environment, if any.
/// `PROPCHECK_SEED` accepts `0x`-hex or decimal.
pub fn seed_from_env() -> Option<u64> {
    std::env::var("PROPCHECK_SEED").ok().as_deref().and_then(parse_seed)
}

/// A property failure: the minimal counterexample and its replay
/// recipe. Rendered into the panic message by [`check`]; inspected
/// directly in tests of the shrinker itself via [`check_config`].
#[derive(Debug, Clone)]
pub struct Failure<T> {
    /// The property name from [`Config::name`].
    pub name: &'static str,
    /// The locally minimal failing value.
    pub minimal: T,
    /// The case seed that reproduces the failure deterministically.
    pub seed: u64,
    /// Which case failed (index into the replay + random schedule).
    pub case: u64,
    /// Simplify/complicate probes spent shrinking.
    pub shrink_iters: u64,
    /// The assertion message of the minimal counterexample.
    pub message: String,
    /// Whether the seed was newly recorded in the corpus.
    pub persisted: bool,
}

impl<T: fmt::Debug> fmt::Display for Failure<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "property '{}' failed (case {}):", self.name, self.case)?;
        writeln!(f, "  minimal counterexample: {:?}", self.minimal)?;
        writeln!(f, "  assertion: {}", self.message)?;
        writeln!(f, "  shrink iterations: {}", self.shrink_iters)?;
        write!(f, "  replay: PROPCHECK_SEED={:#x} cargo test {}", self.seed, self.name)?;
        if self.persisted {
            write!(f, "\n  seed recorded in propcheck.regressions")?;
        }
        Ok(())
    }
}

/// Aggregate statistics of a passing run, from [`check_config`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSummary {
    /// Total cases evaluated (corpus replays + random).
    pub cases_run: u64,
    /// Cases discarded by [`assume`] / `prop_filter`.
    pub rejects: u64,
    /// Corpus seeds replayed before the random schedule.
    pub corpus_replayed: u64,
}

/// Discards the current case unless `condition` holds; the
/// `prop_assume` of this harness. Rejections are accounted against
/// [`Config::max_rejects`], not treated as failures.
pub fn assume(condition: bool) {
    if !condition {
        std::panic::panic_any(Rejection);
    }
}

/// Marker payload distinguishing a rejected case from a failed one.
struct Rejection;

/// The outcome of evaluating the property once.
enum Outcome {
    Pass,
    Reject,
    Fail(String),
}

fn eval<T, F: Fn(&T)>(prop: &F, value: &T) -> Outcome {
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(()) => Outcome::Pass,
        Err(payload) => {
            if payload.is::<Rejection>() {
                return Outcome::Reject;
            }
            let detail = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            Outcome::Fail(detail.to_string())
        }
    }
}

/// Derives the seed of case `index` from the run's base seed. The
/// result is what failure reports print and `PROPCHECK_SEED` replays.
fn case_seed(base: u64, index: u64) -> u64 {
    let mut s = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    crate::rng::splitmix64(&mut s)
}

/// Runs `property` over `cases` generated cases with default
/// configuration, panicking with the shrunk counterexample, its
/// assertion message and a seed replay recipe on the first failure.
///
/// `name` is the property's stable identity (by convention the test
/// function name): the key under which failing seeds are persisted to
/// and replayed from `propcheck.regressions`.
///
/// # Panics
///
/// Panics when the property fails, rendering the [`Failure`]; also
/// panics when more than [`Config::max_rejects`] cases are rejected.
pub fn check<S, F>(name: &'static str, cases: u64, strategy: S, property: F)
where
    S: Strategy,
    S::Value: Clone + fmt::Debug,
    F: Fn(&S::Value),
{
    if let Err(failure) = check_config(&Config::new(name).cases(cases), strategy, property) {
        panic!("{failure}"); // tidy: allow(panic)
    }
}

/// Runs a property under an explicit [`Config`], returning the
/// failure (with minimal counterexample) instead of panicking — the
/// entry point for replay tooling and for tests of the shrinker
/// itself.
///
/// # Panics
///
/// Panics when more than [`Config::max_rejects`] cases are rejected —
/// a generator problem, not a property failure.
pub fn check_config<S, F>(
    config: &Config,
    strategy: S,
    property: F,
) -> Result<RunSummary, Failure<S::Value>>
where
    S: Strategy,
    S::Value: Clone + fmt::Debug,
    F: Fn(&S::Value),
{
    let corpus_file = if config.persist || config.replay_corpus {
        config.corpus.clone().or_else(corpus::default_path)
    } else {
        None
    };

    // The case schedule: an explicit or environment replay seed runs
    // exactly once; otherwise recorded corpus seeds replay first,
    // then the random schedule.
    let replay_seed = config.seed.or_else(seed_from_env);
    let mut schedule: Vec<u64> = Vec::new();
    let mut corpus_replayed = 0u64;
    match replay_seed {
        Some(seed) => schedule.push(seed),
        None => {
            if config.replay_corpus {
                if let Some(path) = &corpus_file {
                    let recorded = corpus::seeds_for(path, config.name);
                    corpus_replayed = recorded.len() as u64;
                    schedule.extend(recorded);
                }
            }
            schedule.extend((0..config.cases).map(|i| case_seed(BASE_SEED, i)));
        }
    }

    let mut rejects = 0u64;
    let mut cases_run = 0u64;
    for (case, &seed) in schedule.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = strategy.new_tree(&mut rng);
        cases_run += 1;
        if !tree.valid() {
            rejects += 1;
            assert!(
                rejects <= config.max_rejects,
                "property '{}': {} cases rejected by filters/assume — \
                 the generator's domain is too narrow",
                config.name,
                rejects
            );
            continue;
        }
        let message = match eval(&property, &tree.current()) {
            Outcome::Pass => continue,
            Outcome::Reject => {
                rejects += 1;
                assert!(
                    rejects <= config.max_rejects,
                    "property '{}': {} cases rejected by filters/assume — \
                     the generator's domain is too narrow",
                    config.name,
                    rejects
                );
                continue;
            }
            Outcome::Fail(message) => message,
        };

        // Shrink: simplify while the property keeps failing, back off
        // (complicate) when a probe passes, within the iteration
        // budget. `best` is always the smallest value seen to fail.
        let mut best = tree.current();
        let mut best_message = message;
        let mut iters = 0u64;
        'shrink: while iters < config.max_shrink_iters {
            if !tree.simplify() {
                break;
            }
            iters += 1;
            loop {
                let mut out_of_domain = !tree.valid();
                if !out_of_domain {
                    match eval(&property, &tree.current()) {
                        Outcome::Fail(msg) => {
                            best = tree.current();
                            best_message = msg;
                            continue 'shrink;
                        }
                        Outcome::Reject => out_of_domain = true,
                        Outcome::Pass => {}
                    }
                }
                iters += 1;
                let more = if out_of_domain { tree.reject() } else { tree.complicate() };
                if iters >= config.max_shrink_iters || !more {
                    continue 'shrink;
                }
            }
        }

        let persisted = if config.persist {
            match &corpus_file {
                Some(path) => corpus::append(path, config.name, seed).unwrap_or(false),
                None => false,
            }
        } else {
            false
        };
        return Err(Failure {
            name: config.name,
            minimal: best,
            seed,
            case: case as u64,
            shrink_iters: iters,
            message: best_message,
            persisted,
        });
    }
    Ok(RunSummary { cases_run, rejects, corpus_replayed })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An ephemeral config pointed at a throwaway corpus path so
    /// knockout failures never touch the real regression file.
    fn quiet(name: &'static str) -> Config {
        Config::new(name).ephemeral()
    }

    #[test]
    fn passes_trivially_true_properties() {
        check("passes_trivially_true_properties", 16, f64_range(0.0, 1.0), |&x| {
            assert!((0.0..1.0).contains(&x));
        });
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let collect = || {
            let seen = std::cell::RefCell::new(Vec::new());
            let result = check_config(
                &quiet("cases_are_deterministic_across_runs").cases(8),
                (f64_range(0.0, 1.0), u64_range(0..100)),
                |v| seen.borrow_mut().push(format!("{v:?}")),
            );
            assert!(result.is_ok());
            seen.into_inner()
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn failure_reports_seed_and_shrinks_to_minimal() {
        // Knockout: fails for x >= 123. The minimal counterexample is
        // exactly 123 and the reported seed replays it.
        let failure = check_config(
            &quiet("failure_reports_seed_and_shrinks_to_minimal"),
            u64_range(0..100_000),
            |&x| assert!(x < 123, "x was {x}"),
        )
        .expect_err("property must fail");
        assert_eq!(failure.minimal, 123, "shrunk to the exact boundary");
        assert!(failure.message.contains("x was 123"), "got: {}", failure.message);

        // Local minimality: no single further simplification fails —
        // every value below the boundary passes the property.
        for below in 0..123 {
            assert!(below < 123, "witness {below} passes");
        }

        // Deterministic replay from the reported seed.
        let replay = check_config(
            &quiet("failure_reports_seed_and_shrinks_to_minimal").with_seed(failure.seed),
            u64_range(0..100_000),
            |&x| assert!(x < 123, "x was {x}"),
        )
        .expect_err("replay must fail too");
        assert_eq!(replay.minimal, failure.minimal);
        assert_eq!(replay.seed, failure.seed);
        assert_eq!(replay.case, 0, "replay runs exactly one case");
    }

    #[test]
    fn shrinking_is_locally_minimal_on_tuples() {
        // The classic: fails when a*b > threshold. Minimal means
        // neither component can shrink further without passing.
        let failure = check_config(
            &quiet("shrinking_is_locally_minimal_on_tuples"),
            (u64_range(0..10_000), u64_range(0..10_000)),
            |&(a, b)| assert!(a + b <= 100, "sum {}", a + b),
        )
        .expect_err("property must fail");
        let (a, b) = failure.minimal;
        assert!(a + b > 100, "minimal counterexample still fails");
        // One single simplification step on either component passes.
        assert!(a == 0 || (a - 1) + b <= 100, "a is locally minimal: ({a}, {b})");
        assert!(b == 0 || a + (b - 1) <= 100, "b is locally minimal: ({a}, {b})");
    }

    #[test]
    fn rendered_failure_contains_replay_recipe() {
        let failure = check_config(
            &quiet("rendered_failure_contains_replay_recipe"),
            u64_range(0..100),
            |&x| assert!(x < 1, "x was {x}"),
        )
        .expect_err("property must fail");
        let rendered = failure.to_string();
        assert!(rendered.contains("PROPCHECK_SEED=0x"), "got: {rendered}");
        assert!(rendered.contains("minimal counterexample: 1"), "got: {rendered}");
        assert!(
            rendered.contains("rendered_failure_contains_replay_recipe"),
            "got: {rendered}"
        );
    }

    #[test]
    fn assume_rejects_without_failing() {
        let summary = check_config(
            &quiet("assume_rejects_without_failing"),
            u64_range(0..100),
            |&x| {
                assume(x % 2 == 0);
                assert!(x % 2 == 0, "assume filtered the odd cases");
            },
        )
        .expect("rejection is not failure");
        assert!(summary.rejects > 0, "some cases were odd");
        assert_eq!(summary.cases_run, 64);
    }

    #[test]
    fn too_many_rejects_panics_with_diagnosis() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut cfg = quiet("too_many_rejects_panics_with_diagnosis");
            cfg.max_rejects = 4;
            let _ = check_config(&cfg, u64_range(0..100), |_| assume(false));
        }));
        let payload = result.expect_err("must panic");
        let message = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(message.contains("rejected"), "got: {message}");
    }

    #[test]
    fn corpus_seeds_replay_before_random_cases() {
        let path = {
            let mut p = std::env::temp_dir();
            p.push(format!("propcheck-runner-corpus-{}", std::process::id()));
            p
        };
        let _ = std::fs::remove_file(&path);

        // First run fails and persists its seed.
        let mut cfg = Config::new("corpus_seeds_replay_before_random_cases");
        cfg.corpus = Some(path.clone());
        let failure = check_config(&cfg, u64_range(0..1000), |&x| assert!(x < 5))
            .expect_err("property must fail");
        assert!(failure.persisted, "seed recorded");

        // Second run replays the recorded seed as case 0.
        let replay = check_config(&cfg, u64_range(0..1000), |&x| assert!(x < 5))
            .expect_err("still failing");
        assert_eq!(replay.case, 0, "corpus seed ran first");
        assert_eq!(replay.seed, failure.seed);

        // Once fixed, the summary accounts the corpus replay.
        let summary = check_config(&cfg, u64_range(0..1000), |_| {})
            .expect("fixed property passes");
        assert_eq!(summary.corpus_replayed, 1);
        assert_eq!(summary.cases_run, 64 + 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn filtered_strategy_shrinks_within_domain() {
        let failure = check_config(
            &quiet("filtered_strategy_shrinks_within_domain"),
            u64_range(0..10_000).prop_filter("multiple of 3", |v| v % 3 == 0),
            |&x| assert!(x < 100, "x was {x}"),
        )
        .expect_err("property must fail");
        assert_eq!(failure.minimal % 3, 0, "minimal stays in the filtered domain");
        assert_eq!(failure.minimal, 102, "smallest multiple of 3 that is >= 100");
    }

    #[test]
    fn env_seed_parse_roundtrip() {
        assert_eq!(parse_seed("0x5eed0011"), Some(0x5EED_0011));
        assert_eq!(parse_seed("12345"), Some(12_345));
    }

    #[test]
    fn case_seeds_are_distinct() {
        let mut seeds: Vec<u64> = (0..1000).map(|i| case_seed(BASE_SEED, i)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000, "schedule never repeats a case seed");
    }

    #[test]
    fn prob_vec_and_gen_helpers_hold_their_ranges() {
        check(
            "prob_vec_and_gen_helpers_hold_their_ranges",
            32,
            (prob_vec(5), usize_range(4..64), u64_range(0..1000)),
            |(p, n, u)| {
                assert_eq!(p.len(), 5);
                assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
                assert!(p.iter().all(|&x| x > 0.0));
                assert!((4..64).contains(n));
                assert!(*u < 1000);
            },
        );
    }
}
