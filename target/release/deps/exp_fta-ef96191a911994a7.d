/root/repo/target/release/deps/exp_fta-ef96191a911994a7.d: crates/bench/src/bin/exp_fta.rs

/root/repo/target/release/deps/exp_fta-ef96191a911994a7: crates/bench/src/bin/exp_fta.rs

crates/bench/src/bin/exp_fta.rs:
