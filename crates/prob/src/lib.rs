//! # sysunc-prob — probability substrate
//!
//! The foundational crate of the `sysunc` workspace, which reproduces
//! *"System Theoretic View on Uncertainties"* (Gansch & Adee, DATE 2020).
//! Rust has no established uncertainty-quantification ecosystem, so every
//! layer is built here from scratch:
//!
//! - [`special`] — special functions (log-gamma, incomplete gamma/beta,
//!   error function, probit) implemented via Lanczos, power series and
//!   continued fractions.
//! - [`dist`] — parametric distributions ([`dist::Continuous`] /
//!   [`dist::Discrete`] traits with 13 implementations) that represent
//!   **aleatory** uncertainty (paper Sec. III-A).
//! - [`empirical`] — ECDFs, histograms and KDEs: the *frequentist* model of
//!   the paper's Fig. 2 (model B); their distance to truth is the
//!   **epistemic** uncertainty of a probabilistic model (Sec. III-B).
//! - [`stats`] — descriptive statistics and Welford accumulators.
//! - [`htest`] — KS and chi-square model-validation tests (uncertainty
//!   *removal* at design time, Sec. IV).
//! - [`info`] — entropies, divergences and the paper's conditional-entropy
//!   **surprise factor** that flags **ontological** events (Sec. III-C).
//! - [`rng`] — the workspace's own deterministic pseudo-random generator
//!   (xoshiro256++ behind `rand`-shaped traits); [`json`] — a hand-rolled
//!   JSON tree/parser/emitter; [`propcheck`] — a tiny property-testing
//!   harness. Together they make the workspace build with **zero external
//!   dependencies** — self-containedness as an uncertainty-prevention
//!   means (no epistemic uncertainty about dependency resolution).
//!
//! ## Quickstart
//!
//! ```
//! use sysunc_prob::dist::{Continuous, Normal};
//! use sysunc_prob::info::JointTable;
//!
//! // An aleatory model of a sensor noise process:
//! let noise = Normal::new(0.0, 0.1)?;
//! assert!(noise.cdf(0.0) == 0.5);
//!
//! // The paper's Table I as a joint distribution:
//! let prior = [0.6, 0.3, 0.1];
//! let mut cpt = vec![
//!     vec![0.9, 0.005, 0.05, 0.045],
//!     vec![0.005, 0.9, 0.05, 0.045],
//!     vec![0.0, 0.0, 0.2, 0.7],
//! ];
//! // (the unknown row of Table I sums to 0.9; renormalize it to use
//! //  the joint-table helper, which requires proper distributions)
//! let s: f64 = cpt[2].iter().sum();
//! for v in &mut cpt[2] { *v /= s; }
//! let joint = JointTable::from_prior_and_conditional(&prior, &cpt)?;
//! let posterior = joint.posterior_x_given_y(3).expect("P(none) > 0");
//! assert!(posterior[2] > 0.5); // "none" output is dominated by unknown objects
//! # Ok::<(), sysunc_prob::ProbError>(())
//! ```

pub mod dist;
pub mod empirical;
mod error;
pub mod fit;
pub mod htest;
pub mod info;
pub mod json;
pub mod propcheck;
pub mod rng;
pub mod special;
pub mod stats;

pub use error::{ProbError, Result};
