/root/repo/target/debug/deps/table1_reproduction-5efcdbc17c640022.d: tests/table1_reproduction.rs

/root/repo/target/debug/deps/table1_reproduction-5efcdbc17c640022: tests/table1_reproduction.rs

tests/table1_reproduction.rs:
