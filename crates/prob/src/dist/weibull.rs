//! Weibull distribution.

use super::{uniform_open01, Continuous, Support};
use crate::error::{ProbError, Result};
use crate::special::ln_gamma;
use crate::rng::RngCore;

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// The standard wear-out / infant-mortality lifetime model in reliability
/// engineering; shape < 1 gives decreasing hazard, shape > 1 increasing.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, Weibull};
/// let w = Weibull::new(2.0, 1.0)?; // Rayleigh
/// assert!((w.cdf(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution with shape `k > 0` and scale
    /// `lambda > 0`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if either parameter is not
    /// strictly positive and finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        if !shape.is_finite() || !scale.is_finite() || shape <= 0.0 || scale <= 0.0 {
            return Err(ProbError::InvalidParameter(format!(
                "Weibull requires shape > 0 and scale > 0, got ({shape}, {scale})"
            )));
        }
        Ok(Self { shape, scale })
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `lambda`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Hazard (failure-rate) function `h(x) = pdf / (1 - cdf)`.
    pub fn hazard(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            let z = x / self.scale;
            self.shape / self.scale * z.powf(self.shape - 1.0)
        }
    }
}

impl Continuous for Weibull {
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            let z = x / self.scale;
            let zk = z.powf(self.shape);
            self.shape / self.scale * z.powf(self.shape - 1.0) * (-zk).exp()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "Weibull::quantile: p in [0,1], got {p}");
        self.scale * (-(-p).ln_1p()).powf(1.0 / self.shape)
    }

    fn mean(&self) -> f64 {
        self.scale * ln_gamma(1.0 + 1.0 / self.shape).exp()
    }

    fn variance(&self) -> f64 {
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }

    fn support(&self) -> Support {
        Support::non_negative()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * (-uniform_open01(rng).ln()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Weibull::new(0.0, 1.0).is_err());
        assert!(Weibull::new(1.0, 0.0).is_err());
    }

    #[test]
    fn shape_one_is_exponential() {
        use crate::dist::Exponential;
        let w = Weibull::new(1.0, 2.0).unwrap();
        let e = Exponential::new(0.5).unwrap();
        for &x in &[0.1, 1.0, 4.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn hazard_monotonicity() {
        let wearing = Weibull::new(3.0, 1.0).unwrap();
        assert!(wearing.hazard(2.0) > wearing.hazard(1.0));
        let infant = Weibull::new(0.5, 1.0).unwrap();
        assert!(infant.hazard(2.0) < infant.hazard(1.0));
    }

    #[test]
    fn quantile_round_trip() {
        let w = Weibull::new(1.8, 3.0).unwrap();
        testutil::check_quantile_cdf_round_trip(&w, &[0.5, 1.0, 2.0, 5.0], 1e-12);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let w = Weibull::new(2.0, 1.5).unwrap();
        testutil::check_pdf_integrates_to_cdf(&w, 0.0, 4.0, 1e-9);
    }

    #[test]
    fn sampling_moments() {
        let w = Weibull::new(2.5, 2.0).unwrap();
        testutil::check_sample_moments(&w, 51, 200_000, 5.0);
    }
}
