/root/repo/target/release/deps/sysunc_fta-ecaf34185aed852e.d: crates/fta/src/lib.rs crates/fta/src/common_cause.rs crates/fta/src/convert.rs crates/fta/src/epistemic_importance.rs crates/fta/src/cutset.rs crates/fta/src/dynamic.rs crates/fta/src/error.rs crates/fta/src/tree.rs crates/fta/src/uncertain.rs

/root/repo/target/release/deps/libsysunc_fta-ecaf34185aed852e.rlib: crates/fta/src/lib.rs crates/fta/src/common_cause.rs crates/fta/src/convert.rs crates/fta/src/epistemic_importance.rs crates/fta/src/cutset.rs crates/fta/src/dynamic.rs crates/fta/src/error.rs crates/fta/src/tree.rs crates/fta/src/uncertain.rs

/root/repo/target/release/deps/libsysunc_fta-ecaf34185aed852e.rmeta: crates/fta/src/lib.rs crates/fta/src/common_cause.rs crates/fta/src/convert.rs crates/fta/src/epistemic_importance.rs crates/fta/src/cutset.rs crates/fta/src/dynamic.rs crates/fta/src/error.rs crates/fta/src/tree.rs crates/fta/src/uncertain.rs

crates/fta/src/lib.rs:
crates/fta/src/common_cause.rs:
crates/fta/src/convert.rs:
crates/fta/src/epistemic_importance.rs:
crates/fta/src/cutset.rs:
crates/fta/src/dynamic.rs:
crates/fta/src/error.rs:
crates/fta/src/tree.rs:
crates/fta/src/uncertain.rs:
