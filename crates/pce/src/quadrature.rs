//! Multivariate quadrature: full tensor grids and Smolyak sparse grids.

use crate::error::{PceError, Result};
use std::collections::HashMap;
use sysunc_algebra::PolyFamily;

/// A multivariate quadrature grid in germ space: nodes (one coordinate per
/// input dimension) and weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Quadrature nodes.
    pub nodes: Vec<Vec<f64>>,
    /// Weights aligned with `nodes` (sum to 1 for probability measures,
    /// within round-off; Smolyak weights may be negative).
    pub weights: Vec<f64>,
}

impl Grid {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the grid is empty (never true for constructed grids).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Applies the grid to a function of the germ vector.
    pub fn integrate<F: FnMut(&[f64]) -> f64>(&self, mut f: F) -> f64 {
        self.nodes.iter().zip(&self.weights).map(|(x, &w)| w * f(x)).sum()
    }
}

/// Full tensor-product Gauss grid: `points_per_dim^d` nodes.
///
/// # Errors
///
/// Returns [`PceError::InvalidSpec`] for empty families or zero points, and
/// propagates quadrature-rule failures.
pub fn tensor_grid(families: &[PolyFamily], points_per_dim: usize) -> Result<Grid> {
    if families.is_empty() || points_per_dim == 0 {
        return Err(PceError::InvalidSpec(
            "tensor_grid needs at least one family and one point".into(),
        ));
    }
    let rules: Vec<_> = families
        .iter()
        .map(|f| f.gauss_rule(points_per_dim))
        .collect::<std::result::Result<_, _>>()?;
    let dim = families.len();
    let total: usize = rules.iter().map(|r| r.len()).product();
    let mut nodes = Vec::with_capacity(total);
    let mut weights = Vec::with_capacity(total);
    let mut idx = vec![0usize; dim];
    loop {
        let mut node = Vec::with_capacity(dim);
        let mut w = 1.0;
        for (d, &i) in idx.iter().enumerate() {
            node.push(rules[d].nodes[i]);
            w *= rules[d].weights[i];
        }
        nodes.push(node);
        weights.push(w);
        // Odometer increment.
        let mut d = 0;
        loop {
            if d == dim {
                return Ok(Grid { nodes, weights });
            }
            idx[d] += 1;
            if idx[d] < rules[d].len() {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

/// Smolyak sparse grid of the given `level` (level 1 = single-point rule),
/// using Gauss rules with `k` points at 1-D level `k` and the combination
/// technique. Nodes shared between component grids are merged.
///
/// Cost grows like `O(2^level · level^{d-1})` instead of the tensor
/// `O(level^d)`.
///
/// # Errors
///
/// Returns [`PceError::InvalidSpec`] for empty families or `level == 0`.
pub fn sparse_grid(families: &[PolyFamily], level: usize) -> Result<Grid> {
    if families.is_empty() || level == 0 {
        return Err(PceError::InvalidSpec(
            "sparse_grid needs at least one family and level >= 1".into(),
        ));
    }
    let d = families.len();
    let q = level + d - 1; // |k| ranges over q-d+1 ..= q with k_i >= 1
    let mut merged: HashMap<Vec<i64>, (Vec<f64>, f64)> = HashMap::new();
    let low = q.saturating_sub(d) + 1;
    for total in low..=q {
        // Combination coefficient (-1)^{q - total} C(d-1, q - total).
        let diff = q - total;
        if diff > d - 1 {
            continue;
        }
        let coeff = (if diff % 2 == 0 { 1.0 } else { -1.0 }) * binomial(d - 1, diff) as f64;
        // Enumerate k with k_i >= 1 and |k| = total.
        let mut k = vec![1usize; d];
        enumerate_compositions(total, d, &mut k, 0, &mut |k| {
            let rules: Vec<_> = families
                .iter()
                .zip(k)
                .map(|(f, &ki)| f.gauss_rule(ki).expect("ki >= 1")) // tidy: allow(panic)
                .collect();
            // Tensor over this component grid.
            let mut idx = vec![0usize; d];
            loop {
                let mut node = Vec::with_capacity(d);
                let mut w = coeff;
                for (dd, &i) in idx.iter().enumerate() {
                    node.push(rules[dd].nodes[i]);
                    w *= rules[dd].weights[i];
                }
                let key: Vec<i64> = node.iter().map(|&x| (x * 1e10).round() as i64).collect();
                merged
                    .entry(key)
                    .and_modify(|(_, wt)| *wt += w)
                    .or_insert((node, w));
                let mut dd = 0;
                loop {
                    if dd == d {
                        return;
                    }
                    idx[dd] += 1;
                    if idx[dd] < rules[dd].len() {
                        break;
                    }
                    idx[dd] = 0;
                    dd += 1;
                }
            }
        });
    }
    let mut nodes = Vec::with_capacity(merged.len());
    let mut weights = Vec::with_capacity(merged.len());
    for (_, (node, w)) in merged {
        if w.abs() > 1e-14 {
            nodes.push(node);
            weights.push(w);
        }
    }
    Ok(Grid { nodes, weights })
}

/// Enumerates all `k ∈ ℕ^d` with `k_i >= 1` and `Σ k_i = total`.
fn enumerate_compositions(
    total: usize,
    d: usize,
    buf: &mut Vec<usize>,
    pos: usize,
    f: &mut impl FnMut(&Vec<usize>),
) {
    if pos == d - 1 {
        let remaining = total - buf[..pos].iter().sum::<usize>();
        if remaining >= 1 {
            buf[pos] = remaining;
            f(buf);
        }
        return;
    }
    let used: usize = buf[..pos].iter().sum();
    let max = total - used - (d - pos - 1); // leave >= 1 for the rest
    for v in 1..=max {
        buf[pos] = v;
        enumerate_compositions(total, d, buf, pos + 1, f);
    }
}

fn binomial(n: usize, k: usize) -> usize {
    if k > n {
        return 0;
    }
    let mut r = 1usize;
    for i in 1..=k {
        r = r * (n - k + i) / i;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_grid_size_and_weight_sum() {
        let fams = [PolyFamily::Hermite, PolyFamily::Legendre];
        let g = tensor_grid(&fams, 4).unwrap();
        assert_eq!(g.len(), 16);
        assert!((g.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(tensor_grid(&[], 4).is_err());
        assert!(tensor_grid(&fams, 0).is_err());
    }

    #[test]
    fn tensor_grid_integrates_separable_polynomials() {
        let fams = [PolyFamily::Hermite, PolyFamily::Hermite];
        let g = tensor_grid(&fams, 5).unwrap();
        // E[x² y⁴] = 1 * 3 for independent standard normals.
        let v = g.integrate(|p| p[0] * p[0] * p[1].powi(4));
        assert!((v - 3.0).abs() < 1e-9, "{v}");
    }

    #[test]
    fn sparse_grid_weights_sum_to_one() {
        let fams = [PolyFamily::Legendre; 3];
        let g = sparse_grid(&fams, 4).unwrap();
        assert!((g.weights.iter().sum::<f64>() - 1.0).abs() < 1e-10);
        assert!(sparse_grid(&fams, 0).is_err());
    }

    #[test]
    fn sparse_grid_is_smaller_than_tensor() {
        let fams = [PolyFamily::Legendre; 5];
        let sparse = sparse_grid(&fams, 4).unwrap();
        let tensor = tensor_grid(&fams, 4).unwrap();
        assert!(
            sparse.len() < tensor.len() / 2,
            "sparse {} vs tensor {}",
            sparse.len(),
            tensor.len()
        );
    }

    #[test]
    fn sparse_grid_exact_for_low_order_polynomials() {
        // Smolyak level l is exact for total degree 2l - 1.
        let fams = [PolyFamily::Legendre; 3];
        let g = sparse_grid(&fams, 3).unwrap();
        // E[x²] = 1/3 per dim; E[x1² x2²] needs mixed order 4 — level 3
        // handles total degree 5.
        let v1 = g.integrate(|p| p[0] * p[0]);
        assert!((v1 - 1.0 / 3.0).abs() < 1e-10, "{v1}");
        let v2 = g.integrate(|p| p[0] * p[0] * p[1] * p[1]);
        assert!((v2 - 1.0 / 9.0).abs() < 1e-10, "{v2}");
    }

    #[test]
    fn sparse_grid_smooth_function_accuracy_improves_with_level() {
        let fams = [PolyFamily::Legendre; 2];
        // E[cos(x + y)] over U(-1,1)²  = sin(1)² (product of sin(1)/1 per dim
        // with cos expansion: E[cos(x+y)] = E[cos x cos y] - E[sin x sin y]
        // = sin(1)² - 0).
        let truth = 1.0f64.sin().powi(2);
        let mut prev = f64::INFINITY;
        for level in 2..7 {
            let g = sparse_grid(&fams, level).unwrap();
            let err = (g.integrate(|p| (p[0] + p[1]).cos()) - truth).abs();
            assert!(err < prev.max(1e-14), "level {level}: {err} !< {prev}");
            prev = err;
        }
        assert!(prev < 1e-8);
    }

    #[test]
    fn binomial_helper() {
        assert_eq!(binomial(4, 2), 6);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }
}
