/root/repo/target/release/deps/exp_ontological-17af5cbea8bdf039.d: crates/bench/src/bin/exp_ontological.rs

/root/repo/target/release/deps/exp_ontological-17af5cbea8bdf039: crates/bench/src/bin/exp_ontological.rs

crates/bench/src/bin/exp_ontological.rs:
