//! Per-function control-flow graphs over the token stream, plus a
//! small forward-dataflow framework (gen/kill bitsets iterated to
//! fixpoint) that rules instantiate.
//!
//! [`build`] turns one function body (a token extent from
//! [`crate::resolve::FnInfo`]) into basic blocks: straight-line token
//! segments connected by edges for `if`/`else`, `match` arms,
//! `loop`/`while`/`for` (with back edges and labeled
//! `break`/`continue`), `let … else`, `return`, and the `?` operator
//! (an edge to the dedicated exit block). Unreachable blocks are
//! pruned during construction, so every block of a finished [`Cfg`]
//! is reachable from the entry — the invariant the propcheck suite
//! exercises.
//!
//! Soundness limits, by design ("never accuse" bias): braced closure
//! bodies and nested `fn` items are opaque — their tokens belong to no
//! block, since they run on another schedule; expression-bodied
//! closures are scanned inline; a `break` to an unknown label (or a
//! labeled block) degrades to an edge to the exit, which only ever
//! *shortens* paths and therefore under-approximates liveness.
//!
//! The paper's frame applies to our own toolchain here: the previous
//! statement-linear liveness scan left epistemic uncertainty about
//! which paths actually carry a lock guard; an explicit CFG discharges
//! it instead of over-approximating around it.

use crate::lexer::TokenKind;
use crate::resolve::matching_close;
use crate::SourceFile;

/// One basic block: straight-line token segments in evaluation order,
/// plus successor edges.
#[derive(Debug, Clone, Default)]
pub struct Block {
    /// Token index segments `[start, end)`, in evaluation order. A
    /// block may hold several discontiguous segments when opaque
    /// regions (closure bodies, nested `fn` items) are cut out.
    pub ranges: Vec<(usize, usize)>,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// The control-flow graph of one function body. Block 0 is the entry;
/// every block is reachable from it.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks; index 0 is the entry.
    pub blocks: Vec<Block>,
    /// The dedicated exit block (`return`/`?`/fallthrough target), or
    /// `None` when no path reaches the function's end (e.g. a bare
    /// `loop` with no `break`).
    pub exit: Option<usize>,
}

impl Cfg {
    /// Token indices of block `b`, in evaluation order.
    pub fn tokens_of(&self, b: usize) -> impl Iterator<Item = usize> + '_ {
        self.blocks[b].ranges.iter().flat_map(|&(s, e)| s..e)
    }

    /// The block whose segments contain token index `i`, if any.
    pub fn block_of(&self, i: usize) -> Option<usize> {
        self.blocks
            .iter()
            .position(|b| b.ranges.iter().any(|&(s, e)| s <= i && i < e))
    }
}

/// A dense bitset over dataflow facts.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set sized for `bits` facts.
    pub fn new(bits: usize) -> Self {
        Self { words: vec![0; bits.div_ceil(64)] }
    }

    /// Adds fact `i`.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes fact `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// True when fact `i` is in the set.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .map(|w| w & (1 << (i % 64)) != 0)
            .unwrap_or(false)
    }

    /// Removes every fact in `other`.
    pub fn subtract(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Adds every fact in `other`; true when the set grew.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut grew = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let before = *w;
            *w |= o;
            grew |= *w != before;
        }
        grew
    }

    /// The facts in the set, ascending.
    pub fn ones(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, w) in self.words.iter().enumerate() {
            let mut w = *w;
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                w &= w - 1;
            }
        }
        out
    }
}

/// Forward gen/kill dataflow to fixpoint:
/// `out[b] = (in[b] − kill[b]) ∪ gen[b]`, `in[b] = ⋃ out[pred]`, entry
/// starts empty. Returns the `in` set of every block.
pub fn forward(cfg: &Cfg, gen: &[BitSet], kill: &[BitSet]) -> Vec<BitSet> {
    let n = cfg.blocks.len();
    let bits = gen.first().map(|g| g.words.len() * 64).unwrap_or(0);
    let mut ins: Vec<BitSet> = (0..n).map(|_| BitSet::new(bits)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            let mut out = ins[b].clone();
            out.subtract(&kill[b]);
            out.union_with(&gen[b]);
            for &s in &cfg.blocks[b].succs {
                if ins[s].union_with(&out) {
                    changed = true;
                }
            }
        }
    }
    ins
}

/// Builds the CFG for one function body; `body` is the token extent
/// `(open_brace, close_brace)` from [`crate::resolve::FnInfo::body`].
pub fn build(file: &SourceFile, body: (usize, usize)) -> Cfg {
    let mut b = Builder { file, blocks: Vec::new(), exit: 0, loops: Vec::new() };
    let entry = b.new_block();
    b.exit = b.new_block();
    let (open, close) = body;
    let fall = b.walk((open + 1, close.min(file.tokens().len())), entry);
    let exit = b.exit;
    b.edge(fall, exit);
    b.finish(entry)
}

/// One entry of the loop stack: where `continue` and `break` go.
struct LoopCtx {
    label: Option<String>,
    continue_to: usize,
    break_to: usize,
}

struct Builder<'a> {
    file: &'a SourceFile,
    blocks: Vec<Block>,
    exit: usize,
    loops: Vec<LoopCtx>,
}

impl<'a> Builder<'a> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn push_range(&mut self, b: usize, s: usize, e: usize) {
        if s < e {
            self.blocks[b].ranges.push((s, e));
        }
    }

    fn text_at(&self, i: usize) -> &str {
        self.file.text(&self.file.tokens()[i])
    }

    /// First significant token index at or after `i`, below `limit`.
    fn sig_at(&self, mut i: usize, limit: usize) -> Option<usize> {
        let tokens = self.file.tokens();
        while i < limit.min(tokens.len()) {
            if !tokens[i].is_comment() {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Walks a statement-sequence token range, appending straight-line
    /// segments to `cur` and splitting blocks at control flow. Returns
    /// the block that falls through past the range's end (possibly an
    /// unreachable continuation block — pruning washes those out).
    fn walk(&mut self, range: (usize, usize), mut cur: usize) -> usize {
        let tokens = self.file.tokens();
        let (start, end) = range;
        let mut seg = start;
        let mut i = start;
        while i < end {
            let t = &tokens[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            if t.kind == TokenKind::Ident {
                match self.file.text(t) {
                    "if" => {
                        self.push_range(cur, seg, i);
                        let (join, next) = self.handle_if(cur, i, end);
                        cur = join;
                        seg = next;
                        i = next;
                    }
                    "match" => {
                        self.push_range(cur, seg, i);
                        let (join, next) = self.handle_match(cur, i, end);
                        cur = join;
                        seg = next;
                        i = next;
                    }
                    "while" | "loop" => {
                        self.push_range(cur, seg, i);
                        let (after, next) = self.handle_loop(cur, i, end);
                        cur = after;
                        seg = next;
                        i = next;
                    }
                    "for" => {
                        // `for<'a> fn(...)` in a type is not a loop.
                        let hrtb = self
                            .sig_at(i + 1, end)
                            .map(|j| self.text_at(j) == "<")
                            .unwrap_or(false);
                        if hrtb {
                            i += 1;
                        } else {
                            self.push_range(cur, seg, i);
                            let (after, next) = self.handle_loop(cur, i, end);
                            cur = after;
                            seg = next;
                            i = next;
                        }
                    }
                    "else" => {
                        // A bare `else` here is `let … else { … }`; the
                        // diverging block is conditional, the binding
                        // falls through.
                        let open = self.sig_at(i + 1, end).filter(|&j| self.text_at(j) == "{");
                        if let Some(open) = open {
                            let close = matching_close(self.file, open, "{", "}");
                            self.push_range(cur, seg, i);
                            let else_entry = self.new_block();
                            self.edge(cur, else_entry);
                            let else_exit = self.walk((open + 1, close), else_entry);
                            let cont = self.new_block();
                            self.edge(cur, cont);
                            self.edge(else_exit, cont);
                            cur = cont;
                            seg = close + 1;
                            i = close + 1;
                        } else {
                            i += 1;
                        }
                    }
                    "return" => {
                        let stop = self.stmt_end(i + 1, end);
                        self.push_range(cur, seg, stop);
                        let exit = self.exit;
                        self.edge(cur, exit);
                        cur = self.new_block();
                        seg = stop;
                        i = stop;
                    }
                    kw @ ("break" | "continue") => {
                        let is_break = kw == "break";
                        let label = self
                            .sig_at(i + 1, end)
                            .filter(|&j| tokens[j].kind == TokenKind::Lifetime)
                            .map(|j| self.text_at(j).to_string());
                        let stop = self.stmt_end(i + 1, end);
                        self.push_range(cur, seg, stop);
                        let target = self.loop_target(is_break, label.as_deref());
                        self.edge(cur, target);
                        cur = self.new_block();
                        seg = stop;
                        i = stop;
                    }
                    "fn" => {
                        // A nested fn item gets its own CFG; its body
                        // is opaque here.
                        self.push_range(cur, seg, i);
                        let next = self.skip_fn_item(i, end);
                        seg = next;
                        i = next;
                    }
                    _ => i += 1,
                }
            } else if t.kind == TokenKind::Punct {
                match self.file.text(t) {
                    "?" => {
                        self.push_range(cur, seg, i + 1);
                        let exit = self.exit;
                        self.edge(cur, exit);
                        let next = self.new_block();
                        self.edge(cur, next);
                        cur = next;
                        seg = i + 1;
                        i += 1;
                    }
                    p @ ("|" | "||") if self.closure_position(i) => {
                        let params_end = if p == "||" {
                            i
                        } else {
                            self.closure_params_end(i + 1, end)
                        };
                        let body = self.sig_at(params_end + 1, end);
                        match body {
                            Some(b) if self.text_at(b) == "{" => {
                                // Braced closure body: opaque.
                                let close = matching_close(self.file, b, "{", "}");
                                self.push_range(cur, seg, i);
                                seg = close + 1;
                                i = close + 1;
                            }
                            _ => i = params_end + 1,
                        }
                    }
                    _ => i += 1,
                }
            } else {
                i += 1;
            }
        }
        self.push_range(cur, seg, end);
        cur
    }

    /// `if [let …] cond { … } [else if …]* [else { … }]` from the `if`
    /// keyword at `kw`. Returns the join block and the next index.
    fn handle_if(&mut self, cur: usize, kw: usize, limit: usize) -> (usize, usize) {
        let is_let = self
            .sig_at(kw + 1, limit)
            .map(|j| self.text_at(j) == "let")
            .unwrap_or(false);
        let pattern = if is_let { Some("=") } else { None };
        let Some(body_open) = self.find_block_open(kw + 1, limit, pattern) else {
            return (cur, kw + 1);
        };
        self.push_range(cur, kw, body_open);
        let body_close = matching_close(self.file, body_open, "{", "}");
        let then_entry = self.new_block();
        self.edge(cur, then_entry);
        let then_exit = self.walk((body_open + 1, body_close), then_entry);

        let mut next = body_close + 1;
        let mut else_exit = None;
        let mut has_else = false;
        if let Some(e) = self.sig_at(body_close + 1, limit).filter(|&j| self.text_at(j) == "else")
        {
            if let Some(after) = self.sig_at(e + 1, limit) {
                if self.text_at(after) == "if" {
                    has_else = true;
                    let else_entry = self.new_block();
                    self.edge(cur, else_entry);
                    let (inner_join, inner_next) = self.handle_if(else_entry, after, limit);
                    else_exit = Some(inner_join);
                    next = inner_next;
                } else if self.text_at(after) == "{" {
                    has_else = true;
                    let close = matching_close(self.file, after, "{", "}");
                    let else_entry = self.new_block();
                    self.edge(cur, else_entry);
                    else_exit = Some(self.walk((after + 1, close), else_entry));
                    next = close + 1;
                }
            }
        }
        let join = self.new_block();
        self.edge(then_exit, join);
        if let Some(ee) = else_exit {
            self.edge(ee, join);
        }
        if !has_else {
            self.edge(cur, join);
        }
        (join, next)
    }

    /// `match head { pat => body, … }` from the `match` keyword at
    /// `kw`. Returns the join block and the next index.
    fn handle_match(&mut self, cur: usize, kw: usize, limit: usize) -> (usize, usize) {
        let tokens = self.file.tokens();
        let Some(head_open) = self.find_block_open(kw + 1, limit, None) else {
            return (cur, kw + 1);
        };
        self.push_range(cur, kw, head_open);
        let head_close = matching_close(self.file, head_open, "{", "}");
        let join = self.new_block();
        let mut any_arm = false;
        let mut i = head_open + 1;
        while i < head_close {
            // Pattern (and guard) up to `=>` at depth 0.
            let mut depth = 0i64;
            let mut arrow = None;
            let mut j = i;
            while j < head_close {
                let t = &tokens[j];
                if t.kind == TokenKind::Punct {
                    match self.file.text(t) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "=>" if depth == 0 => {
                            arrow = Some(j);
                            break;
                        }
                        _ => {}
                    }
                }
                j += 1;
            }
            let Some(arrow) = arrow else { break };
            let Some(body_start) = self.sig_at(arrow + 1, head_close) else { break };
            let arm_entry = self.new_block();
            self.edge(cur, arm_entry);
            any_arm = true;
            let (body_range, after) = if self.text_at(body_start) == "{" {
                let close = matching_close(self.file, body_start, "{", "}");
                ((body_start + 1, close), close + 1)
            } else {
                // Expression arm: up to `,` at depth 0 or the match's
                // closing brace.
                let mut depth = 0i64;
                let mut k = body_start;
                while k < head_close {
                    let t = &tokens[k];
                    if t.kind == TokenKind::Punct {
                        match self.file.text(t) {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth -= 1,
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
                ((body_start, k), k)
            };
            let arm_exit = self.walk(body_range, arm_entry);
            self.edge(arm_exit, join);
            i = after;
            if let Some(c) = self.sig_at(i, head_close).filter(|&c| self.text_at(c) == ",") {
                i = c + 1;
            }
        }
        if !any_arm {
            self.edge(cur, join);
        }
        (join, head_close + 1)
    }

    /// `loop`/`while [let]`/`for … in` from the keyword at `kw`.
    /// Returns the loop-exit block and the next index.
    fn handle_loop(&mut self, cur: usize, kw: usize, limit: usize) -> (usize, usize) {
        let kind = self.text_at(kw).to_string();
        let label = self.label_before(kw);
        let pattern = match kind.as_str() {
            "for" => Some("in"),
            "while"
                if self
                    .sig_at(kw + 1, limit)
                    .map(|j| self.text_at(j) == "let")
                    .unwrap_or(false) =>
            {
                Some("=")
            }
            _ => None,
        };
        let Some(body_open) = self.find_block_open(kw + 1, limit, pattern) else {
            return (cur, kw + 1);
        };
        let body_close = matching_close(self.file, body_open, "{", "}");
        let header = self.new_block();
        self.edge(cur, header);
        self.push_range(header, kw, body_open);
        let exit_blk = self.new_block();
        if kind != "loop" {
            // `loop` has no condition edge out; only `break` leaves.
            self.edge(header, exit_blk);
        }
        let body_entry = self.new_block();
        self.edge(header, body_entry);
        self.loops.push(LoopCtx { label, continue_to: header, break_to: exit_blk });
        let body_exit = self.walk((body_open + 1, body_close), body_entry);
        self.loops.pop();
        self.edge(body_exit, header);
        (exit_blk, body_close + 1)
    }

    /// The `'label` of a `'label: loop`-style statement, when present.
    fn label_before(&self, kw: usize) -> Option<String> {
        let tokens = self.file.tokens();
        let colon = tokens[..kw].iter().rposition(|t| !t.is_comment())?;
        if !(tokens[colon].kind == TokenKind::Punct && self.file.text(&tokens[colon]) == ":") {
            return None;
        }
        let label = tokens[..colon].iter().rposition(|t| !t.is_comment())?;
        (tokens[label].kind == TokenKind::Lifetime)
            .then(|| self.file.text(&tokens[label]).to_string())
    }

    /// Where a `break`/`continue` goes. Unknown labels and statements
    /// outside any loop degrade to the exit block — paths only get
    /// shorter, so liveness is under-approximated, never inflated.
    fn loop_target(&self, is_break: bool, label: Option<&str>) -> usize {
        let ctx = match label {
            Some(l) => self.loops.iter().rev().find(|c| c.label.as_deref() == Some(l)),
            None => self.loops.last(),
        };
        match ctx {
            Some(c) if is_break => c.break_to,
            Some(c) => c.continue_to,
            None => self.exit,
        }
    }

    /// Finds the `{` opening a construct's body, skipping the head
    /// expression: balanced parens/brackets, nested braced expressions
    /// inside them, and — when `pattern` is set — everything up to the
    /// top-level `=` (`if let`, `while let`) or `in` (`for`), so
    /// struct-pattern braces are not mistaken for the body.
    fn find_block_open(
        &self,
        mut i: usize,
        limit: usize,
        mut pattern: Option<&str>,
    ) -> Option<usize> {
        let tokens = self.file.tokens();
        let mut pdepth = 0i64;
        while i < limit {
            let t = &tokens[i];
            if t.is_comment() {
                i += 1;
                continue;
            }
            match t.kind {
                TokenKind::Punct => match self.file.text(t) {
                    "(" | "[" => pdepth += 1,
                    ")" | "]" => pdepth -= 1,
                    "=" if pdepth == 0 && pattern == Some("=") => pattern = None,
                    "{" => {
                        if pdepth == 0 && pattern.is_none() {
                            return Some(i);
                        }
                        i = matching_close(self.file, i, "{", "}") + 1;
                        continue;
                    }
                    ";" if pdepth == 0 => return None,
                    _ => {}
                },
                TokenKind::Ident
                    if pdepth == 0
                        && pattern == Some("in")
                        && self.file.text(t) == "in" =>
                {
                    pattern = None;
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// One past the end of a `return`/`break`/`continue` statement
    /// starting after its keyword: through the `;` at depth 0, or up
    /// to a delimiter closing the enclosing region.
    fn stmt_end(&self, mut i: usize, limit: usize) -> usize {
        let tokens = self.file.tokens();
        let mut depth = 0i64;
        while i < limit {
            let t = &tokens[i];
            if t.kind == TokenKind::Punct {
                match self.file.text(t) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            return i;
                        }
                        depth -= 1;
                    }
                    ";" if depth == 0 => return i + 1,
                    "," if depth == 0 => return i,
                    _ => {}
                }
            }
            i += 1;
        }
        limit
    }

    /// Skips a nested `fn` item starting at its keyword, returning the
    /// index one past its body (or its `;` for bodiless signatures).
    fn skip_fn_item(&self, kw: usize, limit: usize) -> usize {
        let tokens = self.file.tokens();
        let mut i = kw + 1;
        while i < limit {
            if tokens[i].kind == TokenKind::Punct {
                match self.file.text(&tokens[i]) {
                    "{" => return matching_close(self.file, i, "{", "}") + 1,
                    ";" => return i + 1,
                    _ => {}
                }
            }
            i += 1;
        }
        limit
    }

    /// True when the `|`/`||` at `i` starts a closure (expression
    /// position) rather than a binary or-operation.
    fn closure_position(&self, i: usize) -> bool {
        let tokens = self.file.tokens();
        let Some(p) = tokens[..i].iter().rposition(|t| !t.is_comment()) else {
            return true;
        };
        let t = &tokens[p];
        match t.kind {
            TokenKind::Punct => matches!(
                self.file.text(t),
                "(" | "," | "=" | "{" | ";" | "=>" | ":" | "[" | "&" | "&&"
            ),
            TokenKind::Ident => {
                matches!(self.file.text(t), "return" | "else" | "move" | "in")
            }
            _ => false,
        }
    }

    /// The closing `|` of a closure's parameter list, scanning from
    /// just after the opening `|`.
    fn closure_params_end(&self, mut i: usize, limit: usize) -> usize {
        let tokens = self.file.tokens();
        let mut depth = 0i64;
        while i < limit {
            let t = &tokens[i];
            if t.kind == TokenKind::Punct {
                match self.file.text(t) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "|" if depth == 0 => return i,
                    _ => {}
                }
            }
            i += 1;
        }
        limit.saturating_sub(1)
    }

    /// Prunes unreachable blocks and remaps indices, keeping the
    /// entry at index 0.
    fn finish(mut self, entry: usize) -> Cfg {
        let n = self.blocks.len();
        let mut keep = vec![false; n];
        let mut stack = vec![entry];
        keep[entry] = true;
        while let Some(b) = stack.pop() {
            for s in self.blocks[b].succs.clone() {
                if !keep[s] {
                    keep[s] = true;
                    stack.push(s);
                }
            }
        }
        let mut remap = vec![usize::MAX; n];
        let mut blocks = Vec::new();
        for i in 0..n {
            if keep[i] {
                remap[i] = blocks.len();
                blocks.push(std::mem::take(&mut self.blocks[i]));
            }
        }
        for b in &mut blocks {
            b.succs = b.succs.iter().map(|&s| remap[s]).collect();
        }
        let exit = keep[self.exit].then(|| remap[self.exit]);
        Cfg { blocks, exit }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn cfg_of(body: &str) -> (crate::SourceFile, Cfg) {
        let src = format!("fn f() {{\n{body}\n}}\n");
        let f = crate::SourceFile::new("crates/x/src/lib.rs", &src, FileKind::RustLibrary);
        let facts = crate::resolve::parse_facts(&f);
        let body = facts.fns[0].body.expect("fn has a body");
        let cfg = build(&f, body);
        (f, cfg)
    }

    fn token_texts(f: &crate::SourceFile, cfg: &Cfg, b: usize) -> Vec<String> {
        cfg.tokens_of(b).map(|i| f.text(&f.tokens()[i]).to_string()).collect()
    }

    fn assert_invariants(cfg: &Cfg) {
        for b in &cfg.blocks {
            for &s in &b.succs {
                assert!(s < cfg.blocks.len(), "dangling edge");
            }
        }
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &cfg.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "unreachable block survived pruning");
        if let Some(e) = cfg.exit {
            assert!(cfg.blocks[e].succs.is_empty(), "exit has successors");
        }
    }

    #[test]
    fn straight_line_code_is_one_block_plus_exit() {
        let (_, cfg) = cfg_of("let a = 1;\nlet b = a + 2;\nuse_it(b);");
        assert_invariants(&cfg);
        assert_eq!(cfg.blocks.len(), 2, "entry + exit");
        assert_eq!(cfg.blocks[0].succs, vec![cfg.exit.expect("exit reachable")]);
    }

    #[test]
    fn if_else_forms_a_diamond() {
        let (_, cfg) = cfg_of("pre();\nif c {\n    a();\n} else {\n    b();\n}\npost();");
        assert_invariants(&cfg);
        // entry(cond), then, else, join, exit.
        assert_eq!(cfg.blocks.len(), 5);
        assert_eq!(cfg.blocks[0].succs.len(), 2, "cond branches two ways");
        let join = cfg
            .blocks
            .iter()
            .position(|b| b.succs == vec![cfg.exit.expect("exit")])
            .expect("join block");
        for &s in &cfg.blocks[0].succs {
            assert_eq!(cfg.blocks[s].succs, vec![join], "both arms meet at the join");
        }
    }

    #[test]
    fn if_without_else_falls_through_directly() {
        let (_, cfg) = cfg_of("if c {\n    a();\n}\npost();");
        assert_invariants(&cfg);
        // entry → {then, join}; then → join; join → exit.
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.blocks[0].succs.len(), 2);
    }

    #[test]
    fn early_return_edges_to_exit_and_prunes_nothing_reachable() {
        let (f, cfg) = cfg_of("if c {\n    return 1;\n}\ntail();");
        assert_invariants(&cfg);
        let exit = cfg.exit.expect("exit");
        // The then-block's live path ends at the exit, not the join.
        let then = cfg
            .blocks
            .iter()
            .position(|b| b.succs == vec![exit] && b.ranges.iter().any(|&(s, e)| s < e))
            .expect("return block");
        assert!(
            token_texts(&f, &cfg, then).contains(&"return".to_string()),
            "the returning block holds the return tokens"
        );
        // tail() is still reachable via the fallthrough edge.
        let texts: Vec<String> =
            (0..cfg.blocks.len()).flat_map(|b| token_texts(&f, &cfg, b)).collect();
        assert!(texts.contains(&"tail".to_string()));
    }

    #[test]
    fn all_paths_returning_leaves_no_fallthrough() {
        let (_, cfg) = cfg_of("if c {\n    return 1;\n} else {\n    return 2;\n}");
        assert_invariants(&cfg);
        // Join and trailing blocks are unreachable and pruned: entry,
        // two return arms, exit.
        assert_eq!(cfg.blocks.len(), 4);
    }

    #[test]
    fn loops_have_back_edges_and_break_exits() {
        let (f, cfg) = cfg_of("loop {\n    step();\n    if done {\n        break;\n    }\n}\ntail();");
        assert_invariants(&cfg);
        let exit = cfg.exit.expect("exit");
        // Some block carries a back edge (a successor with a smaller
        // index that is not the exit).
        assert!(
            cfg.blocks
                .iter()
                .enumerate()
                .any(|(i, b)| b.succs.iter().any(|&s| s < i && s != exit)),
            "loop body edges back to the header"
        );
        let texts: Vec<String> =
            (0..cfg.blocks.len()).flat_map(|b| token_texts(&f, &cfg, b)).collect();
        assert!(texts.contains(&"tail".to_string()), "break reaches the code after the loop");
    }

    #[test]
    fn bare_infinite_loop_has_no_exit() {
        let (_, cfg) = cfg_of("loop {\n    step();\n}");
        assert_invariants(&cfg);
        assert_eq!(cfg.exit, None, "no path reaches the function end");
    }

    #[test]
    fn while_condition_is_reevaluated_via_the_header() {
        let (f, cfg) = cfg_of("while more() {\n    work();\n}\ntail();");
        assert_invariants(&cfg);
        let header = cfg
            .blocks
            .iter()
            .position(|b| {
                b.ranges
                    .iter()
                    .any(|&(s, e)| (s..e).any(|i| f.text(&f.tokens()[i]) == "more"))
            })
            .expect("header holds the condition");
        assert_eq!(cfg.blocks[header].succs.len(), 2, "header branches to body and exit");
    }

    #[test]
    fn question_mark_edges_to_exit_mid_statement() {
        let (_, cfg) = cfg_of("let v = fallible()?;\nuse_it(v);");
        assert_invariants(&cfg);
        let exit = cfg.exit.expect("exit");
        assert!(
            cfg.blocks[0].succs.contains(&exit),
            "`?` adds an early-exit edge from the entry block"
        );
        assert_eq!(cfg.blocks[0].succs.len(), 2, "and a fallthrough edge");
    }

    #[test]
    fn match_arms_fan_out_and_rejoin() {
        let (_, cfg) = cfg_of(
            "match v {\n    A => a(),\n    B(x) => {\n        b(x);\n    }\n    _ => return,\n}\ntail();",
        );
        assert_invariants(&cfg);
        assert_eq!(cfg.blocks[0].succs.len(), 3, "one edge per arm");
        let exit = cfg.exit.expect("exit");
        assert!(
            cfg.blocks.iter().any(|b| b.succs == vec![exit] && !b.ranges.is_empty())
                || cfg.blocks.iter().any(|b| b.succs.contains(&exit)),
            "the returning arm reaches the exit"
        );
    }

    #[test]
    fn braced_closure_bodies_are_opaque() {
        let (f, cfg) = cfg_of("items.iter().map(|x| {\n    if x.bad() {\n        return early;\n    }\n    x.fix()\n});\ntail();");
        assert_invariants(&cfg);
        let texts: Vec<String> =
            (0..cfg.blocks.len()).flat_map(|b| token_texts(&f, &cfg, b)).collect();
        assert!(
            !texts.contains(&"early".to_string()),
            "closure body tokens belong to no block of the enclosing fn"
        );
        assert_eq!(cfg.blocks.len(), 2, "the closure's `if` splits nothing out here");
    }

    #[test]
    fn let_else_falls_through_past_the_diverging_block() {
        let (f, cfg) = cfg_of("let Some(x) = opt else {\n    return;\n};\nuse_it(x);");
        assert_invariants(&cfg);
        let texts: Vec<String> =
            (0..cfg.blocks.len()).flat_map(|b| token_texts(&f, &cfg, b)).collect();
        assert!(texts.contains(&"use_it".to_string()), "the binding path continues");
    }

    #[test]
    fn labeled_break_targets_the_outer_loop() {
        let (f, cfg) = cfg_of(
            "'outer: loop {\n    loop {\n        if c {\n            break 'outer;\n        }\n        inner();\n    }\n}\ntail();",
        );
        assert_invariants(&cfg);
        let texts: Vec<String> =
            (0..cfg.blocks.len()).flat_map(|b| token_texts(&f, &cfg, b)).collect();
        assert!(
            texts.contains(&"tail".to_string()),
            "break 'outer reaches the code after the outer loop"
        );
    }

    #[test]
    fn nested_fn_items_are_opaque() {
        let (f, cfg) = cfg_of("fn helper() {\n    if q {\n        r();\n    }\n}\nhelper();");
        assert_invariants(&cfg);
        assert_eq!(cfg.blocks.len(), 2, "the nested fn's control flow is not ours");
        let texts = token_texts(&f, &cfg, 0);
        assert!(texts.contains(&"helper".to_string()), "the call site remains");
        assert!(!texts.contains(&"r".to_string()), "the nested body does not");
    }

    #[test]
    fn forward_dataflow_reaches_fixpoint_on_a_diamond() {
        let (_, cfg) = cfg_of("if c {\n    a();\n} else {\n    b();\n}\npost();");
        // One fact, genned in the then-arm (block index of entry's
        // first successor), killed in the else-arm.
        let then = cfg.blocks[0].succs[0];
        let els = cfg.blocks[0].succs[1];
        let mut gen = vec![BitSet::new(1); cfg.blocks.len()];
        let mut kill = vec![BitSet::new(1); cfg.blocks.len()];
        gen[then].insert(0);
        kill[els].insert(0);
        let ins = forward(&cfg, &gen, &kill);
        let join = cfg.blocks[then].succs[0];
        assert!(ins[join].contains(0), "the fact may reach the join (via then)");
        assert!(!ins[then].contains(0), "nothing reaches the arms' entry");
    }

    #[test]
    fn forward_dataflow_propagates_around_loops() {
        let (f, cfg) = cfg_of("let g = acquire();\nloop {\n    step();\n}");
        // Fact genned in the entry block; it must reach the loop body
        // through the header's back edge cycle.
        let mut gen = vec![BitSet::new(1); cfg.blocks.len()];
        let kill = vec![BitSet::new(1); cfg.blocks.len()];
        gen[0].insert(0);
        let ins = forward(&cfg, &gen, &kill);
        let body = cfg
            .blocks
            .iter()
            .position(|b| {
                b.ranges
                    .iter()
                    .any(|&(s, e)| (s..e).any(|i| f.text(&f.tokens()[i]) == "step"))
            })
            .expect("loop body block");
        assert!(ins[body].contains(0), "the fact is live into the loop body");
    }

    #[test]
    fn bitset_ops_cover_the_word_boundary() {
        let mut a = BitSet::new(130);
        a.insert(0);
        a.insert(64);
        a.insert(129);
        assert_eq!(a.ones(), vec![0, 64, 129]);
        let mut b = BitSet::new(130);
        b.insert(64);
        assert!(a.contains(64));
        a.subtract(&b);
        assert!(!a.contains(64));
        assert_eq!(a.ones(), vec![0, 129]);
        assert!(b.union_with(&a), "grew");
        assert!(!b.union_with(&a), "already contains it");
        a.remove(0);
        assert_eq!(a.ones(), vec![129]);
    }
}
