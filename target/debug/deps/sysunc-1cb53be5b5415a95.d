/root/repo/target/debug/deps/sysunc-1cb53be5b5415a95.d: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

/root/repo/target/debug/deps/sysunc-1cb53be5b5415a95: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

crates/core/src/lib.rs:
crates/core/src/budget.rs:
crates/core/src/casestudy.rs:
crates/core/src/error.rs:
crates/core/src/modeling.rs:
crates/core/src/register.rs:
crates/core/src/taxonomy.rs:
