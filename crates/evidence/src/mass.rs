//! Dempster–Shafer theory of evidence on finite frames of discernment.
//!
//! This is the mathematical machinery the paper's Sec. V-B builds on
//! (Shafer \[36\]; Simon–Weber–Evsukoff \[8\]): basic probability assignments
//! over *sets* of hypotheses rather than single hypotheses, so that
//! epistemic indecision (mass on `{car, pedestrian}`) and ontological
//! openness (mass on the whole frame) are first-class citizens.

use crate::error::{EvidenceError, Result};
use crate::interval::Interval;
use sysunc_prob::json::{field, obj, FromJson, Json, JsonError, ToJson};
use std::collections::BTreeMap;

/// A frame of discernment: the (exhaustive, mutually exclusive) set of
/// hypotheses. Limited to 64 elements so subsets are `u64` bitmasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    names: Vec<String>,
}

impl Frame {
    /// Creates a frame from hypothesis names.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidFrame`] for empty frames, more than
    /// 64 hypotheses, or duplicate names.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Result<Self> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.is_empty() || names.len() > 64 {
            return Err(EvidenceError::InvalidFrame(format!(
                "frame must have 1..=64 hypotheses, got {}",
                names.len()
            )));
        }
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        if unique.len() != names.len() {
            return Err(EvidenceError::InvalidFrame("duplicate hypothesis names".into()));
        }
        Ok(Self { names })
    }

    /// Number of hypotheses.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the frame is empty (never true for constructed frames).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Hypothesis names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Bitmask of the full frame `Θ`.
    pub fn theta(&self) -> u64 {
        if self.names.len() == 64 {
            u64::MAX
        } else {
            (1u64 << self.names.len()) - 1
        }
    }

    /// Index of a hypothesis by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Bitmask for a set of hypothesis names.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::UnknownHypothesis`] for names not in the
    /// frame.
    pub fn subset(&self, names: &[&str]) -> Result<u64> {
        let mut mask = 0u64;
        for name in names {
            let idx = self
                .index_of(name)
                .ok_or_else(|| EvidenceError::UnknownHypothesis((*name).to_string()))?;
            mask |= 1 << idx;
        }
        Ok(mask)
    }

    /// Bitmask of the singleton `{name}`.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::UnknownHypothesis`] when the name is not in
    /// the frame.
    pub fn singleton(&self, name: &str) -> Result<u64> {
        self.subset(&[name])
    }

    /// Formats a subset bitmask as `{a, b}`.
    pub fn format_subset(&self, mask: u64) -> String {
        let items: Vec<&str> = self
            .names
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, n)| n.as_str())
            .collect();
        format!("{{{}}}", items.join(", "))
    }
}

/// A basic probability assignment (mass function) over a frame.
///
/// Focal elements are subsets (bitmasks) with positive mass; masses sum
/// to 1. Mass on non-singletons is exactly the representation of epistemic
/// indecision; mass on the full frame `Θ` is total ignorance.
///
/// # Examples
///
/// ```
/// use sysunc_evidence::{Frame, MassFunction};
/// let frame = Frame::new(vec!["car", "pedestrian", "unknown"])?;
/// let m = MassFunction::from_focal(&frame, vec![
///     (frame.singleton("car")?, 0.7),
///     (frame.subset(&["car", "pedestrian"])?, 0.2),
///     (frame.theta(), 0.1),
/// ])?;
/// let car = frame.singleton("car")?;
/// assert!((m.belief(car) - 0.7).abs() < 1e-12);
/// assert!((m.plausibility(car) - 1.0).abs() < 1e-12);
/// # Ok::<(), sysunc_evidence::EvidenceError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MassFunction {
    frame: Frame,
    /// Focal elements, keyed by subset bitmask. BTreeMap keeps iteration
    /// deterministic.
    focal: BTreeMap<u64, f64>,
}

impl MassFunction {
    /// The vacuous mass function: all mass on `Θ` (total ignorance).
    pub fn vacuous(frame: &Frame) -> Self {
        let mut focal = BTreeMap::new();
        focal.insert(frame.theta(), 1.0);
        Self { frame: frame.clone(), focal }
    }

    /// A Bayesian mass function: mass only on singletons, i.e. an ordinary
    /// probability distribution.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] for wrong length, negative
    /// entries or sums away from 1.
    pub fn bayesian(frame: &Frame, probs: &[f64]) -> Result<Self> {
        if probs.len() != frame.len() {
            return Err(EvidenceError::InvalidMass(format!(
                "expected {} probabilities, got {}",
                frame.len(),
                probs.len()
            )));
        }
        let focal: Vec<(u64, f64)> = probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(i, &p)| (1u64 << i, p))
            .collect();
        Self::from_focal(frame, focal)
    }

    /// Builds a mass function from focal elements.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] for empty-set mass, negative
    /// masses, subsets outside the frame, or totals away from 1 (beyond
    /// 1e-9; exact renormalization is applied inside).
    pub fn from_focal(frame: &Frame, elements: Vec<(u64, f64)>) -> Result<Self> {
        let mut focal: BTreeMap<u64, f64> = BTreeMap::new();
        let theta = frame.theta();
        let mut total = 0.0;
        for (set, mass) in elements {
            if mass < 0.0 || !mass.is_finite() {
                return Err(EvidenceError::InvalidMass(format!("negative mass {mass}")));
            }
            if mass == 0.0 { // tidy: allow(float-eq)
                continue;
            }
            if set == 0 {
                return Err(EvidenceError::InvalidMass("mass on the empty set".into()));
            }
            if set & !theta != 0 {
                return Err(EvidenceError::InvalidMass(format!(
                    "subset {set:#b} outside the frame"
                )));
            }
            *focal.entry(set).or_insert(0.0) += mass;
            total += mass;
        }
        if (total - 1.0).abs() > 1e-9 {
            return Err(EvidenceError::InvalidMass(format!("masses sum to {total}, expected 1")));
        }
        for v in focal.values_mut() {
            *v /= total;
        }
        Ok(Self { frame: frame.clone(), focal })
    }

    /// The frame of discernment.
    pub fn frame(&self) -> &Frame {
        &self.frame
    }

    /// Iterator over focal elements `(subset mask, mass)`.
    pub fn focal_elements(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.focal.iter().map(|(&s, &m)| (s, m))
    }

    /// Mass assigned to an exact subset (zero for non-focal subsets).
    /// Range: `[0, 1]`; focal masses sum to one over the frame.
    pub fn mass(&self, set: u64) -> f64 {
        self.focal.get(&set).copied().unwrap_or(0.0)
    }

    /// Belief `Bel(A) = Σ_{B ⊆ A} m(B)` — the provable support for `A`.
    /// Range: `[0, 1]`, with `Bel(A) <= Pl(A)`.
    pub fn belief(&self, set: u64) -> f64 {
        // `+ 0.0` normalizes the empty-sum negative zero.
        self.focal
            .iter()
            .filter(|(&b, _)| b & !set == 0)
            .map(|(_, &m)| m)
            .sum::<f64>()
            + 0.0
    }

    /// Plausibility `Pl(A) = Σ_{B ∩ A ≠ ∅} m(B)` — the mass not
    /// contradicting `A`.
    /// Range: `[0, 1]`, with `Pl(A) = 1 - Bel(not A)`.
    pub fn plausibility(&self, set: u64) -> f64 {
        self.focal
            .iter()
            .filter(|(&b, _)| b & set != 0)
            .map(|(_, &m)| m)
            .sum::<f64>()
            + 0.0
    }

    /// The `[Bel, Pl]` interval of a subset — an epistemic probability
    /// bound.
    pub fn interval(&self, set: u64) -> Interval {
        Interval::new(self.belief(set), self.plausibility(set))
            .expect("Bel <= Pl by construction") // tidy: allow(panic)
            .clamp_unit()
    }

    /// Pignistic transformation: spreads every focal mass uniformly over
    /// its elements, producing a single probability distribution for
    /// decision making (Smets).
    pub fn pignistic(&self) -> Vec<f64> {
        let n = self.frame.len();
        let mut p = vec![0.0; n];
        for (&set, &m) in &self.focal {
            let card = set.count_ones() as f64;
            for (i, pi) in p.iter_mut().enumerate() {
                if set & (1 << i) != 0 {
                    *pi += m / card;
                }
            }
        }
        p
    }

    /// Dempster's conflict coefficient `K` with another mass function:
    /// the combined mass falling on the empty set.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::FrameMismatch`] for different frames.
    pub fn conflict(&self, other: &MassFunction) -> Result<f64> {
        if self.frame != other.frame {
            return Err(EvidenceError::FrameMismatch);
        }
        let mut k = 0.0;
        for (&a, &ma) in &self.focal {
            for (&b, &mb) in &other.focal {
                if a & b == 0 {
                    k += ma * mb;
                }
            }
        }
        Ok(k)
    }

    /// Dempster's rule of combination (conjunctive, conflict renormalized).
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::FrameMismatch`] for different frames and
    /// [`EvidenceError::TotalConflict`] when `K = 1`.
    pub fn combine_dempster(&self, other: &MassFunction) -> Result<MassFunction> {
        if self.frame != other.frame {
            return Err(EvidenceError::FrameMismatch);
        }
        let mut combined: BTreeMap<u64, f64> = BTreeMap::new();
        let mut k = 0.0;
        for (&a, &ma) in &self.focal {
            for (&b, &mb) in &other.focal {
                let inter = a & b;
                if inter == 0 {
                    k += ma * mb;
                } else {
                    *combined.entry(inter).or_insert(0.0) += ma * mb;
                }
            }
        }
        if (1.0 - k).abs() < 1e-12 {
            return Err(EvidenceError::TotalConflict);
        }
        for v in combined.values_mut() {
            *v /= 1.0 - k;
        }
        Ok(MassFunction { frame: self.frame.clone(), focal: combined })
    }

    /// Yager's rule: conflict mass is transferred to `Θ` (ignorance) rather
    /// than renormalized — more cautious under high conflict.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::FrameMismatch`] for different frames.
    pub fn combine_yager(&self, other: &MassFunction) -> Result<MassFunction> {
        if self.frame != other.frame {
            return Err(EvidenceError::FrameMismatch);
        }
        let mut combined: BTreeMap<u64, f64> = BTreeMap::new();
        let mut k = 0.0;
        for (&a, &ma) in &self.focal {
            for (&b, &mb) in &other.focal {
                let inter = a & b;
                if inter == 0 {
                    k += ma * mb;
                } else {
                    *combined.entry(inter).or_insert(0.0) += ma * mb;
                }
            }
        }
        if k > 0.0 {
            *combined.entry(self.frame.theta()).or_insert(0.0) += k;
        }
        Ok(MassFunction { frame: self.frame.clone(), focal: combined })
    }

    /// Shafer discounting: scales all evidence by `reliability` and moves
    /// the rest to `Θ`. Models a partially trusted source.
    ///
    /// # Errors
    ///
    /// Returns [`EvidenceError::InvalidMass`] for reliability outside
    /// `[0, 1]`.
    pub fn discount(&self, reliability: f64) -> Result<MassFunction> {
        if !(0.0..=1.0).contains(&reliability) {
            return Err(EvidenceError::InvalidMass(format!(
                "reliability must be in [0,1], got {reliability}"
            )));
        }
        let mut focal: BTreeMap<u64, f64> = BTreeMap::new();
        for (&set, &m) in &self.focal {
            *focal.entry(set).or_insert(0.0) += reliability * m;
        }
        *focal.entry(self.frame.theta()).or_insert(0.0) += 1.0 - reliability;
        focal.retain(|_, m| *m > 0.0);
        Ok(MassFunction { frame: self.frame.clone(), focal })
    }

    /// Total mass on non-singleton focal elements — a scalar measure of the
    /// epistemic+ontological (non-Bayesian) content of the evidence.
    /// Range: `[0, 1]` — the mass assigned to non-singleton sets.
    pub fn nonspecificity_mass(&self) -> f64 {
        self.focal
            .iter()
            .filter(|(&s, _)| s.count_ones() > 1)
            .map(|(_, &m)| m)
            .sum::<f64>()
            + 0.0
    }
}

impl ToJson for Frame {
    fn to_json(&self) -> Json {
        obj([("names", self.names.to_json())])
    }
}

impl FromJson for Frame {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let names: Vec<String> = field(v, "names")?;
        Frame::new(names).map_err(|e| JsonError::decode(e.to_string()))
    }
}

impl ToJson for MassFunction {
    fn to_json(&self) -> Json {
        let focal: Vec<Json> = self
            .focal
            .iter()
            .map(|(&set, &m)| Json::Arr(vec![Json::U64(set), Json::Num(m)]))
            .collect();
        obj([("frame", self.frame.to_json()), ("focal", Json::Arr(focal))])
    }
}

impl FromJson for MassFunction {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let frame: Frame = field(v, "frame")?;
        let pairs = v
            .get("focal")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::missing("focal"))?;
        let focal = pairs
            .iter()
            .map(|pair| match pair.as_arr() {
                Some([set, m]) => {
                    let set = set
                        .as_u64()
                        .ok_or_else(|| JsonError::decode("focal set must be a u64 bitmask"))?;
                    let m = m.as_f64().ok_or_else(|| JsonError::decode("focal mass must be a number"))?;
                    Ok((set, m))
                }
                _ => Err(JsonError::decode("focal element must be a [set, mass] pair")),
            })
            .collect::<std::result::Result<Vec<(u64, f64)>, JsonError>>()?;
        MassFunction::from_focal(&frame, focal).map_err(|e| JsonError::decode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame3() -> Frame {
        Frame::new(vec!["car", "pedestrian", "unknown"]).unwrap()
    }

    #[test]
    fn frame_validation() {
        assert!(Frame::new::<&str>(vec![]).is_err());
        assert!(Frame::new(vec!["a", "a"]).is_err());
        let f = frame3();
        assert_eq!(f.theta(), 0b111);
        assert_eq!(f.singleton("car").unwrap(), 0b001);
        assert_eq!(f.subset(&["car", "unknown"]).unwrap(), 0b101);
        assert!(f.singleton("bike").is_err());
        assert_eq!(f.format_subset(0b011), "{car, pedestrian}");
    }

    #[test]
    fn mass_validation() {
        let f = frame3();
        assert!(MassFunction::from_focal(&f, vec![(0b001, 0.5)]).is_err()); // sums to 0.5
        assert!(MassFunction::from_focal(&f, vec![(0, 1.0)]).is_err()); // empty set
        assert!(MassFunction::from_focal(&f, vec![(0b1000, 1.0)]).is_err()); // outside frame
        assert!(MassFunction::from_focal(&f, vec![(0b001, -0.5), (0b010, 1.5)]).is_err());
        assert!(MassFunction::bayesian(&f, &[0.5, 0.5]).is_err());
    }

    #[test]
    fn belief_plausibility_sandwich() {
        // Bel(A) <= BetP(A) <= Pl(A) for every subset.
        let f = frame3();
        let m = MassFunction::from_focal(
            &f,
            vec![(0b001, 0.5), (0b011, 0.2), (0b111, 0.3)],
        )
        .unwrap();
        let bet = m.pignistic();
        for set in 1u64..8 {
            let bel = m.belief(set);
            let pl = m.plausibility(set);
            let betp: f64 = (0..3).filter(|i| set & (1 << i) != 0).map(|i| bet[i]).sum();
            assert!(bel <= betp + 1e-12 && betp <= pl + 1e-12, "set {set}: {bel} {betp} {pl}");
        }
        // Duality: Pl(A) = 1 - Bel(¬A).
        for set in 1u64..8 {
            let compl = !set & f.theta();
            assert!((m.plausibility(set) - (1.0 - m.belief(compl))).abs() < 1e-12);
        }
    }

    #[test]
    fn bayesian_mass_has_equal_bel_and_pl() {
        let f = frame3();
        let m = MassFunction::bayesian(&f, &[0.6, 0.3, 0.1]).unwrap();
        for set in 1u64..8 {
            assert!((m.belief(set) - m.plausibility(set)).abs() < 1e-12);
        }
        assert_eq!(m.nonspecificity_mass(), 0.0);
    }

    #[test]
    fn vacuous_mass_is_total_ignorance() {
        let f = frame3();
        let m = MassFunction::vacuous(&f);
        let car = f.singleton("car").unwrap();
        assert_eq!(m.belief(car), 0.0);
        assert_eq!(m.plausibility(car), 1.0);
        assert_eq!(m.interval(car).width(), 1.0);
        let p = m.pignistic();
        assert!((p[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dempster_combination_zadeh_example() {
        // Zadeh's classic: two experts, strong conflict.
        let f = Frame::new(vec!["a", "b", "c"]).unwrap();
        let m1 = MassFunction::from_focal(&f, vec![(0b001, 0.99), (0b010, 0.01)]).unwrap();
        let m2 = MassFunction::from_focal(&f, vec![(0b100, 0.99), (0b010, 0.01)]).unwrap();
        let k = m1.conflict(&m2).unwrap();
        assert!((k - 0.9999).abs() < 1e-12);
        let dempster = m1.combine_dempster(&m2).unwrap();
        // The infamous result: all mass on the barely supported "b".
        assert!((dempster.mass(0b010) - 1.0).abs() < 1e-12);
        // Yager is cautious: conflict goes to ignorance.
        let yager = m1.combine_yager(&m2).unwrap();
        assert!((yager.mass(f.theta()) - 0.9999).abs() < 1e-12);
    }

    #[test]
    fn dempster_is_commutative() {
        let f = frame3();
        let m1 = MassFunction::from_focal(&f, vec![(0b001, 0.6), (0b111, 0.4)]).unwrap();
        let m2 = MassFunction::from_focal(&f, vec![(0b011, 0.5), (0b111, 0.5)]).unwrap();
        let a = m1.combine_dempster(&m2).unwrap();
        let b = m2.combine_dempster(&m1).unwrap();
        for set in 1u64..8 {
            assert!((a.mass(set) - b.mass(set)).abs() < 1e-12);
        }
    }

    #[test]
    fn vacuous_is_neutral_element_for_dempster() {
        let f = frame3();
        let m = MassFunction::from_focal(&f, vec![(0b001, 0.7), (0b011, 0.3)]).unwrap();
        let combined = m.combine_dempster(&MassFunction::vacuous(&f)).unwrap();
        for set in 1u64..8 {
            assert!((combined.mass(set) - m.mass(set)).abs() < 1e-12);
        }
    }

    #[test]
    fn total_conflict_is_an_error() {
        let f = frame3();
        let m1 = MassFunction::from_focal(&f, vec![(0b001, 1.0)]).unwrap();
        let m2 = MassFunction::from_focal(&f, vec![(0b010, 1.0)]).unwrap();
        assert!(matches!(m1.combine_dempster(&m2), Err(EvidenceError::TotalConflict)));
        // Yager handles it: everything becomes ignorance.
        let y = m1.combine_yager(&m2).unwrap();
        assert!((y.mass(f.theta()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn discounting_moves_mass_to_ignorance() {
        let f = frame3();
        let m = MassFunction::bayesian(&f, &[0.8, 0.2, 0.0]).unwrap();
        let d = m.discount(0.9).unwrap();
        assert!((d.mass(0b001) - 0.72).abs() < 1e-12);
        assert!((d.mass(f.theta()) - 0.1).abs() < 1e-12);
        // Discounting widens Bel-Pl intervals (more epistemic uncertainty).
        let car = f.singleton("car").unwrap();
        assert!(d.interval(car).width() > m.interval(car).width());
        assert!(m.discount(1.5).is_err());
    }

    #[test]
    fn combination_reduces_ignorance() {
        // Two independent sources pointing at "car" sharpen belief.
        let f = frame3();
        let weak = MassFunction::from_focal(&f, vec![(0b001, 0.5), (0b111, 0.5)]).unwrap();
        let combined = weak.combine_dempster(&weak).unwrap();
        let car = f.singleton("car").unwrap();
        assert!(combined.belief(car) > weak.belief(car));
        assert!(combined.interval(car).width() < weak.interval(car).width());
    }
}
