/root/repo/target/debug/deps/tidy_gate-258507ef8c5ddb74.d: tests/tidy_gate.rs

/root/repo/target/debug/deps/tidy_gate-258507ef8c5ddb74: tests/tidy_gate.rs

tests/tidy_gate.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo
