//! The fleet crate's error type.

use std::fmt;

/// Everything that can go wrong starting or running a fleet.
#[derive(Debug)]
pub enum FleetError {
    /// A shard process could not be launched or did not hand shake.
    Spawn(String),
    /// The front listener could not bind or accept.
    Io(String),
    /// The fleet was asked to start with an unusable configuration.
    Config(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Spawn(msg) => write!(f, "shard spawn failed: {msg}"),
            FleetError::Io(msg) => write!(f, "fleet i/o error: {msg}"),
            FleetError::Config(msg) => write!(f, "fleet configuration error: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e.to_string())
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, FleetError>;
