//! Rule `lock-order-cycle`: the workspace-wide lock-acquisition order
//! must be acyclic.
//!
//! Two threads that take the same pair of locks in opposite orders can
//! each hold one and block forever on the other — the classic deadlock
//! the serve worker pool, response cache, and metrics registry could
//! construct between them. This rule extracts, per function, the
//! ordered pairs "lock *a* is still held when lock *b* is acquired"
//! using the same CFG liveness dataflow as `lock-hygiene` (so a guard
//! released on every path to the second acquisition produces no
//! pair), propagates acquisition sets through the crate's resolved
//! call edges (holding *a* across a call into a function that may
//! take *b* also orders *a* before *b*), and flags every strongly
//! connected component of the resulting lock-order graph.
//!
//! Lock identity is the last field or binding name at the acquisition
//! site (`self.queue.lock()` and `lock(&pool.queue)` both identify
//! `queue`), which makes the analysis heuristic but deterministic:
//! identically named locks unify across functions. Closure bodies are
//! outside the enclosing function's CFG, so acquisitions inside them
//! are charged to nobody (a spawned closure runs on its own schedule,
//! where this function's guards are not held). Re-acquiring a lock
//! while it is already held is reported too (a one-lock cycle): with
//! `std::sync::Mutex` that deadlocks a single thread on its own.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::PathBuf;

use crate::calls::{crate_of, CrateIndex, FnRef};
use crate::cfg;
use crate::lexer::TokenKind;
use crate::rules::lock_hygiene::{guard_facts, is_guard_acquisition, live_facts_at};
use crate::symbols::Workspace;
use crate::{SourceFile, Violation, WorkspaceLint};

/// See the module docs.
pub struct LockOrderCycle;

impl WorkspaceLint for LockOrderCycle {
    fn name(&self) -> &'static str {
        "lock-order-cycle"
    }

    fn explain(&self) -> &'static str {
        "Every pair of locks must be acquired in one global order. Two \
         threads taking the same two locks in opposite orders can each \
         hold one and block forever on the other. The rule derives \
         per-function orderings (lock `a` still held — by CFG liveness — \
         when lock `b` is acquired), propagates lock-acquisition sets \
         through resolved call edges within each crate, and reports every \
         cycle in the combined lock-order graph, including the one-lock \
         cycle of re-acquiring a non-reentrant mutex that is already \
         held. Lock identity is the field or binding name at the \
         acquisition site, so identically named locks unify across \
         functions. Break a cycle by acquiring the locks in one agreed \
         order everywhere, or by narrowing a guard's scope so it is \
         released before the second acquisition."
    }

    fn check(&self, ws: &Workspace<'_>, out: &mut Vec<Violation>) {
        let mut crates: Vec<&str> = ws.files.iter().filter_map(crate_of).collect();
        crates.sort_unstable();
        crates.dedup();
        for name in crates {
            check_crate(ws, name, out);
        }
    }
}

/// One directed ordering edge `from-lock → to-lock`, with the first
/// site that witnessed it.
struct Edge {
    file: PathBuf,
    line: usize,
}

fn check_crate(ws: &Workspace<'_>, crate_name: &str, out: &mut Vec<Violation>) {
    let idx = CrateIndex::build(ws, crate_name);
    let fns = idx.all_fns();
    // Per function: the locks it may directly acquire, its resolved
    // call edges, and the direct ordering edges its body witnesses.
    let mut direct: HashMap<FnRef, BTreeSet<String>> = HashMap::new();
    let mut callees: HashMap<FnRef, Vec<(usize, FnRef)>> = HashMap::new();
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    // Held-lock sets at call sites, resolved against the callee's
    // transitive acquisitions after the fixpoint below.
    let mut held_at_calls: Vec<(FnRef, usize, Vec<String>)> = Vec::new();

    for &fref in &fns {
        let info = idx.fn_info(fref);
        let Some(body) = info.body else { continue };
        let file = &ws.files[fref.file];
        if file.in_test_block(info.line) {
            continue;
        }
        let graph = cfg::build(file, body);
        // Acquisition sites inside the function's own CFG (closure
        // bodies are excised, so their acquisitions do not count).
        let acq_sites: Vec<usize> = (body.0 + 1..body.1.min(file.tokens().len()))
            .filter(|&k| is_guard_acquisition(file, k))
            .filter(|&k| graph.block_of(k).is_some())
            .filter(|&k| !file.in_test_block(file.tokens()[k].line))
            .collect();
        let ids: Vec<Option<String>> =
            acq_sites.iter().map(|&k| lock_identity(file, k)).collect();
        direct.insert(
            fref,
            acq_sites
                .iter()
                .zip(&ids)
                .filter_map(|(_, id)| id.clone())
                .collect::<BTreeSet<_>>(),
        );
        let calls: Vec<(usize, FnRef)> = idx
            .resolve_calls(ws, fref)
            .into_iter()
            .filter(|c| graph.block_of(c.site).is_some())
            .map(|c| (c.site, c.callee))
            .collect();

        let facts = guard_facts(file, body);
        if !facts.is_empty() {
            let mut sites: Vec<usize> = acq_sites.clone();
            sites.extend(calls.iter().map(|&(s, _)| s));
            let live = live_facts_at(file, &graph, &facts, &sites);
            // Direct ordering edges: fact A live at the acquisition of B.
            for (&site, id) in acq_sites.iter().zip(&ids) {
                let Some(to) = id else { continue };
                for &fi in live.get(&site).map(Vec::as_slice).unwrap_or(&[]) {
                    let Some(from) = lock_identity(file, facts[fi].acq) else { continue };
                    edges.entry((from, to.clone())).or_insert_with(|| Edge {
                        file: file.path.clone(),
                        line: file.tokens()[site].line,
                    });
                }
            }
            // Held sets at call sites, for the propagation pass.
            for &(site, _callee) in &calls {
                let held: Vec<String> = live
                    .get(&site)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    .iter()
                    .filter_map(|&fi| lock_identity(file, facts[fi].acq))
                    .collect();
                if !held.is_empty() {
                    held_at_calls.push((fref, site, held));
                }
            }
        }
        callees.insert(fref, calls);
    }

    // Transitive acquisition sets to fixpoint over the call graph.
    let mut acquires: HashMap<FnRef, BTreeSet<String>> = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for &fref in &fns {
            let mut merged: BTreeSet<String> = match acquires.get(&fref) {
                Some(s) => s.clone(),
                None => BTreeSet::new(),
            };
            let before = merged.len();
            for &(_, callee) in callees.get(&fref).map(Vec::as_slice).unwrap_or(&[]) {
                if let Some(cs) = acquires.get(&callee) {
                    merged.extend(cs.iter().cloned());
                }
            }
            if merged.len() != before {
                acquires.insert(fref, merged);
                changed = true;
            }
        }
    }

    // Call-propagated edges: lock held across a call orders it before
    // everything the callee may acquire.
    for (fref, site, held) in &held_at_calls {
        let file = &ws.files[fref.file];
        let line = file.tokens()[*site].line;
        let mut targets: BTreeSet<String> = BTreeSet::new();
        for &(s, callee) in callees.get(fref).map(Vec::as_slice).unwrap_or(&[]) {
            if s == *site {
                if let Some(a) = acquires.get(&callee) {
                    targets.extend(a.iter().cloned());
                }
            }
        }
        for from in held {
            for to in &targets {
                edges
                    .entry((from.clone(), to.clone()))
                    .or_insert_with(|| Edge { file: file.path.clone(), line });
            }
        }
    }

    report_cycles(crate_name, &edges, out);
}

/// The lock identity at an acquisition ident: the last field/binding
/// name of the receiver for `recv.lock()`-style methods, or the last
/// ident of the arguments for `lock(&x.y)`-style helper calls.
fn lock_identity(file: &SourceFile, acq: usize) -> Option<String> {
    let tokens = file.tokens();
    let prev = tokens[..acq].iter().rposition(|t| !t.is_comment());
    let is_method = prev
        .map(|p| tokens[p].kind == TokenKind::Punct && file.text(&tokens[p]) == ".")
        .unwrap_or(false);
    if is_method {
        // `a.b.lock()` → `b`; call-result receivers are anonymous.
        let recv = tokens[..prev?].iter().rposition(|t| !t.is_comment())?;
        let t = &tokens[recv];
        (t.kind == TokenKind::Ident).then(|| file.text(t).to_string())
    } else {
        // `lock(&self.queue)` → `queue`: last ident inside the parens.
        let open = (acq + 1..tokens.len()).find(|&k| !tokens[k].is_comment())?;
        if !(tokens[open].kind == TokenKind::Punct && file.text(&tokens[open]) == "(") {
            return None;
        }
        let mut depth = 0i64;
        let mut last = None;
        for k in open..tokens.len() {
            let t = &tokens[k];
            if t.kind == TokenKind::Punct {
                match file.text(t) {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            if t.kind == TokenKind::Ident {
                last = Some(file.text(t).to_string());
            }
        }
        last
    }
}

/// Finds strongly connected components of the lock-order graph and
/// reports one violation per cyclic SCC, anchored at its
/// lexicographically smallest lock.
fn report_cycles(
    crate_name: &str,
    edges: &BTreeMap<(String, String), Edge>,
    out: &mut Vec<Violation>,
) {
    let mut nodes: Vec<&str> = Vec::new();
    for (a, b) in edges.keys() {
        nodes.push(a);
        nodes.push(b);
    }
    nodes.sort_unstable();
    nodes.dedup();
    let id: HashMap<&str, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (a, b) in edges.keys() {
        adj[id[a.as_str()]].push(id[b.as_str()]);
    }
    for scc in tarjan(&adj) {
        let cyclic = scc.len() > 1
            || scc.first().map(|&n| adj[n].contains(&n)).unwrap_or(false);
        if !cyclic {
            continue;
        }
        let mut names: Vec<&str> = scc.iter().map(|&n| nodes[n]).collect();
        names.sort_unstable();
        let anchor = names[0];
        // Witness: the recorded edge leaving the anchor inside the SCC
        // with the smallest target (BTreeMap order makes this stable).
        let witness = edges
            .iter()
            .find(|((a, b), _)| a == anchor && names.contains(&b.as_str()));
        let Some(((_, to), site)) = witness else { continue };
        out.push(Violation {
            file: site.file.clone(),
            line: site.line,
            rule: "lock-order-cycle",
            resolution: "cfg",
            message: format!(
                "locks {{{}}} in crate `{crate_name}` form an acquisition-order \
                 cycle (here `{anchor}` is held while `{to}` is acquired); two \
                 threads interleaving these orders deadlock — acquire them in \
                 one agreed order everywhere",
                names.join(", ")
            ),
        });
    }
}

/// Iterative Tarjan SCC over an adjacency list; returns components in
/// a deterministic order.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut counter = 0usize;
    // Explicit DFS stack: (node, next child position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        loop {
            let Some(&(v, ci)) = work.last() else { break };
            if ci == 0 {
                index[v] = counter;
                low[v] = counter;
                counter += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            match adj[v].get(ci) {
                Some(&w) => {
                    if let Some(top) = work.last_mut() {
                        top.1 += 1;
                    }
                    if index[w] == usize::MAX {
                        work.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                }
                None => {
                    // All children done: close v.
                    work.pop();
                    if let Some(&(p, _)) = work.last() {
                        low[p] = low[p].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort_unstable();
                        sccs.push(scc);
                    }
                }
            }
        }
    }
    sccs.sort();
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn run(srcs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::new(*p, *s, FileKind::RustLibrary))
            .collect();
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        LockOrderCycle.check(&ws, &mut out);
        out
    }

    #[test]
    fn opposite_orders_in_two_fns_form_a_cycle() {
        let src = "\
pub fn ab(a: &Mutex<T>, b: &Mutex<T>) {
    let ga = lock(a);
    let gb = lock(b);
    use_both(&ga, &gb);
}
pub fn ba(a: &Mutex<T>, b: &Mutex<T>) {
    let gb = lock(b);
    let ga = lock(a);
    use_both(&ga, &gb);
}
";
        let out = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("a, b"), "{}", out[0].message);
        assert_eq!(out[0].resolution, "cfg");
    }

    #[test]
    fn consistent_order_everywhere_passes() {
        let src = "\
pub fn one(a: &Mutex<T>, b: &Mutex<T>) {
    let ga = lock(a);
    let gb = lock(b);
    use_both(&ga, &gb);
}
pub fn two(a: &Mutex<T>, b: &Mutex<T>) {
    let ga = lock(a);
    let gb = lock(b);
    use_both(&ga, &gb);
}
";
        assert!(run(&[("crates/x/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn guard_released_before_second_acquisition_produces_no_edge() {
        let src = "\
pub fn ab(a: &Mutex<T>, b: &Mutex<T>) {
    let ga = lock(a);
    consume(ga);
    let gb = lock(b);
    touch(&gb);
}
pub fn ba(a: &Mutex<T>, b: &Mutex<T>) {
    let gb = lock(b);
    consume(gb);
    let ga = lock(a);
    touch(&ga);
}
";
        assert!(
            run(&[("crates/x/src/lib.rs", src)]).is_empty(),
            "released guards order nothing"
        );
    }

    #[test]
    fn cycle_through_a_call_edge_is_found() {
        // `outer` holds `a` across a call into `inner`, which takes
        // `b`; `other` orders `b` before `a` directly.
        let src = "\
pub fn outer(a: &Mutex<T>, b: &Mutex<T>) {
    let ga = lock(a);
    inner(b);
    touch(&ga);
}
fn inner(b: &Mutex<T>) {
    let gb = lock(b);
    touch(&gb);
}
pub fn other(a: &Mutex<T>, b: &Mutex<T>) {
    let gb = lock(b);
    let ga = lock(a);
    use_both(&ga, &gb);
}
";
        let out = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn reacquiring_a_held_lock_is_a_one_lock_cycle() {
        let src = "\
pub fn twice(m: &Mutex<T>) {
    let g1 = lock(m);
    let g2 = lock(m);
    use_both(&g1, &g2);
}
";
        let out = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`m`") || out[0].message.contains("{m}"));
    }

    #[test]
    fn field_identities_unify_across_methods() {
        let src = "\
pub struct S { queue: Mutex<Q>, stats: Mutex<St> }
impl S {
    pub fn fwd(&self) {
        let q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        use_both(&q, &s);
    }
    pub fn rev(&self) {
        let s = self.stats.lock().unwrap_or_else(|e| e.into_inner());
        let q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        use_both(&q, &s);
    }
}
";
        let out = run(&[("crates/x/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("queue, stats"), "{}", out[0].message);
    }
}
