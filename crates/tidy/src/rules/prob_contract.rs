//! Rule `prob-contract`: a public library function whose name says it
//! deals in probability-like quantities (`prob`, `probability`,
//! `belief`, `plausibility`, `mass`, `cdf`) must state its range
//! contract — either a `debug_assert!` range check in the body or a
//! `/// Range:` line in its doc comment.
//!
//! A probability that silently leaves `[0, 1]` is a wrong *model*
//! masquerading as data; forcing the contract to be written down turns
//! that latent epistemic uncertainty into a checked (or at least
//! documented) invariant at the API boundary.

use crate::{test_block_lines, FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct ProbContract;

/// Name fragments that mark a function as probability-valued.
const KEYWORDS: &[&str] = &["prob", "belief", "plausibility", "mass", "cdf"];

/// Extracts the function name from a `pub fn` line, if any.
fn pub_fn_name(line: &str) -> Option<&str> {
    let t = line.trim_start();
    let rest = t.strip_prefix("pub fn ").or_else(|| t.strip_prefix("pub const fn "))?;
    let end = rest.find(|c: char| c == '(' || c == '<' || c.is_whitespace())?;
    Some(&rest[..end])
}

/// True when the contiguous doc/attribute block above `idx` (0-based)
/// contains a `Range:` doc line.
fn doc_block_has_range(lines: &[&str], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        let above = lines[i - 1].trim_start();
        if above.starts_with("///") || above.starts_with("#[") {
            if above.starts_with("///") && above.contains("Range:") {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

/// True when the function body starting at `idx` contains a
/// `debug_assert`. The body is delimited by brace matching from the
/// first `{` at or after the signature line.
fn body_has_debug_assert(lines: &[&str], idx: usize) -> bool {
    let mut depth: i64 = 0;
    let mut opened = false;
    for line in lines.iter().skip(idx) {
        if opened && line.contains("debug_assert") {
            return true;
        }
        for c in line.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if !opened && line.trim_end().ends_with(';') {
            return false; // declaration without body (trait signature)
        }
        if opened {
            if depth <= 0 {
                // Single-line bodies are scanned here before returning.
                return line.contains("debug_assert");
            }
            if line.contains("debug_assert") {
                return true;
            }
        }
    }
    false
}

impl Lint for ProbContract {
    fn name(&self) -> &'static str {
        "prob-contract"
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let in_test = test_block_lines(&file.content);
        let lines: Vec<&str> = file.content.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            let Some(name) = pub_fn_name(line) else { continue };
            let lower = name.to_lowercase();
            if !KEYWORDS.iter().any(|k| lower.contains(k)) {
                continue;
            }
            if doc_block_has_range(&lines, i) || body_has_debug_assert(&lines, i) {
                continue;
            }
            out.push(Violation {
                file: file.path.clone(),
                line: i + 1,
                rule: self.name(),
                message: format!(
                    "probability-valued `pub fn {name}` states no range contract; \
                     add a `debug_assert!` range check or a `/// Range:` doc line"
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/lib.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        ProbContract.check(&file, &mut out);
        out
    }

    #[test]
    fn undocumented_probability_fn_fires() {
        let bad = "\
pub fn failure_probability(&self) -> f64 {
    self.p
}
";
        let out = run(bad);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 1);
        assert!(out[0].message.contains("failure_probability"));
    }

    #[test]
    fn debug_assert_in_body_satisfies_the_contract() {
        let good = "\
pub fn belief(&self, set: u64) -> f64 {
    let b = self.sum(set);
    debug_assert!((0.0..=1.0).contains(&b));
    b
}
";
        assert!(run(good).is_empty());
    }

    #[test]
    fn range_doc_line_satisfies_the_contract() {
        let good = "\
/// Cumulative distribution at `x`.
///
/// Range: `[0, 1]`, monotone in `x`.
pub fn cdf(&self, x: f64) -> f64 {
    self.raw(x)
}
";
        assert!(run(good).is_empty());
    }

    #[test]
    fn unrelated_and_private_fns_are_ignored() {
        let src = "\
pub fn mean(&self) -> f64 { self.m }
fn mass_private(&self) -> f64 { self.m }
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn single_line_body_with_debug_assert_passes() {
        let good = "pub fn prob(&self) -> f64 { debug_assert!(self.p <= 1.0); self.p }\n";
        assert!(run(good).is_empty());
    }
}
