/root/repo/target/debug/deps/exp_ontological-ee8f48e8a1790cb1.d: crates/bench/src/bin/exp_ontological.rs

/root/repo/target/debug/deps/exp_ontological-ee8f48e8a1790cb1: crates/bench/src/bin/exp_ontological.rs

crates/bench/src/bin/exp_ontological.rs:
