/root/repo/target/debug/deps/sysunc_orbital-89707fe44879a78a.d: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

/root/repo/target/debug/deps/libsysunc_orbital-89707fe44879a78a.rlib: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

/root/repo/target/debug/deps/libsysunc_orbital-89707fe44879a78a.rmeta: crates/orbital/src/lib.rs crates/orbital/src/error.rs crates/orbital/src/integrator.rs crates/orbital/src/kepler.rs crates/orbital/src/observe.rs crates/orbital/src/system.rs crates/orbital/src/vec2.rs

crates/orbital/src/lib.rs:
crates/orbital/src/error.rs:
crates/orbital/src/integrator.rs:
crates/orbital/src/kepler.rs:
crates/orbital/src/observe.rs:
crates/orbital/src/system.rs:
crates/orbital/src/vec2.rs:
