//! `sysunc-serve`: a zero-dependency HTTP/1.1 server exposing the
//! sysunc Propagator engine layer as a JSON API.
//!
//! Gansch & Adee treat uncertainty coping as an *operational*
//! activity: removal, tolerance and forecasting happen while the
//! system runs, not only on the drawing board. This crate makes the
//! engine layer operational — a running service other systems query
//! over a machine-readable wire protocol (`sysunc::wire`), in the
//! spirit of the SysML-v2 line of work where an uncertainty analysis
//! request is data.
//!
//! Everything is `std`: `TcpListener` + a fixed worker pool on
//! `std::thread` with a bounded queue (backpressure → `503` +
//! `Retry-After`), an accept-side connection cap (`503` before a
//! request is even read), per-request deadlines (`408`), keep-alive,
//! atomic metrics behind `GET /metrics`, and graceful drain on
//! shutdown. The request path is **content-addressed**: every
//! propagate body reduces to its `sysunc::CanonicalRequest`, a
//! sharded LRU cache serves repeated requests bit-identically
//! (`X-Sysunc-Cache: hit`), and `POST /v1/propagate/batch` runs many
//! jobs per request with intra-batch dedup through `core::run_batch`.
//! See `PROTOCOL.md` for the full route and schema reference.
//!
//! ```no_run
//! use sysunc_serve::{Server, ServerConfig, HttpClient};
//! use sysunc::{ModelRegistry, WireRequest, UncertainInput};
//!
//! let server = Server::start(ServerConfig::default(), ModelRegistry::standard()?)?;
//! let mut client = HttpClient::connect(server.addr())?;
//! let report = client.propagate(&WireRequest::new(
//!     "monte-carlo",
//!     "sum",
//!     vec![UncertainInput::Normal { mu: 0.0, sigma: 1.0 }],
//! ))?;
//! assert_eq!(report.engine, "monte-carlo");
//! server.shutdown();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod client;
pub mod error;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod router;
pub mod server;
pub mod shutdown;

/// Content-addressed LRU cache of rendered responses.
pub use cache::ResponseCache;
pub use client::{BatchOutcome, HttpClient, RetryPolicy};
pub use error::{Result, ServeError};
pub use http::{Limits, Request, Response};
pub use metrics::ServerMetrics;
/// Accept-side connection cap (`503` beyond it) and its RAII permit.
pub use pool::{ConnectionLimiter, ConnectionPermit};
pub use pool::WorkerPool;
pub use router::{CancelModel, CancelToken, Route};
pub use server::{Server, ServerConfig, ServerHandle};
pub use shutdown::ShutdownSignal;
