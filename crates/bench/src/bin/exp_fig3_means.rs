//! E5 — Fig. 3: the types × means effectiveness matrix, measured.
//!
//! A closed-loop fleet simulation quantifies, for each of the paper's four
//! means, how much it reduces three per-kind risk components relative to
//! a baseline single-camera system in the open-context world:
//!
//! - **aleatory risk**: rate of hazardous misclassification of *known*
//!   objects (pedestrian perceived as car) — inherent to the chosen
//!   perception model;
//! - **epistemic risk**: remaining 95% credible width on that hazard rate
//!   given the available observation budget — what we do not yet know
//!   about the system's own performance;
//! - **ontological risk**: rate of *novel* objects confidently accepted
//!   as a known class — the unknown-unknown getting through.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::perception::{
    ClassifierModel, FieldCampaign, FusedVerdict, FusionSystem, ReleaseForecast, Truth,
    WorldModel,
};
use sysunc::prob::dist::Beta;
use sysunc_bench::{header, section};

struct RiskProfile {
    aleatory: f64,
    epistemic: f64,
    ontological: f64,
}

/// A perception configuration under test.
enum System {
    SingleCamera(ClassifierModel),
    AgreementFusion(FusionSystem),
}

impl System {
    /// Returns (hazard on this known-pedestrian encounter, accepted as
    /// known on this novel encounter) indicator outcomes.
    fn hazard_on(&self, truth: Truth, rng: &mut StdRng) -> (bool, bool) {
        match self {
            System::SingleCamera(c) => {
                let label = c.classify(truth, rng).label;
                let ped_as_car = truth == Truth::Known(1) && label == 0;
                let novel_accepted = truth.is_novel() && label < c.known_len();
                (ped_as_car, novel_accepted)
            }
            System::AgreementFusion(f) => {
                let labels = f.observe(truth, rng);
                let verdict = f.fuse_vote(&labels).expect("label count matches");
                let ped_as_car = truth == Truth::Known(1) && verdict == FusedVerdict::Known(0);
                let novel_accepted =
                    truth.is_novel() && matches!(verdict, FusedVerdict::Known(_));
                (ped_as_car, novel_accepted)
            }
        }
    }
}

fn measure(
    world: &WorldModel,
    system: &System,
    observation_budget: usize,
    forecast_gate: bool,
    seed: u64,
) -> RiskProfile {
    let mut rng = StdRng::seed_from_u64(seed);
    let trials = 300_000;
    let mut ped_encounters = 0u64;
    let mut ped_hazards = 0u64;
    let mut novel_encounters = 0u64;
    let mut novel_accepted = 0u64;
    for _ in 0..trials {
        let truth = world.sample(&mut rng);
        let (hazard, accepted) = system.hazard_on(truth, &mut rng);
        if truth == Truth::Known(1) {
            ped_encounters += 1;
            if hazard {
                ped_hazards += 1;
            }
        }
        if truth.is_novel() {
            novel_encounters += 1;
            if accepted {
                novel_accepted += 1;
            }
        }
    }
    let aleatory = ped_hazards as f64 / ped_encounters.max(1) as f64;
    // Epistemic: credible width on the hazard rate from the observation
    // budget (the fleet can only label so much data).
    let observed_hazards = (aleatory * observation_budget as f64).round() as u64;
    let posterior = Beta::new(1.0, 1.0)
        .expect("valid")
        .updated(observed_hazards, observation_budget as u64 - observed_hazards);
    let epistemic = posterior.credible_width(0.95);
    // Ontological: per-encounter rate of accepted unknowns; with a
    // forecast gate, release is withheld until the Good–Turing residual
    // rate clears a target, which caps the exposure-weighted risk.
    let mut ontological =
        world.novel_mass() * novel_accepted as f64 / novel_encounters.max(1) as f64;
    if forecast_gate {
        let mut campaign = FieldCampaign::new(2);
        campaign.observe_world(world, observation_budget, &mut rng);
        let residual = ReleaseForecast::from_campaign(&campaign).residual_novelty_rate;
        // The gate limits the *unvetted* novelty stream to the residual.
        ontological = ontological.min(residual);
    }
    RiskProfile { aleatory, epistemic, ontological }
}

fn fusion_system() -> FusionSystem {
    let camera = ClassifierModel::paper_camera().expect("builds");
    let radar = ClassifierModel::new(
        vec!["car".into(), "pedestrian".into()],
        vec![vec![0.95, 0.0, 0.05], vec![0.0, 0.8, 0.2]],
        vec![0.05, 0.05, 0.9],
    )
    .expect("builds");
    FusionSystem::new(vec![camera, radar], vec![0.6, 0.3, 0.1], vec![0.9, 0.9]).expect("builds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E5", "Fig. 3 — measured types x means effectiveness matrix");
    let world = WorldModel::paper_example()?;
    let camera = ClassifierModel::paper_camera()?;

    let baseline = measure(&world, &System::SingleCamera(camera.clone()), 2_000, false, 1);
    section("baseline: single camera, open context, 2k labeled observations");
    println!(
        "  aleatory {:.5}   epistemic {:.5}   ontological {:.5}",
        baseline.aleatory, baseline.epistemic, baseline.ontological
    );

    // The four means.
    let restricted = WorldModel::new(
        vec!["car".into(), "pedestrian".into()],
        vec![0.653, 0.327],
        0.02,
        1_000,
        1.1,
    )?;
    let configs: Vec<(&str, WorldModel, System, usize, bool)> = vec![
        (
            "prevention: ODD restriction",
            restricted,
            System::SingleCamera(camera.clone()),
            2_000,
            false,
        ),
        (
            "removal: field obs (100k labels)",
            world.clone(),
            System::SingleCamera(camera.clone()),
            100_000,
            false,
        ),
        (
            "tolerance: diverse fusion",
            world.clone(),
            System::AgreementFusion(fusion_system()),
            2_000,
            false,
        ),
        (
            "forecasting: release gate",
            world.clone(),
            System::SingleCamera(camera.clone()),
            2_000,
            true,
        ),
    ];

    section("reduction factor vs baseline (higher = more effective)");
    println!(
        "  {:<36} {:>10} {:>10} {:>12}",
        "means", "aleatory", "epistemic", "ontological"
    );
    for (name, w, sys, budget, gate) in configs {
        let r = measure(&w, &sys, budget, gate, 2);
        let f = |base: f64, now: f64| {
            if now <= 0.0 {
                f64::INFINITY
            } else {
                base / now
            }
        };
        println!(
            "  {:<36} {:>9.1}x {:>9.1}x {:>11.1}x",
            name,
            f(baseline.aleatory, r.aleatory),
            f(baseline.epistemic, r.epistemic),
            f(baseline.ontological, r.ontological)
        );
    }
    println!("\n  Expected shape (paper Sec. IV): prevention and removal-in-use are");
    println!("  the strong levers against ontological uncertainty; tolerance is");
    println!("  strong against aleatory/epistemic but weaker against ontological;");
    println!("  removal by observation is the epistemic lever; forecasting mainly");
    println!("  bounds the ontological exposure at release.");
    Ok(())
}
