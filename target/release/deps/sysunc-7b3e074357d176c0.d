/root/repo/target/release/deps/sysunc-7b3e074357d176c0.d: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

/root/repo/target/release/deps/libsysunc-7b3e074357d176c0.rlib: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

/root/repo/target/release/deps/libsysunc-7b3e074357d176c0.rmeta: crates/core/src/lib.rs crates/core/src/budget.rs crates/core/src/casestudy.rs crates/core/src/error.rs crates/core/src/modeling.rs crates/core/src/register.rs crates/core/src/taxonomy.rs

crates/core/src/lib.rs:
crates/core/src/budget.rs:
crates/core/src/casestudy.rs:
crates/core/src/error.rs:
crates/core/src/modeling.rs:
crates/core/src/register.rs:
crates/core/src/taxonomy.rs:
