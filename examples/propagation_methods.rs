//! Uncertainty propagation method comparison (uncertainty removal by
//! design of experiment, paper Sec. IV): crude Monte Carlo vs Latin
//! hypercube vs Sobol' QMC vs polynomial chaos on the Ishigami function.
//!
//! Run with `cargo run --release --example propagation_methods`.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::pce::{ChaosExpansion, PceInput};
use sysunc::prob::dist::{Continuous, Uniform};
use sysunc::sampling::{
    propagate, Design, LatinHypercubeDesign, RandomDesign, SobolDesign,
};

/// Ishigami test function with the standard a = 7, b = 0.1.
fn ishigami(x: &[f64]) -> f64 {
    x[0].sin() + 7.0 * x[1].sin().powi(2) + 0.1 * x[2].powi(4) * x[0].sin()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pi = std::f64::consts::PI;
    // Analytic moments of Ishigami over U(-π, π)³.
    let mean_true = 3.5;
    let var_true = {
        let v1 = 0.5 * (1.0 + 0.1 * pi.powi(4) / 5.0).powi(2);
        let v2 = 49.0 / 8.0;
        let v13 = 0.01 * pi.powi(8) * (1.0 / 18.0 - 1.0 / 50.0);
        v1 + v2 + v13
    };
    println!("Ishigami: true mean {mean_true:.4}, true variance {var_true:.4}\n");

    println!("{:<16} {:>8} {:>12} {:>12}", "method", "evals", "mean err", "var err");
    let u = Uniform::new(-pi, pi)?;
    let inputs: Vec<&dyn Continuous> = vec![&u, &u, &u];
    let designs: Vec<(&str, Box<dyn Design>)> = vec![
        ("monte-carlo", Box::new(RandomDesign)),
        ("latin-hypercube", Box::new(LatinHypercubeDesign)),
        ("sobol-qmc", Box::new(SobolDesign::default())),
    ];
    for n in [256usize, 1_024, 4_096] {
        for (name, design) in &designs {
            let mut rng = StdRng::seed_from_u64(1);
            let res = propagate(&inputs, design.as_ref(), &ishigami, n, &mut rng)?;
            println!(
                "{:<16} {:>8} {:>12.5} {:>12.5}",
                name,
                n,
                (res.mean() - mean_true).abs(),
                (res.variance() - var_true).abs()
            );
        }
        println!();
    }

    // Polynomial chaos: spectral accuracy on the same budget scale.
    let pce_inputs = [PceInput::Uniform { a: -pi, b: pi }; 3];
    for degree in [4usize, 7, 10] {
        let pce = ChaosExpansion::fit_projection(&pce_inputs, degree, ishigami)?;
        println!(
            "{:<16} {:>8} {:>12.5} {:>12.5}   S1={:.3} S2={:.3} ST3={:.3}",
            format!("pce-degree-{degree}"),
            pce.evaluations(),
            (pce.mean() - mean_true).abs(),
            (pce.variance() - var_true).abs(),
            pce.sobol_first(0),
            pce.sobol_first(1),
            pce.sobol_total(2),
        );
    }
    Ok(())
}
