//! Binomial distribution.

use super::Discrete;
use crate::error::{ProbError, Result};
use crate::special::{ln_choose, reg_inc_beta};
use crate::rng::RngCore;

/// Binomial distribution: number of successes in `n` independent Bernoulli
/// trials with success probability `p`.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Binomial, Discrete};
/// let b = Binomial::new(10, 0.5)?;
/// assert!((b.pmf(5) - 0.24609375).abs() < 1e-12);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution with `n` trials and success
    /// probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if `p` is outside `[0, 1]`.
    pub fn new(n: u64, p: f64) -> Result<Self> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ProbError::InvalidParameter(format!(
                "Binomial requires p in [0,1], got {p}"
            )));
        }
        Ok(Self { n, p })
    }

    /// Number of trials.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Discrete for Binomial {
    fn pmf(&self, k: u64) -> f64 {
        self.ln_pmf(k).exp()
    }

    fn ln_pmf(&self, k: u64) -> f64 {
        if k > self.n {
            return f64::NEG_INFINITY;
        }
        if self.p == 0.0 { // tidy: allow(float-eq)
            return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
        }
        if self.p == 1.0 { // tidy: allow(float-eq)
            return if k == self.n { 0.0 } else { f64::NEG_INFINITY };
        }
        ln_choose(self.n, k) + k as f64 * self.p.ln() + (self.n - k) as f64 * (1.0 - self.p).ln()
    }

    fn cdf(&self, k: u64) -> f64 {
        if k >= self.n {
            1.0
        } else if self.p == 0.0 { // tidy: allow(float-eq)
            1.0
        } else if self.p == 1.0 { // tidy: allow(float-eq)
            0.0
        } else {
            // P(X <= k) = I_{1-p}(n - k, k + 1)
            reg_inc_beta((self.n - k) as f64, k as f64 + 1.0, 1.0 - self.p)
        }
    }

    fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "Binomial::quantile: p in [0,1], got {q}");
        // Sequential search from 0 is fine for the sizes we use; binary
        // search over the CDF for large n.
        if self.n > 256 {
            let (mut lo, mut hi) = (0u64, self.n);
            while lo < hi {
                let mid = (lo + hi) / 2;
                if self.cdf(mid) >= q {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            lo
        } else {
            let mut acc = 0.0;
            for k in 0..=self.n {
                acc += self.pmf(k);
                if acc >= q - 1e-15 {
                    return k;
                }
            }
            self.n
        }
    }

    fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    fn variance(&self) -> f64 {
        self.n as f64 * self.p * (1.0 - self.p)
    }

    fn sample(&self, rng: &mut dyn RngCore) -> u64 {
        use crate::rng::Rng as _;
        if self.n <= 64 {
            // Direct simulation of the trials.
            (0..self.n).filter(|_| rng.random::<f64>() < self.p).count() as u64
        } else {
            // Inversion by binary search over the CDF.
            self.quantile(rng.random::<f64>())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        let b = Binomial::new(20, 0.3).unwrap();
        let total: f64 = (0..=20).map(|k| b.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_matches_pmf_sum() {
        let b = Binomial::new(15, 0.45).unwrap();
        let mut acc = 0.0;
        for k in 0..=15u64 {
            acc += b.pmf(k);
            assert!((b.cdf(k) - acc).abs() < 1e-10, "k={k}");
        }
    }

    #[test]
    fn quantile_is_generalized_inverse() {
        let b = Binomial::new(30, 0.2).unwrap();
        for &q in &[0.01, 0.25, 0.5, 0.75, 0.99] {
            let k = b.quantile(q);
            assert!(b.cdf(k) >= q - 1e-12);
            if k > 0 {
                assert!(b.cdf(k - 1) < q + 1e-12);
            }
        }
    }

    #[test]
    fn large_n_binary_search_quantile_consistent() {
        let b = Binomial::new(1000, 0.5).unwrap();
        let k = b.quantile(0.5);
        assert!((499..=501).contains(&k), "median of Bin(1000,0.5) ~ 500, got {k}");
    }

    #[test]
    fn degenerate_p() {
        let b0 = Binomial::new(10, 0.0).unwrap();
        assert_eq!(b0.pmf(0), 1.0);
        let b1 = Binomial::new(10, 1.0).unwrap();
        assert_eq!(b1.pmf(10), 1.0);
    }

    #[test]
    fn sample_mean_matches() {
        let b = Binomial::new(100, 0.35).unwrap();
        let mut rng = testutil::rng(9);
        let n = 50_000;
        let mean: f64 = b.sample_n(&mut rng, n).iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        assert!((mean - 35.0).abs() < 0.2, "mean={mean}");
    }
}
