//! Numerical integrators for the N-body equations of motion — the
//! computational realization of the paper's deterministic model A
//! ("a set of differential equations" inferring "every future state").

use crate::system::NBodySystem;
use crate::vec2::Vec2;

/// An explicit one-step integrator for [`NBodySystem`] dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrator {
    /// Symplectic (semi-implicit) Euler: first order, long-term stable.
    SymplecticEuler,
    /// Velocity Verlet: second order, symplectic, the workhorse.
    VelocityVerlet,
    /// Classic Runge–Kutta 4: fourth order, not symplectic (energy drifts
    /// secularly) — useful as a high-accuracy short-horizon reference.
    Rk4,
}

impl Integrator {
    /// Advances the system by one step of size `dt`.
    pub fn step(&self, sys: &mut NBodySystem, dt: f64) {
        match self {
            Integrator::SymplecticEuler => {
                let acc = sys.accelerations();
                for (b, a) in sys.bodies.iter_mut().zip(&acc) {
                    b.velocity += *a * dt;
                }
                for b in sys.bodies.iter_mut() {
                    let v = b.velocity;
                    b.position += v * dt;
                }
                sys.time += dt;
            }
            Integrator::VelocityVerlet => {
                let acc0 = sys.accelerations();
                for (b, a) in sys.bodies.iter_mut().zip(&acc0) {
                    let v = b.velocity;
                    b.position += v * dt + *a * (0.5 * dt * dt);
                }
                sys.time += dt;
                let acc1 = sys.accelerations();
                for (b, (a0, a1)) in sys.bodies.iter_mut().zip(acc0.iter().zip(&acc1)) {
                    b.velocity += (*a0 + *a1) * (0.5 * dt);
                }
            }
            Integrator::Rk4 => {
                let state0: Vec<(Vec2, Vec2)> =
                    sys.bodies.iter().map(|b| (b.position, b.velocity)).collect();
                let t0 = sys.time;

                let eval = |sys: &mut NBodySystem,
                            state: &[(Vec2, Vec2)],
                            t: f64|
                 -> Vec<(Vec2, Vec2)> {
                    for (b, (p, v)) in sys.bodies.iter_mut().zip(state) {
                        b.position = *p;
                        b.velocity = *v;
                    }
                    sys.time = t;
                    let acc = sys.accelerations();
                    state
                        .iter()
                        .zip(&acc)
                        .map(|((_, v), a)| (*v, *a))
                        .collect()
                };

                let advance = |state: &[(Vec2, Vec2)], k: &[(Vec2, Vec2)], h: f64| {
                    state
                        .iter()
                        .zip(k)
                        .map(|((p, v), (dp, dv))| (*p + *dp * h, *v + *dv * h))
                        .collect::<Vec<_>>()
                };

                let k1 = eval(sys, &state0, t0);
                let k2 = eval(sys, &advance(&state0, &k1, 0.5 * dt), t0 + 0.5 * dt);
                let k3 = eval(sys, &advance(&state0, &k2, 0.5 * dt), t0 + 0.5 * dt);
                let k4 = eval(sys, &advance(&state0, &k3, dt), t0 + dt);

                for (i, b) in sys.bodies.iter_mut().enumerate() {
                    let (p0, v0) = state0[i];
                    b.position = p0
                        + (k1[i].0 + k2[i].0 * 2.0 + k3[i].0 * 2.0 + k4[i].0) * (dt / 6.0);
                    b.velocity = v0
                        + (k1[i].1 + k2[i].1 * 2.0 + k3[i].1 * 2.0 + k4[i].1) * (dt / 6.0);
                }
                sys.time = t0 + dt;
            }
        }
    }

    /// Integrates for `steps` steps, recording each body's position after
    /// every step. Returns `trajectory[step][body]`.
    pub fn propagate(&self, sys: &mut NBodySystem, dt: f64, steps: usize) -> Vec<Vec<Vec2>> {
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            self.step(sys, dt);
            out.push(sys.bodies.iter().map(|b| b.position).collect());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::NBodySystem;

    fn two_planet() -> NBodySystem {
        NBodySystem::two_planets(1.0, 0.3, 1.5).unwrap()
    }

    #[test]
    fn verlet_conserves_energy_over_many_orbits() {
        let mut sys = two_planet();
        let e0 = sys.total_energy();
        let period = NBodySystem::circular_period(1.0, 0.3, 1.5);
        let dt = period / 2_000.0;
        Integrator::VelocityVerlet.propagate(&mut sys, dt, 20_000); // 10 orbits
        let drift = ((sys.total_energy() - e0) / e0).abs();
        assert!(drift < 1e-5, "Verlet energy drift {drift}");
    }

    #[test]
    fn rk4_is_most_accurate_over_one_orbit() {
        // After one full period the circular orbit returns to the start.
        let period = NBodySystem::circular_period(1.0, 0.3, 1.5);
        let steps = 1_000usize;
        let dt = period / steps as f64;
        let start = two_planet().bodies[0].position;
        let mut errors = Vec::new();
        for integ in [Integrator::SymplecticEuler, Integrator::VelocityVerlet, Integrator::Rk4] {
            let mut sys = two_planet();
            integ.propagate(&mut sys, dt, steps);
            errors.push(sys.bodies[0].position.distance(start));
        }
        assert!(errors[2] < errors[1], "rk4 {} < verlet {}", errors[2], errors[1]);
        assert!(errors[1] < errors[0], "verlet {} < euler {}", errors[1], errors[0]);
        assert!(errors[2] < 1e-6, "rk4 return error {}", errors[2]);
    }

    #[test]
    fn momentum_is_conserved() {
        let mut sys = two_planet();
        Integrator::VelocityVerlet.propagate(&mut sys, 0.01, 5_000);
        assert!(sys.total_momentum().norm() < 1e-10);
    }

    #[test]
    fn angular_momentum_is_conserved_for_point_masses() {
        let mut sys = two_planet();
        let l0 = sys.total_angular_momentum();
        Integrator::VelocityVerlet.propagate(&mut sys, 0.005, 10_000);
        assert!(((sys.total_angular_momentum() - l0) / l0).abs() < 1e-6);
    }

    #[test]
    fn circular_orbit_radius_stays_constant() {
        let mut sys = two_planet();
        let r0 = sys.bodies[0].position.distance(sys.bodies[1].position);
        let period = NBodySystem::circular_period(1.0, 0.3, 1.5);
        let dt = period / 4_000.0;
        for _ in 0..8_000 {
            Integrator::VelocityVerlet.step(&mut sys, dt);
            let r = sys.bodies[0].position.distance(sys.bodies[1].position);
            assert!((r - r0).abs() / r0 < 1e-3, "separation wandered: {r} vs {r0}");
        }
    }

    #[test]
    fn trajectory_shape() {
        let mut sys = two_planet();
        let traj = Integrator::Rk4.propagate(&mut sys, 0.01, 100);
        assert_eq!(traj.len(), 100);
        assert_eq!(traj[0].len(), 2);
    }
}
