//! Ranked-node CPT generation (Fenton, Neil & Caballero — the paper's
//! reference \[37\]).
//!
//! The paper notes that "the number of parameters that need to be elicited
//! in the CPT grows exponentially with the number of parent nodes", and
//! points to ranked nodes as a remedy. A *ranked node* has ordered states
//! (e.g. `low < medium < high`) mapped onto equal subintervals of `[0,1]`;
//! the child's conditional distribution is a truncated normal centred on a
//! weighted mean of the parents' interval midpoints. The whole CPT is thus
//! generated from one weight per parent plus one variance — linear instead
//! of exponential elicitation.

use crate::error::{BnError, Result};
use sysunc_prob::dist::{Continuous, TruncatedNormal};

/// Generates a ranked-node CPT.
///
/// - `parent_state_counts[i]` — number of ordered states of parent `i`;
/// - `weights[i]` — relative influence of parent `i` (non-negative, not
///   all zero);
/// - `child_states` — number of ordered states of the child;
/// - `sigma` — standard deviation of the truncated-normal mixing
///   distribution on the `[0,1]` scale (small = parents dominate,
///   large = flat).
///
/// Rows are ordered with the **last parent iterating fastest**, matching
/// [`crate::BayesNet::add_node`].
///
/// # Errors
///
/// Returns [`BnError::InvalidNode`] for empty parents, zero state counts,
/// invalid weights, `child_states == 0`, or non-positive `sigma`.
///
/// # Examples
///
/// ```
/// use sysunc_bayesnet::{ranked_cpt, BayesNet};
///
/// // Two 3-state parents, camera quality twice as influential as lighting.
/// let cpt = ranked_cpt(&[3, 3], &[2.0, 1.0], 3, 0.15)?;
/// assert_eq!(cpt.len(), 9);
/// let mut bn = BayesNet::new();
/// let cam = bn.add_root("camera", vec!["low", "med", "high"], vec![0.2, 0.5, 0.3])?;
/// let light = bn.add_root("light", vec!["low", "med", "high"], vec![0.3, 0.4, 0.3])?;
/// bn.add_node("quality", vec!["low", "med", "high"], vec![cam, light], cpt)?;
/// # Ok::<(), sysunc_bayesnet::BnError>(())
/// ```
pub fn ranked_cpt(
    parent_state_counts: &[usize],
    weights: &[f64],
    child_states: usize,
    sigma: f64,
) -> Result<Vec<Vec<f64>>> {
    if parent_state_counts.is_empty() || parent_state_counts.len() != weights.len() {
        return Err(BnError::InvalidNode(
            "ranked_cpt: one weight per parent required (non-empty)".into(),
        ));
    }
    if parent_state_counts.iter().any(|&c| c == 0) || child_states == 0 {
        return Err(BnError::InvalidNode("ranked_cpt: zero state count".into()));
    }
    if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
        return Err(BnError::InvalidNode("ranked_cpt: weights must be non-negative".into()));
    }
    let weight_sum: f64 = weights.iter().sum();
    if weight_sum <= 0.0 {
        return Err(BnError::InvalidNode("ranked_cpt: weights must not all be zero".into()));
    }
    if !(sigma > 0.0) || !sigma.is_finite() {
        return Err(BnError::InvalidNode(format!(
            "ranked_cpt: sigma must be > 0, got {sigma}"
        )));
    }
    let rows: usize = parent_state_counts.iter().product();
    let mut cpt = Vec::with_capacity(rows);
    let mut combo = vec![0usize; parent_state_counts.len()];
    for _ in 0..rows {
        // Weighted mean of parent interval midpoints on [0, 1].
        let mu: f64 = combo
            .iter()
            .zip(parent_state_counts)
            .zip(weights)
            .map(|((&s, &count), &w)| w * (s as f64 + 0.5) / count as f64)
            .sum::<f64>()
            / weight_sum;
        let dist = TruncatedNormal::new(mu, sigma, 0.0, 1.0)
            .map_err(|e| BnError::InvalidNode(e.to_string()))?;
        let mut row = Vec::with_capacity(child_states);
        let mut prev = 0.0;
        for s in 0..child_states {
            let hi = (s as f64 + 1.0) / child_states as f64;
            let c = if s + 1 == child_states { 1.0 } else { dist.cdf(hi) };
            row.push((c - prev).max(0.0));
            prev = c;
        }
        // Exact normalization against round-off.
        let total: f64 = row.iter().sum();
        for v in &mut row {
            *v /= total;
        }
        cpt.push(row);
        // Odometer increment, last parent fastest.
        for d in (0..combo.len()).rev() {
            combo[d] += 1;
            if combo[d] < parent_state_counts[d] {
                break;
            }
            combo[d] = 0;
        }
    }
    Ok(cpt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BayesNet;

    #[test]
    fn validation() {
        assert!(ranked_cpt(&[], &[], 3, 0.1).is_err());
        assert!(ranked_cpt(&[3], &[1.0, 2.0], 3, 0.1).is_err());
        assert!(ranked_cpt(&[0], &[1.0], 3, 0.1).is_err());
        assert!(ranked_cpt(&[3], &[1.0], 0, 0.1).is_err());
        assert!(ranked_cpt(&[3], &[-1.0], 3, 0.1).is_err());
        assert!(ranked_cpt(&[3], &[0.0], 3, 0.1).is_err());
        assert!(ranked_cpt(&[3], &[1.0], 3, 0.0).is_err());
    }

    #[test]
    fn rows_are_distributions() {
        let cpt = ranked_cpt(&[3, 4], &[1.0, 2.0], 5, 0.2).unwrap();
        assert_eq!(cpt.len(), 12);
        for row in &cpt {
            assert_eq!(row.len(), 5);
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(row.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn monotone_in_parent_rank() {
        // Higher parent state shifts the child distribution upward
        // (first-order stochastic dominance on the expected rank).
        let cpt = ranked_cpt(&[3], &[1.0], 3, 0.2).unwrap();
        let expected_rank = |row: &Vec<f64>| -> f64 {
            row.iter().enumerate().map(|(i, &p)| i as f64 * p).sum()
        };
        assert!(expected_rank(&cpt[0]) < expected_rank(&cpt[1]));
        assert!(expected_rank(&cpt[1]) < expected_rank(&cpt[2]));
    }

    #[test]
    fn weights_control_influence() {
        // With weight (10, 1), the first parent dominates: flipping it
        // moves the child much more than flipping the second.
        let cpt = ranked_cpt(&[2, 2], &[10.0, 1.0], 2, 0.25).unwrap();
        // Rows: (p1, p2) = (0,0), (0,1), (1,0), (1,1) — last parent fastest.
        let p_high = |row: &Vec<f64>| row[1];
        let d_first = (p_high(&cpt[2]) - p_high(&cpt[0])).abs();
        let d_second = (p_high(&cpt[1]) - p_high(&cpt[0])).abs();
        assert!(d_first > 3.0 * d_second, "{d_first} vs {d_second}");
    }

    #[test]
    fn small_sigma_sharpens() {
        let sharp = ranked_cpt(&[3], &[1.0], 3, 0.05).unwrap();
        let flat = ranked_cpt(&[3], &[1.0], 3, 1.0).unwrap();
        assert!(sharp[0][0] > flat[0][0]);
        assert!(sharp[2][2] > flat[2][2]);
        // Very large sigma approaches uniform.
        let very_flat = ranked_cpt(&[3], &[1.0], 3, 50.0).unwrap();
        for row in &very_flat {
            for &p in row {
                assert!((p - 1.0 / 3.0).abs() < 0.05);
            }
        }
    }

    #[test]
    fn generated_cpt_loads_into_network() {
        // End-to-end: build a three-parent node whose raw CPT would need
        // 27 hand-elicited rows — ranked_cpt generates it from 3 weights.
        let cpt = ranked_cpt(&[3, 3, 3], &[1.0, 1.0, 2.0], 3, 0.2).unwrap();
        let mut bn = BayesNet::new();
        let states = vec!["low", "med", "high"];
        let a = bn.add_root("a", states.clone(), vec![1.0 / 3.0; 3]).unwrap();
        let b = bn.add_root("b", states.clone(), vec![1.0 / 3.0; 3]).unwrap();
        let c = bn.add_root("c", states.clone(), vec![1.0 / 3.0; 3]).unwrap();
        bn.add_node("out", states, vec![a, b, c], cpt).unwrap();
        let m = bn.marginal("out", &[]).unwrap();
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Conditioning the dominant parent high shifts the output high.
        let high = bn.marginal("out", &[("c", "high")]).unwrap();
        let low = bn.marginal("out", &[("c", "low")]).unwrap();
        assert!(high[2] > low[2]);
    }
}
