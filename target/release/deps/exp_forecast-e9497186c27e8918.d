/root/repo/target/release/deps/exp_forecast-e9497186c27e8918.d: crates/bench/src/bin/exp_forecast.rs

/root/repo/target/release/deps/exp_forecast-e9497186c27e8918: crates/bench/src/bin/exp_forecast.rs

crates/bench/src/bin/exp_forecast.rs:
