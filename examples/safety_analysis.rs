//! Uncertainty-aware safety analysis (paper Sec. V): FTA of the redundant
//! perception system with crisp, interval and fuzzy probabilities, cut
//! sets, importance measures, dynamic gates, and the FTA→BN embedding.
//!
//! Run with `cargo run --example safety_analysis`.

use std::sync::Arc;
use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::evidence::{FuzzyNumber, Interval};
use sysunc::fta::{
    esary_proschan, fault_tree_to_bayes_net, importance, minimal_cut_sets, quantify_with,
    DynGateKind, DynamicFaultTree, FaultTree, GateKind,
};
use sysunc::prob::dist::Exponential;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Static fault tree of the perception function.
    // ------------------------------------------------------------------
    let mut ft = FaultTree::new();
    let camera = ft.add_basic_event("camera misclassification", 1e-3)?;
    let radar = ft.add_basic_event("radar misclassification", 2e-3)?;
    let fusion_sw = ft.add_basic_event("fusion software fault", 5e-5)?;
    let power = ft.add_basic_event("power supply failure", 1e-5)?;
    let both = ft.add_gate("both channels wrong", GateKind::And, vec![camera, radar])?;
    let top = ft.add_gate(
        "hazardous perception failure",
        GateKind::Or,
        vec![both, fusion_sw, power],
    )?;
    ft.set_top(top)?;

    println!("== Static FTA ==");
    let cuts = minimal_cut_sets(&ft)?;
    println!("  {} minimal cut sets:", cuts.len());
    for cut in &cuts {
        let names: Vec<&str> =
            cut.iter().map(|&i| ft.basic_events()[i].name.as_str()).collect();
        println!("    {{{}}}", names.join(", "));
    }
    let exact = ft.top_probability_exact()?;
    println!("  P(top) exact = {exact:.3e}  (Esary-Proschan {:.3e})", esary_proschan(&ft, &cuts));

    println!("\n  Importance measures:");
    for (i, be) in ft.basic_events().iter().enumerate() {
        let m = importance(&ft, i)?;
        println!(
            "    {:<28} Birnbaum {:.3e}  FV {:.3}  RAW {:.1}",
            be.name, m.birnbaum, m.fussell_vesely, m.risk_achievement_worth
        );
    }

    // ------------------------------------------------------------------
    // Epistemic quantification: intervals and fuzzy numbers (Tanaka).
    // ------------------------------------------------------------------
    println!("\n== Quantification under epistemic uncertainty ==");
    let intervals: Vec<Interval> = ft
        .basic_events()
        .iter()
        .map(|b| Interval::new(b.probability / 3.0, b.probability * 3.0))
        .collect::<Result<_, _>>()?;
    let bounds = quantify_with(&ft, &intervals)?;
    println!("  interval FTA (factor-3 error bands): P(top) in [{:.3e}, {:.3e}]", bounds.lo(), bounds.hi());

    let fuzzies: Vec<FuzzyNumber> = ft
        .basic_events()
        .iter()
        .map(|b| FuzzyNumber::triangular(b.probability / 3.0, b.probability, b.probability * 3.0))
        .collect::<Result<_, _>>()?;
    let fuzzy_top = quantify_with(&ft, &fuzzies)?;
    println!(
        "  fuzzy FTA: core {:.3e}, support [{:.3e}, {:.3e}], centroid {:.3e}",
        fuzzy_top.core().midpoint(),
        fuzzy_top.support().lo(),
        fuzzy_top.support().hi(),
        fuzzy_top.defuzzify_centroid()
    );

    // ------------------------------------------------------------------
    // FTA -> BN: diagnostic queries beyond classic FTA (Sec. V-B).
    // ------------------------------------------------------------------
    println!("\n== FTA as a Bayesian network: diagnosis ==");
    let conv = fault_tree_to_bayes_net(&ft)?;
    for name in ["camera misclassification", "fusion software fault", "power supply failure"] {
        let post =
            conv.network.marginal(name, &[("hazardous perception failure", "failed")])?[1];
        println!("  P({name} | top failed) = {post:.4}");
    }

    // ------------------------------------------------------------------
    // Dynamic FTA: cold-spare compute platform.
    // ------------------------------------------------------------------
    println!("\n== Dynamic FTA: cold-spare compute platform ==");
    let mut dft = DynamicFaultTree::new();
    let primary = dft.add_event("primary ECU", Arc::new(Exponential::new(1.0 / 5_000.0)?));
    let spare = dft.add_event("spare ECU", Arc::new(Exponential::new(1.0 / 5_000.0)?));
    let platform = dft.add_gate("compute platform", DynGateKind::ColdSpare, vec![primary, spare])?;
    dft.set_top(platform)?;
    let mut rng = StdRng::seed_from_u64(88);
    let mission = 1_000.0;
    let u = dft.unreliability(mission, 100_000, &mut rng)?;
    let (mttf, _) = dft.mean_time_to_failure(100_000, &mut rng)?;
    println!(
        "  unreliability at t = {mission}: {:.4} ± {:.4}; MTTF ≈ {:.0} h",
        u.mean(),
        2.0 * u.standard_error(),
        mttf.mean()
    );
    Ok(())
}
