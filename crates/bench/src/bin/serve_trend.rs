//! Folds a loadgen suite into the serve trend trajectory and trips on
//! throughput regressions.
//!
//! ```text
//! serve_trend [--in BENCH_serve.json] [--out BENCH_serve_trend.json]
//!             [--baseline serve.baseline] [--write-baseline]
//!             [--min-ratio 0.8] [--cache-speedup 5.0]
//!             [--fleet-in BENCH_fleet.json]
//!             [--fleet-speedup 1.7] [--fleet-speedup-floor 0.15]
//! ```
//!
//! Reads a `sysunc-bench-serve/2` suite document, appends one
//! `sysunc-bench-serve-trend/1` record to `--out`, and compares the
//! run against `--baseline`:
//!
//! - a mode whose throughput drops below `--min-ratio` (default 0.8,
//!   i.e. a >20% regression) of the baseline fails the run;
//! - cache-hot throughput below `--cache-speedup` (default 5.0) times
//!   cold throughput fails the run — the response cache must earn its
//!   keep.
//!
//! `--fleet-in` merges a second suite from a `loadgen --fleet N` run
//! (its modes are keyed `fleet-<mode>`) into the trend record and arms
//! two fleet gates:
//!
//! - any failed request in a fleet mode fails the run — the router's
//!   retry loop must absorb child crashes completely;
//! - fleet-cache-hot throughput must beat single-process cache-hot by
//!   `--fleet-speedup` (default 1.7) when the recording machine had at
//!   least [`FLEET_FULL_CORES`] cores, or by `--fleet-speedup-floor`
//!   (default 0.15) on smaller machines, where shards time-slice one
//!   core and only routing overhead is measurable.
//!
//! The baseline stays single-process: fleet rows are appended to the
//! trend record but never written into `--baseline`, so the
//! regression comparison is unaffected by fleet runs.
//!
//! When the baseline file does not exist yet (first run on a machine),
//! the current suite is written as the new baseline and the checks
//! pass vacuously; `--write-baseline` forces that refresh.

use std::process::ExitCode;
use sysunc::prob::json::parse;
use sysunc_bench::trend::{
    cache_speedup_shortfall, fleet_failed_requests, fleet_speedup_shortfall,
    merge_serve_suites, serve_mode_summaries, serve_trend_record,
    throughput_regressions,
};

/// Core count at which the full `--fleet-speedup` ratio is armed; below
/// it shards time-slice and only the overhead floor is enforceable.
const FLEET_FULL_CORES: u64 = 4;

struct Args {
    input: String,
    out: String,
    baseline: String,
    write_baseline: bool,
    min_ratio: f64,
    cache_speedup: f64,
    fleet_input: Option<String>,
    fleet_speedup: f64,
    fleet_speedup_floor: f64,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        input: "BENCH_serve.json".into(),
        out: "BENCH_serve_trend.json".into(),
        baseline: "serve.baseline".into(),
        write_baseline: false,
        min_ratio: 0.8,
        cache_speedup: 5.0,
        fleet_input: None,
        fleet_speedup: 1.7,
        fleet_speedup_floor: 0.15,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--in" => parsed.input = value("--in")?,
            "--out" => parsed.out = value("--out")?,
            "--baseline" => parsed.baseline = value("--baseline")?,
            "--write-baseline" => parsed.write_baseline = true,
            "--min-ratio" => {
                parsed.min_ratio = value("--min-ratio")?
                    .parse()
                    .map_err(|e| format!("--min-ratio: {e}"))?
            }
            "--cache-speedup" => {
                parsed.cache_speedup = value("--cache-speedup")?
                    .parse()
                    .map_err(|e| format!("--cache-speedup: {e}"))?
            }
            "--fleet-in" => parsed.fleet_input = Some(value("--fleet-in")?),
            "--fleet-speedup" => {
                parsed.fleet_speedup = value("--fleet-speedup")?
                    .parse()
                    .map_err(|e| format!("--fleet-speedup: {e}"))?
            }
            "--fleet-speedup-floor" => {
                parsed.fleet_speedup_floor = value("--fleet-speedup-floor")?
                    .parse()
                    .map_err(|e| format!("--fleet-speedup-floor: {e}"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("serve_trend: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let text = match std::fs::read_to_string(&args.input) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("serve_trend: cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let mut suite = match parse(&text) {
        Ok(suite) => suite,
        Err(e) => {
            eprintln!("serve_trend: {} is not valid JSON: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    if let Some(fleet_path) = &args.fleet_input {
        let fleet_text = match std::fs::read_to_string(fleet_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("serve_trend: cannot read {fleet_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let fleet_suite = match parse(&fleet_text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("serve_trend: {fleet_path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        suite = match merge_serve_suites(&suite, &fleet_suite) {
            Ok(merged) => merged,
            Err(e) => {
                eprintln!("serve_trend: cannot merge {fleet_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
    }
    let summaries = match serve_mode_summaries(&suite) {
        Ok(summaries) => summaries,
        Err(e) => {
            eprintln!("serve_trend: {} is not a serve suite: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let record = match serve_trend_record(&suite) {
        Ok(record) => record,
        Err(e) => {
            eprintln!("serve_trend: cannot fold the suite: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{record}");
    let mut appended = std::fs::read_to_string(&args.out).unwrap_or_default();
    if !appended.is_empty() && !appended.ends_with('\n') {
        appended.push('\n');
    }
    appended.push_str(&record);
    appended.push('\n');
    if let Err(e) = std::fs::write(&args.out, appended) {
        eprintln!("serve_trend: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    // The cache-speedup invariant holds regardless of any baseline.
    if let Some(msg) = cache_speedup_shortfall(&summaries, args.cache_speedup) {
        eprintln!("serve_trend: FAIL: {msg}");
        return ExitCode::FAILURE;
    }

    // Fleet gates, armed only when fleet rows are present: zero failed
    // requests (crash tolerance must be total) and a hardware-aware
    // routed-throughput bar against the single-process cache-hot run.
    let dropped = fleet_failed_requests(&summaries);
    if !dropped.is_empty() {
        for finding in &dropped {
            eprintln!("serve_trend: FAIL: {finding}");
        }
        return ExitCode::FAILURE;
    }
    if let Some(msg) = fleet_speedup_shortfall(
        &summaries,
        FLEET_FULL_CORES,
        args.fleet_speedup,
        args.fleet_speedup_floor,
    ) {
        eprintln!("serve_trend: FAIL: {msg}");
        return ExitCode::FAILURE;
    }

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(text) if !args.write_baseline => Some(text),
        _ => None,
    };
    match baseline_text {
        Some(text) => {
            let baseline = match parse(&text).ok().as_ref().map(serve_mode_summaries) {
                Some(Ok(baseline)) => baseline,
                _ => {
                    eprintln!(
                        "serve_trend: {} is not a serve suite; refresh it with \
                         --write-baseline",
                        args.baseline
                    );
                    return ExitCode::FAILURE;
                }
            };
            let findings = throughput_regressions(&summaries, &baseline, args.min_ratio);
            if !findings.is_empty() {
                for finding in &findings {
                    eprintln!("serve_trend: FAIL: {finding}");
                }
                return ExitCode::FAILURE;
            }
            println!(
                "serve_trend: ok — {} mode(s) within {:.0}% of baseline",
                summaries.len(),
                args.min_ratio * 100.0
            );
        }
        None => {
            if let Err(e) = std::fs::write(&args.baseline, &text) {
                eprintln!("serve_trend: cannot write baseline {}: {e}", args.baseline);
                return ExitCode::FAILURE;
            }
            println!("serve_trend: wrote new baseline {}", args.baseline);
        }
    }
    ExitCode::SUCCESS
}
