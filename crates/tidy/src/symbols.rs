//! Workspace-level symbol table, built on the [`crate::resolve`]
//! semantic layer: one assembled module graph per crate, its exact
//! root-reachability set, and a per-file function/struct signature
//! index.
//!
//! Per-file rules can only see one file; this pass is what lets the
//! gate reason *across* files — most importantly, whether a `pub` item
//! buried in a privately-declared module is actually reachable from its
//! crate root (and therefore from the `sysunc::` facade), or is dead
//! public API whose existence callers can never observe.
//!
//! Earlier revisions answered that question with a deliberately
//! over-approximate name table ("is this name re-exported *anywhere*?").
//! The table is now exact: [`crate::resolve::CrateGraph`] links every
//! `mod` declaration to its file, resolves `use` paths (globs, aliases,
//! `crate::`/`super::` prefixes, re-export chains) against the real
//! tree, and [`crate::resolve::CrateGraph::root_reachable`] walks the
//! `pub` edges from the root. Where resolution still fails (a path
//! through a macro or an external crate), reachability degrades to
//! name-matching for that path only — a lint must not accuse reachable
//! code.

use std::collections::HashMap;
use std::path::Component;

use crate::resolve::{self, CrateGraph, FileFacts, Module, ReachSet};
use crate::{FileKind, SourceFile};

/// The symbol table of one crate under `crates/`: its module graph and
/// the precomputed root-reachability of every item.
#[derive(Debug, Clone)]
pub struct CrateSymbols {
    /// Directory name under `crates/`.
    pub name: String,
    /// The assembled module graph (index 0 is the crate root).
    pub graph: CrateGraph,
    /// Exact root-reachability over the graph's `pub` edges.
    pub reach: ReachSet,
}

impl CrateSymbols {
    /// The crate-root module (`lib.rs`), if present.
    pub fn root(&self) -> Option<&Module> {
        self.graph.modules.first()
    }

    /// The module with exactly this path, if present.
    pub fn module(&self, path: &[String]) -> Option<&Module> {
        self.graph.module(path)
    }

    /// All modules of the crate.
    pub fn modules(&self) -> &[Module] {
        &self.graph.modules
    }
}

/// The full cross-file view handed to [`crate::WorkspaceLint`]s.
#[derive(Debug)]
pub struct Workspace<'a> {
    /// All scanned files, in report order.
    pub files: &'a [SourceFile],
    /// Symbol tables for every crate under `crates/`.
    pub crates: Vec<CrateSymbols>,
    /// Function/struct signature index per Rust library file, keyed by
    /// index into [`Workspace::files`] (covers files outside `crates/`
    /// too, e.g. the facade's `src/lib.rs`).
    pub facts: HashMap<usize, FileFacts>,
}

impl<'a> Workspace<'a> {
    /// Builds the symbol table for all `crates/*/src` library files and
    /// the signature index for every Rust library file.
    pub fn build(files: &'a [SourceFile]) -> Self {
        // Per-file parses, shared by graph assembly and the facts index.
        let mut trees = HashMap::new();
        let mut facts = HashMap::new();
        // crate name -> [(file index, layout module path)]
        let mut layouts: Vec<(String, Vec<(usize, Vec<String>)>)> = Vec::new();
        for (file_idx, file) in files.iter().enumerate() {
            if file.kind != FileKind::RustLibrary {
                continue;
            }
            facts.insert(file_idx, resolve::parse_facts(file));
            let Some((crate_name, module_path)) = crate_and_module(file) else { continue };
            trees.insert(file_idx, resolve::parse_scopes(file));
            match layouts.iter_mut().find(|(n, _)| *n == crate_name) {
                Some((_, fs)) => fs.push((file_idx, module_path)),
                None => layouts.push((crate_name, vec![(file_idx, module_path)])),
            }
        }
        let crates = layouts
            .iter()
            .filter_map(|(name, fs)| {
                let graph = CrateGraph::build(name, fs, &trees)?;
                let reach = graph.root_reachable();
                Some(CrateSymbols { name: name.clone(), graph, reach })
            })
            .collect();
        Workspace { files, crates, facts }
    }

    /// The crate with this directory name, if present.
    pub fn crate_named(&self, name: &str) -> Option<&CrateSymbols> {
        self.crates.iter().find(|c| c.name == name)
    }
}

/// Splits `crates/<name>/src/<rel>.rs` into the crate name and module
/// path (`lib.rs` → `[]`, `a/mod.rs` → `["a"]`, `a/b.rs` → `["a","b"]`).
/// Returns `None` for files outside `crates/*/src` and for binaries.
pub fn crate_and_module(file: &SourceFile) -> Option<(String, Vec<String>)> {
    let comps: Vec<&str> = file
        .path
        .components()
        .filter_map(|c| match c {
            Component::Normal(os) => os.to_str(),
            _ => None,
        })
        .collect();
    if comps.len() < 4 || comps[0] != "crates" || comps[2] != "src" {
        return None;
    }
    let crate_name = comps[1].to_string();
    let rel = &comps[3..];
    let last = rel.last()?;
    if *last == "main.rs" || rel.contains(&"bin") {
        return None; // binary root, not part of the library API
    }
    let mut path: Vec<String> = rel[..rel.len() - 1].iter().map(|s| s.to_string()).collect();
    match last.strip_suffix(".rs") {
        Some("lib") if path.is_empty() => {}
        Some("mod") => {}
        Some(stem) => path.push(stem.to_string()),
        None => return None,
    }
    Some((crate_name, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::Visibility;
    use crate::FileKind;

    fn ws_files(specs: &[(&str, &str)]) -> Vec<SourceFile> {
        specs
            .iter()
            .map(|(p, s)| SourceFile::new(*p, *s, FileKind::RustLibrary))
            .collect()
    }

    #[test]
    fn module_paths_are_derived_from_file_layout() {
        let files = ws_files(&[
            ("crates/x/src/lib.rs", "pub mod a;\nmod b;\nmod c;\n"),
            ("crates/x/src/a.rs", "pub fn f() {}\n"),
            ("crates/x/src/b.rs", "pub fn g() {}\n"),
            ("crates/x/src/c/mod.rs", "pub mod d;\npub struct S;\n"),
            ("crates/x/src/c/d.rs", "pub enum E { X }\n"),
        ]);
        let ws = Workspace::build(&files);
        let x = ws.crate_named("x").expect("crate x");
        assert_eq!(x.modules().len(), 5);
        assert_eq!(x.module(&["a".into()]).expect("a").items[0].name, "f");
        assert_eq!(x.module(&["c".into()]).expect("c").items[0].name, "S");
        assert_eq!(
            x.module(&["c".into(), "d".into()]).expect("c::d").items[0].name,
            "E"
        );
        assert!(x.module(&["a".into()]).expect("a").vis.is_pub());
        assert_eq!(x.module(&["b".into()]).expect("b").vis, Visibility::Private);
    }

    #[test]
    fn reachability_is_precomputed_per_crate() {
        let files = ws_files(&[
            ("crates/x/src/lib.rs", "pub mod open;\nmod hidden;\n"),
            ("crates/x/src/open.rs", "pub fn shown() {}\n"),
            ("crates/x/src/hidden.rs", "pub fn lost() {}\n"),
        ]);
        let ws = Workspace::build(&files);
        let x = ws.crate_named("x").expect("x");
        let open =
            x.graph.modules.iter().position(|m| m.path == ["open".to_string()]).unwrap();
        let hidden =
            x.graph.modules.iter().position(|m| m.path == ["hidden".to_string()]).unwrap();
        assert!(x.reach.items[open][0], "pub fn in pub module is reachable");
        assert!(!x.reach.items[hidden][0], "pub fn in private module is not");
    }

    #[test]
    fn facts_cover_library_files_inside_and_outside_crates() {
        let files = vec![
            SourceFile::new(
                "src/lib.rs",
                "pub fn facade(x: f64) -> f64 { x }\n",
                FileKind::RustLibrary,
            ),
            SourceFile::new(
                "crates/x/src/lib.rs",
                "pub fn inner() {}\n",
                FileKind::RustLibrary,
            ),
            SourceFile::new("tests/t.rs", "fn t() {}\n", FileKind::RustTest),
        ];
        let ws = Workspace::build(&files);
        assert_eq!(ws.facts.len(), 2, "library files only");
        assert_eq!(ws.facts[&0].fns[0].name, "facade");
        assert_eq!(ws.facts[&1].fns[0].name, "inner");
    }

    #[test]
    fn files_outside_crates_and_binaries_are_skipped() {
        let files = vec![
            SourceFile::new("src/lib.rs", "pub fn root() {}\n", FileKind::RustLibrary),
            SourceFile::new("crates/x/src/main.rs", "fn main() {}\n", FileKind::RustLibrary),
            SourceFile::new("tests/t.rs", "pub fn t() {}\n", FileKind::RustTest),
        ];
        let ws = Workspace::build(&files);
        assert!(ws.crates.is_empty());
    }
}
