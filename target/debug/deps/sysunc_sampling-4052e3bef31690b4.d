/root/repo/target/debug/deps/sysunc_sampling-4052e3bef31690b4.d: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

/root/repo/target/debug/deps/libsysunc_sampling-4052e3bef31690b4.rlib: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

/root/repo/target/debug/deps/libsysunc_sampling-4052e3bef31690b4.rmeta: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

crates/sampling/src/lib.rs:
crates/sampling/src/design.rs:
crates/sampling/src/error.rs:
crates/sampling/src/propagate.rs:
crates/sampling/src/variance_reduction.rs:
