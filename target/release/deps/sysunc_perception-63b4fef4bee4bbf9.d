/root/repo/target/release/deps/sysunc_perception-63b4fef4bee4bbf9.d: crates/perception/src/lib.rs crates/perception/src/classifier.rs crates/perception/src/drift.rs crates/perception/src/error.rs crates/perception/src/fusion.rs crates/perception/src/monitor.rs crates/perception/src/world.rs

/root/repo/target/release/deps/libsysunc_perception-63b4fef4bee4bbf9.rlib: crates/perception/src/lib.rs crates/perception/src/classifier.rs crates/perception/src/drift.rs crates/perception/src/error.rs crates/perception/src/fusion.rs crates/perception/src/monitor.rs crates/perception/src/world.rs

/root/repo/target/release/deps/libsysunc_perception-63b4fef4bee4bbf9.rmeta: crates/perception/src/lib.rs crates/perception/src/classifier.rs crates/perception/src/drift.rs crates/perception/src/error.rs crates/perception/src/fusion.rs crates/perception/src/monitor.rs crates/perception/src/world.rs

crates/perception/src/lib.rs:
crates/perception/src/classifier.rs:
crates/perception/src/drift.rs:
crates/perception/src/error.rs:
crates/perception/src/fusion.rs:
crates/perception/src/monitor.rs:
crates/perception/src/world.rs:
