//! Crate-local call resolution over the [`crate::resolve`] facts.
//!
//! Workspace rules (`lock-order-cycle`, `panic-path`) need to follow
//! calls from one function into another. This module builds, per
//! crate, an index of every function — free functions by name, impl
//! methods by `(Self type, name)` — and resolves the call sites inside
//! a function body against it: bare-name calls, `Type::method` /
//! `Self::method` path calls, and method calls through a receiver
//! whose type is known from a parameter annotation, a `let`
//! annotation, an inferred constructor result, or a struct field
//! chain (`self.pool.submit(..)`).
//!
//! Resolution is deliberately under-approximate ("never accuse"): an
//! ambiguous name (two free functions called `lock` in one crate),
//! an unannotated receiver, or a cross-crate path simply produces no
//! edge. Missing edges can only make the dependent rules miss a
//! finding, never invent one.

use std::collections::HashMap;

use crate::lexer::TokenKind;
use crate::resolve::{type_annotation_at, FileFacts, FnInfo, StructInfo, TypeAnn};
use crate::symbols::Workspace;
use crate::SourceFile;

/// Identifies one function: an index into [`Workspace::files`] plus
/// the index into that file's [`FileFacts::fns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FnRef {
    /// Index into the workspace's file list.
    pub file: usize,
    /// Index into the file's function facts.
    pub fn_idx: usize,
}

/// One resolved call site inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Call {
    /// Token index of the callee's name identifier at the call site.
    pub site: usize,
    /// The resolved callee.
    pub callee: FnRef,
}

/// The crate name of a library file laid out as
/// `crates/<name>/src/…`, or `None` for files outside that layout.
pub fn crate_of(file: &SourceFile) -> Option<&str> {
    let mut comps = file.path.components().filter_map(|c| match c {
        std::path::Component::Normal(os) => os.to_str(),
        _ => None,
    });
    if comps.next() != Some("crates") {
        return None;
    }
    let name = comps.next()?;
    (comps.next() == Some("src")).then_some(name)
}

/// The per-crate function and struct index call resolution runs over.
pub struct CrateIndex<'a> {
    /// Workspace file indices belonging to this crate, in file order.
    pub files: Vec<usize>,
    facts: HashMap<usize, &'a FileFacts>,
    paths: HashMap<usize, &'a std::path::Path>,
    /// Free functions by name; `None` marks an ambiguous name.
    by_name: HashMap<&'a str, Option<FnRef>>,
    /// Impl methods by `(Self type, name)`; `None` marks ambiguity.
    by_method: HashMap<(&'a str, &'a str), Option<FnRef>>,
    structs: HashMap<&'a str, &'a StructInfo>,
}

impl<'a> CrateIndex<'a> {
    /// Indexes every function and struct of `crate_name`'s library
    /// files in the workspace.
    pub fn build(ws: &'a Workspace<'_>, crate_name: &str) -> Self {
        let mut idx = CrateIndex {
            files: Vec::new(),
            facts: HashMap::new(),
            paths: HashMap::new(),
            by_name: HashMap::new(),
            by_method: HashMap::new(),
            structs: HashMap::new(),
        };
        for (fi, file) in ws.files.iter().enumerate() {
            if crate_of(file) != Some(crate_name) {
                continue;
            }
            let Some(facts) = ws.facts.get(&fi) else { continue };
            idx.files.push(fi);
            idx.facts.insert(fi, facts);
            idx.paths.insert(fi, file.path.as_path());
            for (j, f) in facts.fns.iter().enumerate() {
                let r = FnRef { file: fi, fn_idx: j };
                match &f.self_ty {
                    Some(ty) => {
                        idx.by_method
                            .entry((ty.as_str(), f.name.as_str()))
                            .and_modify(|s| *s = None)
                            .or_insert(Some(r));
                    }
                    None => {
                        idx.by_name
                            .entry(f.name.as_str())
                            .and_modify(|s| *s = None)
                            .or_insert(Some(r));
                    }
                }
            }
            for s in &facts.structs {
                idx.structs.insert(s.name.as_str(), s);
            }
        }
        idx
    }

    /// The facts of one indexed function.
    pub fn fn_info(&self, r: FnRef) -> &'a FnInfo {
        &self.facts[&r.file].fns[r.fn_idx]
    }

    /// Every function in the crate, in file-then-source order.
    pub fn all_fns(&self) -> Vec<FnRef> {
        let mut out = Vec::new();
        for &fi in &self.files {
            for j in 0..self.facts[&fi].fns.len() {
                out.push(FnRef { file: fi, fn_idx: j });
            }
        }
        out
    }

    fn free_fn(&self, name: &str) -> Option<FnRef> {
        self.by_name.get(name).copied().flatten()
    }

    fn method(&self, ty: &str, name: &str) -> Option<FnRef> {
        self.by_method.get(&(ty, name)).copied().flatten()
    }

    /// The declared return type name of a callee, with `Self`
    /// substituted by the impl's type.
    fn ret_ty(&self, r: FnRef) -> Option<String> {
        let f = self.fn_info(r);
        match &f.ret {
            TypeAnn::Named(n) if n == "Self" => f.self_ty.clone(),
            TypeAnn::Named(n) => Some(n.clone()),
            _ => None,
        }
    }

    /// Resolves every call site inside `fref`'s body. Calls within
    /// closures are attributed to the enclosing function (deferred
    /// work still runs on its behalf); bodies of *nested `fn` items*
    /// are skipped — those are separate functions in the index.
    pub fn resolve_calls(&self, ws: &Workspace<'_>, fref: FnRef) -> Vec<Call> {
        let file = &ws.files[fref.file];
        let tokens = file.tokens();
        let info = self.fn_info(fref);
        let Some((open, close)) = info.body else { return Vec::new() };

        // Extents of other fns nested inside this body, to skip.
        let nested: Vec<(usize, usize)> = self.facts[&fref.file]
            .fns
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != fref.fn_idx)
            .filter_map(|(_, f)| f.body)
            .filter(|&(o, c)| open < o && c < close)
            .collect();

        let mut out = Vec::new();
        let mut i = open + 1;
        let end = close.min(tokens.len());
        while i < end {
            if let Some(&(_, nc)) = nested.iter().find(|&&(no, _)| no == i) {
                i = nc + 1;
                continue;
            }
            let t = &tokens[i];
            if t.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            let name = file.text(t);
            if name == "fn" {
                // A nested item's declared name is not a call site.
                i = sig_after(file, i, end).map(|n| n + 1).unwrap_or(end);
                continue;
            }
            let Some(next) = sig_after(file, i, end) else { break };
            let next_text = file.text(&tokens[next]);
            if next_text == "!" {
                // Macro invocation, not a call.
                i = next + 1;
                continue;
            }
            if next_text == "(" && !KEYWORDS.contains(&name) {
                if let Some(callee) = self.resolve_one(file, i, name) {
                    out.push(Call { site: i, callee });
                }
            }
            i += 1;
        }
        out
    }

    /// Resolves one `name(`-shaped site at token `site`.
    fn resolve_one(&self, file: &SourceFile, site: usize, name: &str) -> Option<FnRef> {
        let tokens = file.tokens();
        let prev = sig_before(file, site)?;
        let prev_text = file.text(&tokens[prev]);
        if prev_text == "." {
            // Method call: resolve the receiver chain left of the dot.
            let ty = self.receiver_type(file, prev)?;
            return self.method(&ty, name);
        }
        if prev_text == "::" {
            // Path call: `Type::name(..)`, `Self::name(..)`,
            // `module::name(..)`.
            let seg = sig_before(file, prev)?;
            if tokens[seg].kind != TokenKind::Ident {
                return None;
            }
            let seg_text = file.text(&tokens[seg]);
            let ty = if seg_text == "Self" {
                self.self_ty_at(file, site)?
            } else {
                seg_text.to_string()
            };
            return self.method(&ty, name).or_else(|| self.free_fn(name));
        }
        self.free_fn(name)
    }

    /// The `Self` type in scope at a token, via the innermost fn whose
    /// body contains it.
    fn self_ty_at(&self, file: &SourceFile, i: usize) -> Option<String> {
        self.enclosing_fn(file, i)?.1.self_ty.clone()
    }

    /// The type of the receiver chain ending at the `.` token `dot`:
    /// `x.` via the environment is handled by the caller; this walks
    /// `a.b.c.` chains through struct fields. Returns `None` for
    /// call-result receivers (`f().m()`) and anything unannotated.
    fn receiver_type(&self, file: &SourceFile, dot: usize) -> Option<String> {
        let tokens = file.tokens();
        // Collect the ident chain right-to-left: idents separated by
        // `.`, ending when the previous token is not a dot.
        let mut chain = Vec::new();
        let mut at = dot;
        loop {
            let id = sig_before(file, at)?;
            if tokens[id].kind != TokenKind::Ident {
                return None; // `)`, `]`, literal… — not a plain chain
            }
            chain.push((id, file.text(&tokens[id]).to_string()));
            match sig_before(file, id) {
                Some(p)
                    if tokens[p].kind == TokenKind::Punct && file.text(&tokens[p]) == "." =>
                {
                    at = p;
                }
                _ => break,
            }
        }
        chain.reverse();
        let (head_tok, head) = chain.first()?.clone();
        // Head type: `self` → enclosing impl type, else the innermost
        // enclosing fn's environment.
        let mut ty = if head == "self" {
            self.enclosing_fn(file, head_tok)?.1.self_ty.clone()?
        } else {
            let (_, info) = self.enclosing_fn(file, head_tok)?;
            let mut env = TypeEnv::from_signature(info);
            env.scan_lets_until(self, file, info.body?.0 + 1, head_tok);
            env.get(&head)?
        };
        // Walk the remaining field segments through struct facts.
        for (_, field) in &chain[1..] {
            let s = self.structs.get(ty.as_str())?;
            ty = s
                .named_fields
                .iter()
                .find(|(n, _)| n == field)
                .map(|(_, t)| t.clone())?;
        }
        Some(ty)
    }

    /// The innermost indexed fn whose body contains token `i` in
    /// `file`, with its facts. The file is located by path, which is
    /// unique across the workspace.
    fn enclosing_fn(&self, file: &SourceFile, i: usize) -> Option<(FnRef, &'a FnInfo)> {
        let (&fidx, facts) = self
            .facts
            .iter()
            .find(|&(&fi, _)| self.paths.get(&fi).map(|p| *p == file.path).unwrap_or(false))?;
        let j = facts
            .fns
            .iter()
            .rposition(|f| f.body.map(|(o, c)| o < i && i < c).unwrap_or(false))?;
        Some((FnRef { file: fidx, fn_idx: j }, &facts.fns[j]))
    }
}

/// Ident tokens that can precede `(` without being a call.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "as", "let", "else",
    "break", "continue", "unsafe", "where", "impl", "dyn",
];

/// Variable → type-name environment for one function body.
struct TypeEnv {
    vars: HashMap<String, String>,
}

impl TypeEnv {
    /// Seeds the environment from the signature: named parameters and
    /// the `self` receiver.
    fn from_signature(info: &FnInfo) -> Self {
        let mut vars = HashMap::new();
        if let Some(ty) = &info.self_ty {
            vars.insert("self".to_string(), ty.clone());
        }
        for p in &info.params {
            if let TypeAnn::Named(t) = &p.ty {
                vars.insert(p.name.clone(), t.clone());
            }
        }
        TypeEnv { vars }
    }

    fn get(&self, name: &str) -> Option<String> {
        self.vars.get(name).cloned()
    }

    /// Processes one `let` statement starting at the `let` keyword
    /// token `kw`; records the binding's type when it is knowable from
    /// an annotation or a constructor-shaped initializer. Returns the
    /// index to resume scanning at (just past the binding name).
    fn bind_let(
        &mut self,
        idx: &CrateIndex<'_>,
        file: &SourceFile,
        kw: usize,
        end: usize,
    ) -> usize {
        let tokens = file.tokens();
        let mut i = match sig_after(file, kw, end) {
            Some(i) => i,
            None => return kw + 1,
        };
        if tokens[i].kind == TokenKind::Ident && file.text(&tokens[i]) == "mut" {
            i = match sig_after(file, i, end) {
                Some(i) => i,
                None => return kw + 1,
            };
        }
        if tokens[i].kind != TokenKind::Ident {
            return kw + 1; // pattern binding (tuple/struct) — skip
        }
        let name = file.text(&tokens[i]).to_string();
        let resume = i + 1;
        let Some(next) = sig_after(file, i, end) else { return resume };
        match file.text(&tokens[next]) {
            ":" => {
                if let (TypeAnn::Named(t), _) = type_annotation_at(file, next + 1) {
                    self.vars.insert(name, t);
                } else {
                    self.vars.remove(&name);
                }
            }
            "=" => {
                if let Some(t) = Self::init_type(idx, file, next + 1, end) {
                    self.vars.insert(name, t);
                } else {
                    self.vars.remove(&name);
                }
            }
            _ => {
                self.vars.remove(&name);
            }
        }
        resume
    }

    /// The type of a constructor-shaped initializer at `i`:
    /// `Type::method(..)` via the method's return type, `freefn(..)`
    /// via the free fn's return type, or a plain struct literal
    /// `Type { .. }`.
    fn init_type(
        idx: &CrateIndex<'_>,
        file: &SourceFile,
        i: usize,
        end: usize,
    ) -> Option<String> {
        let tokens = file.tokens();
        let a = sig_after_inclusive(file, i, end)?;
        if tokens[a].kind != TokenKind::Ident {
            return None;
        }
        let first = file.text(&tokens[a]);
        let b = sig_after(file, a, end)?;
        match file.text(&tokens[b]) {
            "::" => {
                let m = sig_after(file, b, end)?;
                if tokens[m].kind != TokenKind::Ident {
                    return None;
                }
                let method = file.text(&tokens[m]);
                let c = sig_after(file, m, end)?;
                if file.text(&tokens[c]) != "(" {
                    return None;
                }
                idx.method(first, method).and_then(|r| idx.ret_ty(r))
            }
            "(" => idx.free_fn(first).and_then(|r| idx.ret_ty(r)),
            "{" => Some(first.to_string()),
            _ => None,
        }
    }

    /// Replays `let` bindings from `from` up to (not including) token
    /// `until`, so a receiver lookup sees the bindings above it.
    fn scan_lets_until(
        &mut self,
        idx: &CrateIndex<'_>,
        file: &SourceFile,
        from: usize,
        until: usize,
    ) {
        let tokens = file.tokens();
        let mut i = from;
        while i < until {
            let t = &tokens[i];
            if t.kind == TokenKind::Ident && file.text(t) == "let" {
                i = self.bind_let(idx, file, i, until);
                continue;
            }
            i += 1;
        }
    }
}

/// First significant token strictly after `i`, below `end`.
fn sig_after(file: &SourceFile, i: usize, end: usize) -> Option<usize> {
    sig_after_inclusive(file, i + 1, end)
}

fn sig_after_inclusive(file: &SourceFile, mut i: usize, end: usize) -> Option<usize> {
    let tokens = file.tokens();
    while i < end.min(tokens.len()) {
        if !tokens[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Last significant token strictly before `i`.
fn sig_before(file: &SourceFile, i: usize) -> Option<usize> {
    file.tokens()[..i].iter().rposition(|t| !t.is_comment())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn ws_files(srcs: &[(&str, &str)]) -> Vec<SourceFile> {
        srcs.iter()
            .map(|(p, s)| SourceFile::new(*p, *s, FileKind::RustLibrary))
            .collect()
    }

    fn call_names(
        ws: &Workspace<'_>,
        idx: &CrateIndex<'_>,
        fref: FnRef,
    ) -> Vec<String> {
        idx.resolve_calls(ws, fref)
            .into_iter()
            .map(|c| idx.fn_info(c.callee).name.clone())
            .collect()
    }

    fn fn_named(idx: &CrateIndex<'_>, name: &str) -> FnRef {
        idx.all_fns()
            .into_iter()
            .find(|&r| idx.fn_info(r).name == name)
            .expect("fn present")
    }

    #[test]
    fn bare_and_path_calls_resolve_within_the_crate() {
        let files = ws_files(&[(
            "crates/x/src/lib.rs",
            "pub fn helper() {}\n\
             pub struct S;\n\
             impl S { pub fn make() -> S { S } pub fn act(&self) {} }\n\
             pub fn entry() {\n    helper();\n    S::make();\n    not_ours();\n}\n",
        )]);
        let ws = Workspace::build(&files);
        let idx = CrateIndex::build(&ws, "x");
        let names = call_names(&ws, &idx, fn_named(&idx, "entry"));
        assert_eq!(names, vec!["helper", "make"], "unknown names produce no edge");
    }

    #[test]
    fn method_calls_resolve_through_receiver_types() {
        let files = ws_files(&[(
            "crates/x/src/lib.rs",
            "pub struct Pool;\n\
             impl Pool { pub fn submit(&self) {} pub fn new() -> Pool { Pool } }\n\
             pub fn via_param(p: &Pool) { p.submit(); }\n\
             pub fn via_let() { let p = Pool::new(); p.submit(); }\n\
             pub fn via_annotation(q: u8) { let p: Pool = make(q); p.submit(); }\n\
             fn make(_q: u8) -> Pool { Pool }\n",
        )]);
        let ws = Workspace::build(&files);
        let idx = CrateIndex::build(&ws, "x");
        for f in ["via_param", "via_let", "via_annotation"] {
            let names = call_names(&ws, &idx, fn_named(&idx, f));
            assert!(
                names.contains(&"submit".to_string()),
                "{f} resolves p.submit() (got {names:?})"
            );
        }
    }

    #[test]
    fn field_chains_resolve_through_struct_facts() {
        let files = ws_files(&[(
            "crates/x/src/lib.rs",
            "pub struct Inner;\n\
             impl Inner { pub fn go(&self) {} }\n\
             pub struct Outer { pub inner: Inner }\n\
             impl Outer { pub fn run(&self) { self.inner.go(); } }\n",
        )]);
        let ws = Workspace::build(&files);
        let idx = CrateIndex::build(&ws, "x");
        let names = call_names(&ws, &idx, fn_named(&idx, "run"));
        assert_eq!(names, vec!["go"], "self.inner.go() follows the field type");
    }

    #[test]
    fn self_path_calls_resolve_to_the_impl_type() {
        let files = ws_files(&[(
            "crates/x/src/lib.rs",
            "pub struct S;\n\
             impl S { fn helper() {} pub fn entry(&self) { Self::helper(); } }\n",
        )]);
        let ws = Workspace::build(&files);
        let idx = CrateIndex::build(&ws, "x");
        let names = call_names(&ws, &idx, fn_named(&idx, "entry"));
        assert_eq!(names, vec!["helper"]);
    }

    #[test]
    fn macros_and_ambiguous_names_produce_no_edges() {
        let files = ws_files(&[
            ("crates/x/src/a.rs", "pub fn lock() {}\n"),
            ("crates/x/src/b.rs", "pub fn lock() {}\n"),
            (
                "crates/x/src/lib.rs",
                "pub mod a;\npub mod b;\n\
                 pub fn entry() {\n    println!(\"x\");\n    lock();\n}\n",
            ),
        ]);
        let ws = Workspace::build(&files);
        let idx = CrateIndex::build(&ws, "x");
        let names = call_names(&ws, &idx, fn_named(&idx, "entry"));
        assert!(names.is_empty(), "macro skipped, ambiguous `lock` dropped: {names:?}");
    }

    #[test]
    fn nested_fn_bodies_are_not_attributed_to_the_outer_fn() {
        let files = ws_files(&[(
            "crates/x/src/lib.rs",
            "pub fn target() {}\n\
             pub fn outer() {\n    fn inner() { target(); }\n    inner();\n}\n",
        )]);
        let ws = Workspace::build(&files);
        let idx = CrateIndex::build(&ws, "x");
        let outer = call_names(&ws, &idx, fn_named(&idx, "outer"));
        assert_eq!(outer, vec!["inner"], "outer calls inner, not inner's body");
        let inner = call_names(&ws, &idx, fn_named(&idx, "inner"));
        assert_eq!(inner, vec!["target"]);
    }

    #[test]
    fn closure_calls_are_attributed_to_the_enclosing_fn() {
        let files = ws_files(&[(
            "crates/x/src/lib.rs",
            "pub fn target() {}\n\
             pub fn outer(v: u8) { run(move || { target(); }, v); }\n\
             fn run(_f: impl FnOnce(), _v: u8) {}\n",
        )]);
        let ws = Workspace::build(&files);
        let idx = CrateIndex::build(&ws, "x");
        let names = call_names(&ws, &idx, fn_named(&idx, "outer"));
        assert!(names.contains(&"target".to_string()), "deferred work is still reached");
        assert!(names.contains(&"run".to_string()));
    }

    #[test]
    fn crate_of_parses_the_layout() {
        let f = SourceFile::new("crates/serve/src/pool.rs", "", FileKind::RustLibrary);
        assert_eq!(crate_of(&f), Some("serve"));
        let f = SourceFile::new("src/lib.rs", "", FileKind::RustLibrary);
        assert_eq!(crate_of(&f), None);
    }
}
