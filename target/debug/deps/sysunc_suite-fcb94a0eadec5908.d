/root/repo/target/debug/deps/sysunc_suite-fcb94a0eadec5908.d: src/lib.rs

/root/repo/target/debug/deps/libsysunc_suite-fcb94a0eadec5908.rlib: src/lib.rs

/root/repo/target/debug/deps/libsysunc_suite-fcb94a0eadec5908.rmeta: src/lib.rs

src/lib.rs:
