/root/repo/target/debug/deps/sysunc_perception-8cbe8471404dc6d0.d: crates/perception/src/lib.rs crates/perception/src/classifier.rs crates/perception/src/drift.rs crates/perception/src/error.rs crates/perception/src/fusion.rs crates/perception/src/monitor.rs crates/perception/src/world.rs

/root/repo/target/debug/deps/libsysunc_perception-8cbe8471404dc6d0.rmeta: crates/perception/src/lib.rs crates/perception/src/classifier.rs crates/perception/src/drift.rs crates/perception/src/error.rs crates/perception/src/fusion.rs crates/perception/src/monitor.rs crates/perception/src/world.rs

crates/perception/src/lib.rs:
crates/perception/src/classifier.rs:
crates/perception/src/drift.rs:
crates/perception/src/error.rs:
crates/perception/src/fusion.rs:
crates/perception/src/monitor.rs:
crates/perception/src/world.rs:
