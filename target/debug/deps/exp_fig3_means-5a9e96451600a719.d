/root/repo/target/debug/deps/exp_fig3_means-5a9e96451600a719.d: crates/bench/src/bin/exp_fig3_means.rs

/root/repo/target/debug/deps/exp_fig3_means-5a9e96451600a719: crates/bench/src/bin/exp_fig3_means.rs

crates/bench/src/bin/exp_fig3_means.rs:
