//! Rule `panic`: shipped library code must not contain the aborting
//! constructs `.unwrap()`, `.expect(`, `panic!`, `todo!` or
//! `unimplemented!`. Tests, benches, examples and binaries are exempt,
//! as are `#[cfg(test)]` modules inside library files.
//!
//! Rationale: a library that can abort turns a recoverable modeling
//! error into a process death — the caller loses the chance to treat
//! the failure as (epistemic) information. Fallible paths must return
//! `Result`. Where a panic is provably unreachable or intentional, the
//! line takes `// tidy: allow(panic)` so the decision is visible.
//!
//! Detection is token-based: an `unwrap` mentioned in a string literal
//! or a comment is a string or a comment, not a call, and cannot fire.

use crate::lexer::TokenKind;
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct PanicFreedom;

/// Macros that abort unconditionally when reached.
const ABORT_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

impl Lint for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic"
    }

    fn explain(&self) -> &'static str {
        "Library code must not contain `.unwrap()`, `.expect(...)`, `panic!`, \
         `todo!` or `unimplemented!`. An aborting construct turns a recoverable \
         modeling error into process death, taking away the caller's chance to \
         treat the failure as information; fallible paths return `Result`. \
         Tests, benches, examples, binaries and `#[cfg(test)]` modules are \
         exempt. A provably unreachable panic is acknowledged with \
         `// tidy: allow(panic)` so the decision stays visible."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let tokens = file.tokens();
        let mut fire = |line: usize, what: &str| {
            out.push(Violation {
                file: file.path.clone(),
                line,
                rule: self.name(),
                resolution: "token",
                message: format!(
                    "found `{what}` in library code; return a Result or \
                     acknowledge with `// tidy: allow(panic)`"
                ),
            });
        };
        for (i, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.in_test_block(t.line) {
                continue;
            }
            let text = file.text(t);
            let mut c = file.cursor();
            c.seek(i + 1);
            match text {
                // `.unwrap()` — the method call, with no arguments.
                "unwrap"
                    if prev_is_dot(file, i)
                        && c.eat_punct("(")
                        && c.eat_punct(")") =>
                {
                    fire(t.line, "unwrap")
                }
                // `.expect(` — the method call (not `expect_err` etc.,
                // which is a different identifier token).
                "expect" if prev_is_dot(file, i) && c.eat_punct("(") => fire(t.line, "expect"),
                m if ABORT_MACROS.contains(&m) && c.eat_punct("!") => {
                    fire(t.line, &format!("{m}!"))
                }
                _ => {}
            }
        }
    }
}

/// True when the significant token before index `i` is a `.` (so the
/// identifier at `i` is a method name, not a free function).
fn prev_is_dot(file: &SourceFile, i: usize) -> bool {
    file.tokens()[..i]
        .iter()
        .rev()
        .find(|t| !t.is_comment())
        .map(|t| t.kind == TokenKind::Punct && file.text(t) == ".")
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/lib.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        PanicFreedom.check(&file, &mut out);
        out
    }

    #[test]
    fn each_forbidden_construct_fires() {
        let bad = "\
fn a() { x.unwrap(); }
fn b() { x.expect(\"msg\"); }
fn c() { panic!(\"no\"); }
fn d() { todo!() }
fn e() { unimplemented!() }
";
        let out = run(bad);
        assert_eq!(out.len(), 5);
        assert_eq!(out.iter().map(|v| v.line).collect::<Vec<_>>(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn cfg_test_modules_and_comments_are_exempt() {
        let src = "\
fn shipped() -> Option<()> { Some(()) }
// a comment may say .unwrap() freely
#[cfg(test)]
mod tests {
    #[test]
    fn t() { shipped().unwrap(); }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn strings_mentioning_panics_do_not_fire() {
        // The textual gate's false-positive class: forbidden constructs
        // quoted inside string literals are data, not code.
        let src = "\
const HELP: &str = \"call .unwrap() at your peril\";
const DOCS: &str = \"panic! and todo! are forbidden\";
fn f() -> String { format!(\"x.expect(msg)\") }
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn test_files_are_not_checked() {
        let file =
            SourceFile::new("tests/t.rs", "fn t() { x.unwrap(); }", FileKind::RustTest);
        assert!(!PanicFreedom.applies(file.kind));
    }

    #[test]
    fn expect_err_is_not_expect() {
        assert!(run("fn a() { let e = r.expect_err(\"want error\"); }").is_empty());
    }

    #[test]
    fn free_functions_named_unwrap_do_not_fire() {
        // Only the method-call form `.unwrap()` aborts; a local helper
        // named `unwrap` (or a path call) is not the forbidden construct.
        assert!(run("fn unwrap() {}\nfn g() { unwrap(); }\n").is_empty());
    }

    #[test]
    fn multiline_calls_still_fire() {
        let src = "fn a() { x\n    .unwrap\n    (\n    ); }\n";
        assert_eq!(run(src).len(), 1);
    }
}
