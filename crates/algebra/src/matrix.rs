//! Dense row-major matrix type.

use crate::error::{AlgebraError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense `rows × cols` matrix of `f64`, stored row-major.
///
/// Sized for the needs of uncertainty propagation (regression design
/// matrices, covariance factors, BN-sized linear systems) — hundreds to a
/// few thousand rows — not for HPC-scale linear algebra.
///
/// # Examples
///
/// ```
/// use sysunc_algebra::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = a.transpose();
/// assert_eq!(b[(0, 1)], 3.0);
/// # Ok::<(), sysunc_algebra::AlgebraError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "Matrix::zeros: dimensions must be positive");
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DimensionMismatch`] when the rows differ in
    /// length or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(AlgebraError::DimensionMismatch("empty matrix".into()));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(AlgebraError::DimensionMismatch(format!(
                    "row length {} != {}",
                    r.len(),
                    cols
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Self { rows: rows.len(), cols, data })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DimensionMismatch`] if `data.len() != rows *
    /// cols` or a dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if rows == 0 || cols == 0 || data.len() != rows * cols {
            return Err(AlgebraError::DimensionMismatch(format!(
                "{}x{} matrix needs {} entries, got {}",
                rows,
                cols,
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// A view of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "Matrix::row: index out of range");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "Matrix::col: index out of range");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DimensionMismatch`] when `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(AlgebraError::DimensionMismatch(format!(
                "mul_vec: matrix has {} cols, vector has {}",
                self.cols,
                x.len()
            )));
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// `A^T A` (Gram matrix), used by least squares.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.cols {
            for j in i..self.cols {
                let mut acc = 0.0;
                for k in 0..self.rows {
                    acc += self[(k, i)] * self[(k, j)];
                }
                g[(i, j)] = acc;
                g[(j, i)] = acc;
            }
        }
        g
    }

    /// `A^T b`.
    ///
    /// # Errors
    ///
    /// Returns [`AlgebraError::DimensionMismatch`] when `b.len() != rows`.
    pub fn transpose_mul_vec(&self, b: &[f64]) -> Result<Vec<f64>> {
        if b.len() != self.rows {
            return Err(AlgebraError::DimensionMismatch(format!(
                "transpose_mul_vec: matrix has {} rows, vector has {}",
                self.rows,
                b.len()
            )));
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            let bi = b[i];
            for j in 0..self.cols {
                out[j] += self[(i, j)] * bi;
            }
        }
        Ok(out)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "Matrix index out of range");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "Matrix index out of range");
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert!(
            self.rows == rhs.rows && self.cols == rhs.cols,
            "Matrix add: shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a + b).collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert!(
            self.rows == rhs.rows && self.cols == rhs.cols,
            "Matrix sub: shape mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect(),
        }
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: &Matrix) -> Matrix {
        assert!(self.cols == rhs.rows, "Matrix mul: inner dimensions disagree");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 { // tidy: allow(float-eq)
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += aik * rhs[(k, j)];
                }
            }
        }
        out
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|x| x * s).collect(),
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:12.6}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(&a * &i, a);
        assert_eq!(&i * &a, a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = &a * &b;
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap());
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn mul_vec_and_gram() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]]).unwrap();
        assert_eq!(a.mul_vec(&[2.0, 3.0]).unwrap(), vec![2.0, 5.0, 8.0]);
        assert!(a.mul_vec(&[1.0]).is_err());
        let g = a.gram();
        assert_eq!(g, Matrix::from_rows(&[&[3.0, 3.0], &[3.0, 5.0]]).unwrap());
        assert_eq!(a.transpose_mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 3.0]);
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, -4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        let sum = &a + &b;
        assert_eq!(sum[(0, 0)], 2.0);
        let diff = &sum - &b;
        assert_eq!(diff, a);
        let scaled = &a * 2.0;
        assert_eq!(scaled[(1, 1)], 8.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn index_out_of_range_panics() {
        let a = Matrix::identity(2);
        let _ = a[(2, 0)];
    }
}
