//! Integration test: exact reproduction of the paper's Table I and the
//! quantities it implies (experiment E1), cross-checked between the exact
//! variable-elimination engine, likelihood-weighted sampling, the
//! evidential network, and a hand-computed joint table.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::bayesnet::likelihood_weighting;
use sysunc::casestudy::{
    ground_truth_prior, paper_bayes_net, paper_evidential_network, table1_cpt,
};
use sysunc::prob::info::JointTable;

#[test]
fn table1_cpt_matches_paper_verbatim() {
    let t = table1_cpt();
    assert_eq!(t[0], [0.9, 0.005, 0.05, 0.045]);
    assert_eq!(t[1], [0.005, 0.9, 0.05, 0.045]);
    assert_eq!(t[2], [0.0, 0.0, 0.2, 0.7]);
    assert_eq!(ground_truth_prior(), [0.6, 0.3, 0.1]);
}

#[test]
fn perception_marginal_exact_values() {
    let bn = paper_bayes_net().expect("paper network builds");
    let m = bn.marginal("perception", &[]).expect("marginal query");
    // Hand computation with the renormalized unknown row [0, 0, 2/9, 7/9]:
    let expect = [
        0.6 * 0.9 + 0.3 * 0.005,
        0.6 * 0.005 + 0.3 * 0.9,
        0.6 * 0.05 + 0.3 * 0.05 + 0.1 * (2.0 / 9.0),
        0.6 * 0.045 + 0.3 * 0.045 + 0.1 * (7.0 / 9.0),
    ];
    for (got, want) in m.iter().zip(expect) {
        assert!((got - want).abs() < 1e-14, "{got} vs {want}");
    }
    assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
}

#[test]
fn posteriors_match_joint_table_bayes() {
    // Cross-check variable elimination against the standalone joint-table
    // implementation in sysunc-prob.
    let bn = paper_bayes_net().expect("paper network builds");
    let mut cpt: Vec<Vec<f64>> = table1_cpt().iter().map(|r| r.to_vec()).collect();
    let s: f64 = cpt[2].iter().sum();
    for v in &mut cpt[2] {
        *v /= s;
    }
    let joint = JointTable::from_prior_and_conditional(&ground_truth_prior(), &cpt)
        .expect("valid joint");
    for (j, state) in ["car", "pedestrian", "car_pedestrian", "none"].iter().enumerate() {
        let ve = bn.marginal("ground_truth", &[("perception", state)]).expect("query");
        let jt = joint.posterior_x_given_y(j).expect("positive column");
        for (a, b) in ve.iter().zip(&jt) {
            assert!((a - b).abs() < 1e-12, "{state}: {a} vs {b}");
        }
    }
}

#[test]
fn likelihood_weighting_cross_checks_exact_engine() {
    let bn = paper_bayes_net().expect("paper network builds");
    let gt = bn.node_id("ground_truth").expect("node exists");
    let perc = bn.node_id("perception").expect("node exists");
    let none_state = bn.state_id(perc, "none").expect("state exists");
    let exact = bn.marginal("ground_truth", &[("perception", "none")]).expect("query");
    let mut rng = StdRng::seed_from_u64(314);
    let approx = likelihood_weighting(&bn, gt, &[(perc, none_state)], 300_000, &mut rng)
        .expect("sampler runs");
    for (e, a) in exact.iter().zip(&approx) {
        assert!((e - a).abs() < 0.01, "exact {e} vs sampled {a}");
    }
}

#[test]
fn evidential_reading_brackets_bayesian_reading() {
    // For every perception singleton, the Bayesian probability (with the
    // renormalized unknown row) must lie within [Bel, Pl] of the
    // evidential reading whenever the evidential model assigns the
    // leftover 0.1 to Θ.
    let bn = paper_bayes_net().expect("builds");
    let ev = paper_evidential_network().expect("builds");
    let m_bn = bn.marginal("perception", &[]).expect("marginal");
    let mass = ev.network.query(ev.perception, &[]).expect("query");
    // Bayesian "car" probability vs evidential car bounds. (The Bayesian
    // car_pedestrian state is split epistemic mass, so compare only the
    // direct singletons.)
    let car = ev.perception_frame.singleton("car").expect("in frame");
    let ped = ev.perception_frame.singleton("pedestrian").expect("in frame");
    assert!(mass.belief(car) <= m_bn[0] + 1e-12);
    assert!(m_bn[0] <= mass.plausibility(car) + 1e-12);
    assert!(mass.belief(ped) <= m_bn[1] + 1e-12);
    assert!(m_bn[1] <= mass.plausibility(ped) + 1e-12);
}

#[test]
fn unknown_dominates_none_output_diagnosis() {
    // The paper's punchline for uncertainty removal: a "none" output is
    // evidence of an unmodeled object.
    let bn = paper_bayes_net().expect("builds");
    let post = bn.marginal("ground_truth", &[("perception", "none")]).expect("query");
    assert!(post[2] > 0.6, "unknown posterior {post:?}");
    // And a confident label almost excludes the unknown.
    let post_car = bn.marginal("ground_truth", &[("perception", "car")]).expect("query");
    assert!(post_car[2] < 1e-10);
}
