//! # sysunc-evidence — imprecise probability
//!
//! Epistemic- and ontological-uncertainty representations for the `sysunc`
//! toolkit (reproduction of Gansch & Adee, *System Theoretic View on
//! Uncertainties*, DATE 2020). The paper's Sec. V-B proposes safety
//! analysis "based on evidence theory \[36\] in combination with Bayesian
//! networks \[8\]"; this crate supplies the evidence-theory half:
//!
//! - [`Interval`] — conservative interval arithmetic for scalar epistemic
//!   bounds.
//! - [`Frame`] / [`MassFunction`] — Dempster–Shafer belief functions:
//!   `Bel`/`Pl`, Dempster and Yager combination, discounting, pignistic
//!   transform. Mass on non-singletons is epistemic indecision; mass on the
//!   whole frame is (ontological) ignorance.
//! - [`DsStructure`] — Dempster–Shafer structures on ℝ (probability
//!   boxes): mixed aleatory+epistemic propagation with guaranteed
//!   enclosure.
//! - [`FuzzyNumber`] — α-cut fuzzy arithmetic for fuzzy fault tree analysis
//!   (the paper's reference \[34\]).
//!
//! ```
//! use sysunc_evidence::{Frame, MassFunction};
//!
//! // A classifier report that cannot tell car from pedestrian:
//! let frame = Frame::new(vec!["car", "pedestrian", "unknown"])?;
//! let report = MassFunction::from_focal(&frame, vec![
//!     (frame.singleton("car")?, 0.6),
//!     (frame.subset(&["car", "pedestrian"])?, 0.3), // epistemic indecision
//!     (frame.theta(), 0.1),                          // ontological reserve
//! ])?;
//! let car = frame.singleton("car")?;
//! assert!(report.belief(car) < report.plausibility(car));
//! # Ok::<(), sysunc_evidence::EvidenceError>(())
//! ```

mod combination;
mod error;
mod fuzzy;
mod interval;
mod mass;
mod pbox;

pub use combination::{combine_murphy, pignistic_entropy, weight_of_conflict};
pub use error::{EvidenceError, Result};
pub use fuzzy::FuzzyNumber;
pub use interval::Interval;
pub use mass::{Frame, MassFunction};
pub use pbox::{propagate_model, DsStructure};
