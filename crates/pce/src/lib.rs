//! # sysunc-pce — polynomial chaos expansions
//!
//! Spectral uncertainty propagation for the `sysunc` toolkit (reproduction
//! of Gansch & Adee, *System Theoretic View on Uncertainties*, DATE 2020).
//! Polynomial chaos turns a deterministic model plus aleatory input
//! distributions (paper Sec. III-A) into an inexpensive surrogate whose
//! mean, variance and Sobol' sensitivity indices are read directly off the
//! coefficients — the quantitative backbone of uncertainty *forecasting*
//! (Sec. IV).
//!
//! - [`PceInput`] — physical inputs paired with Wiener–Askey germs
//!   (normal↔Hermite, uniform↔Legendre, exponential↔Laguerre,
//!   beta↔Jacobi).
//! - [`multiindex`] — total-degree and hyperbolic-cross basis sets.
//! - [`quadrature`] — full tensor and Smolyak sparse grids.
//! - [`ChaosExpansion`] — projection / sparse-projection / regression
//!   fitting, evaluation, moments and Sobol' indices.
//!
//! ```
//! use sysunc_pce::{ChaosExpansion, PceInput};
//!
//! // Y = X², X ~ N(0,1): mean 1, variance 2 — recovered exactly at
//! // degree 2.
//! let inputs = [PceInput::Normal { mu: 0.0, sigma: 1.0 }];
//! let pce = ChaosExpansion::fit_projection(&inputs, 2, |x| x[0] * x[0])?;
//! assert!((pce.mean() - 1.0).abs() < 1e-10);
//! assert!((pce.variance() - 2.0).abs() < 1e-9);
//! # Ok::<(), sysunc_pce::PceError>(())
//! ```

mod error;
mod expansion;
mod input;
pub mod multiindex;
pub mod quadrature;

pub use error::{PceError, Result};
pub use expansion::ChaosExpansion;
pub use input::PceInput;
