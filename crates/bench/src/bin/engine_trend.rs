//! Folds an engine throughput document into the engine trend
//! trajectory and trips on kernel regressions.
//!
//! ```text
//! engine_trend [--in BENCH_engine.json] [--out BENCH_engine_trend.json]
//!              [--baseline engine.baseline] [--write-baseline]
//!              [--min-ratio 0.8] [--min-speedup 2.0]
//!              [--fail-on-regression]
//! ```
//!
//! Reads a `sysunc-bench-engine/1` document, appends one
//! `sysunc-bench-engine-trend/1` record to `--out`, and checks two
//! invariants:
//!
//! - the chunked struct-of-arrays path must hold at least
//!   `--min-speedup` (default 2.0) over the scalar reference path for
//!   the Monte Carlo and Latin hypercube engines on every paper model —
//!   the headline claim of the batch-kernel restructuring;
//! - no `engine/model` row may drop below `--min-ratio` (default 0.8,
//!   i.e. a >20% regression) of the baseline's chunked throughput, and
//!   no baseline row may disappear.
//!
//! Findings always print; the process exits non-zero only under
//! `--fail-on-regression`, so ad-hoc runs on loaded machines stay
//! informative without tripping. When the baseline file does not exist
//! yet (first run on a machine), the current document is written as the
//! new baseline and the ratio check passes vacuously;
//! `--write-baseline` forces that refresh.

use std::process::ExitCode;
use sysunc::prob::json::parse;
use sysunc_bench::trend::{
    chunked_speedup_shortfall, engine_regressions, engine_summaries, engine_trend_record,
};

/// The engines whose chunked kernels must earn their keep. The QMC and
/// analytic engines are trended (ratio check) but not held to the
/// speedup floor here — Sobol comfortably exceeds it in practice, while
/// the spectral and evidential rows have no scalar/chunked split.
const SPEEDUP_ENGINES: [&str; 2] = ["monte-carlo", "latin-hypercube"];

struct Args {
    input: String,
    out: String,
    baseline: String,
    write_baseline: bool,
    min_ratio: f64,
    min_speedup: f64,
    fail_on_regression: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed = Args {
        input: "BENCH_engine.json".into(),
        out: "BENCH_engine_trend.json".into(),
        baseline: "engine.baseline".into(),
        write_baseline: false,
        min_ratio: 0.8,
        min_speedup: 2.0,
        fail_on_regression: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--in" => parsed.input = value("--in")?,
            "--out" => parsed.out = value("--out")?,
            "--baseline" => parsed.baseline = value("--baseline")?,
            "--write-baseline" => parsed.write_baseline = true,
            "--fail-on-regression" => parsed.fail_on_regression = true,
            "--min-ratio" => {
                parsed.min_ratio = value("--min-ratio")?
                    .parse()
                    .map_err(|e| format!("--min-ratio: {e}"))?
            }
            "--min-speedup" => {
                parsed.min_speedup = value("--min-speedup")?
                    .parse()
                    .map_err(|e| format!("--min-speedup: {e}"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(parsed)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("engine_trend: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let text = match std::fs::read_to_string(&args.input) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("engine_trend: cannot read {}: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("engine_trend: {} is not valid JSON: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let summaries = match engine_summaries(&doc) {
        Ok(summaries) => summaries,
        Err(e) => {
            eprintln!("engine_trend: {} is not an engine document: {e}", args.input);
            return ExitCode::FAILURE;
        }
    };
    let record = match engine_trend_record(&doc) {
        Ok(record) => record,
        Err(e) => {
            eprintln!("engine_trend: cannot fold the document: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("{record}");
    let mut appended = std::fs::read_to_string(&args.out).unwrap_or_default();
    if !appended.is_empty() && !appended.ends_with('\n') {
        appended.push('\n');
    }
    appended.push_str(&record);
    appended.push('\n');
    if let Err(e) = std::fs::write(&args.out, appended) {
        eprintln!("engine_trend: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }

    // The speedup floor holds regardless of any baseline.
    let mut findings = chunked_speedup_shortfall(&summaries, &SPEEDUP_ENGINES, args.min_speedup);

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(text) if !args.write_baseline => Some(text),
        _ => None,
    };
    match baseline_text {
        Some(text) => {
            let baseline = match parse(&text).ok().as_ref().map(engine_summaries) {
                Some(Ok(baseline)) => baseline,
                _ => {
                    eprintln!(
                        "engine_trend: {} is not an engine document; refresh it with \
                         --write-baseline",
                        args.baseline
                    );
                    return ExitCode::FAILURE;
                }
            };
            findings.extend(engine_regressions(&summaries, &baseline, args.min_ratio));
        }
        None => {
            if let Err(e) = std::fs::write(&args.baseline, &text) {
                eprintln!("engine_trend: cannot write baseline {}: {e}", args.baseline);
                return ExitCode::FAILURE;
            }
            println!("engine_trend: wrote new baseline {}", args.baseline);
        }
    }

    if findings.is_empty() {
        println!(
            "engine_trend: ok — {} row(s), speedup floor {:.1}x held",
            summaries.len(),
            args.min_speedup
        );
        return ExitCode::SUCCESS;
    }
    for finding in &findings {
        eprintln!("engine_trend: FAIL: {finding}");
    }
    if args.fail_on_regression {
        ExitCode::FAILURE
    } else {
        eprintln!("engine_trend: findings are advisory without --fail-on-regression");
        ExitCode::SUCCESS
    }
}
