//! Round-trip serialization of the model artifacts a team would persist:
//! Bayesian networks, fault trees, mass functions, budgets and the
//! uncertainty register — through the in-tree `sysunc_prob::json` module
//! (no external serialization dependency).

use sysunc::budget::UncertaintyBudget;
use sysunc::casestudy::paper_bayes_net;
use sysunc::evidence::{Frame, Interval, MassFunction};
use sysunc::fta::{FaultTree, GateKind};
use sysunc::register::{MitigationStatus, UncertaintyRegister};
use sysunc::taxonomy::{Means, UncertaintyKind};
use sysunc_prob::json;

#[test]
fn bayes_net_round_trips_through_json() {
    let bn = paper_bayes_net().expect("builds");
    let text = json::to_string(&bn);
    let back: sysunc::bayesnet::BayesNet = json::from_str(&text).expect("deserializes");
    assert_eq!(bn, back);
    // The deserialized network answers queries identically.
    let a = bn.marginal("ground_truth", &[("perception", "none")]).expect("query");
    let b = back.marginal("ground_truth", &[("perception", "none")]).expect("query");
    assert_eq!(a, b);
}

#[test]
fn fault_tree_round_trips_through_json() {
    let mut ft = FaultTree::new();
    let a = ft.add_basic_event("a", 0.01).expect("valid");
    let b = ft.add_basic_event("b", 0.02).expect("valid");
    let g = ft.add_gate("g", GateKind::KOfN(1), vec![a, b]).expect("valid");
    ft.set_top(g).expect("valid");
    let text = json::to_string_pretty(&ft);
    let back: FaultTree = json::from_str(&text).expect("deserializes");
    assert_eq!(ft, back);
    assert_eq!(
        ft.top_probability_exact().expect("small"),
        back.top_probability_exact().expect("small")
    );
}

#[test]
fn mass_function_round_trips_through_json() {
    let frame = Frame::new(vec!["car", "pedestrian", "unknown"]).expect("valid");
    let m = MassFunction::from_focal(
        &frame,
        vec![
            (frame.singleton("car").expect("in frame"), 0.6),
            (frame.subset(&["car", "pedestrian"]).expect("in frame"), 0.3),
            (frame.theta(), 0.1),
        ],
    )
    .expect("valid");
    let text = json::to_string(&m);
    let back: MassFunction = json::from_str(&text).expect("deserializes");
    // `from_focal` renormalizes, so the round trip is exact only up to
    // one floating-point normalization; compare with a tight tolerance.
    for set in 0..=frame.theta() {
        assert!((m.mass(set) - back.mass(set)).abs() < 1e-12, "mass differs on {set:b}");
    }
    let car = frame.singleton("car").expect("in frame");
    assert!((m.belief(car) - back.belief(car)).abs() < 1e-12);
    assert!((m.plausibility(car) - back.plausibility(car)).abs() < 1e-12);
}

#[test]
fn interval_budget_and_register_round_trip() {
    let iv = Interval::new(0.25, 0.75).expect("ordered");
    let iv2: Interval = json::from_str(&json::to_string(&iv)).expect("de");
    assert_eq!(iv, iv2);

    let budget = UncertaintyBudget::new(0.1, 0.02, 0.001).expect("valid");
    let b2: UncertaintyBudget = json::from_str(&json::to_string(&budget)).expect("de");
    assert_eq!(budget, b2);
    assert_eq!(b2.dominant(), UncertaintyKind::Aleatory);

    let mut reg = UncertaintyRegister::new();
    reg.add("U1", "here", "thing", UncertaintyKind::Ontological).expect("valid");
    reg.assign("U1", Means::Forecasting).expect("known");
    reg.set_status("U1", MitigationStatus::AcceptedResidual).expect("assigned");
    let r2: UncertaintyRegister = json::from_str(&json::to_string(&reg)).expect("de");
    assert_eq!(reg, r2);
    assert!(r2.release_ready());
}

#[test]
fn malformed_artifacts_are_rejected_not_trusted() {
    // A CPT that no longer normalizes must fail to load: deserialization
    // goes through the validating constructors (uncertainty *prevention*
    // applied to our own persistence layer).
    let bad_bn = r#"{"nodes": [{"name": "n", "states": ["a", "b"],
                     "parents": [], "cpt": [[0.9, 0.2]]}]}"#;
    assert!(json::from_str::<sysunc::bayesnet::BayesNet>(bad_bn).is_err());

    // An interval with lo > hi must fail to load.
    assert!(json::from_str::<Interval>(r#"{"lo": 2.0, "hi": 1.0}"#).is_err());

    // A gate referencing a missing node must fail to load.
    let bad_ft = r#"{"basic": [], "gates": [{"name": "g", "kind": "and",
                     "inputs": [{"basic": 3}]}], "top": null}"#;
    assert!(json::from_str::<FaultTree>(bad_ft).is_err());

    // Plain JSON syntax errors surface as errors, not panics.
    assert!(json::from_str::<Interval>("{\"lo\": ").is_err());
}

#[test]
fn escaped_strings_round_trip_exactly() {
    // Every escape class the grammar knows: the two-character escapes,
    // a \u BMP scalar, and a surrogate pair for an astral code point.
    let parsed = json::parse(r#""q\" b\\ s\/ n\n t\t r\r b\b f\f eé g😀""#)
        .expect("parses");
    let text = parsed.as_str().expect("is a string");
    assert_eq!(text, "q\" b\\ s/ n\n t\t r\r b\u{8} f\u{c} e\u{e9} g\u{1F600}");
    // Emitting and reparsing lands on the same string (the emitter may
    // pick different-but-equivalent escapes).
    let again = json::parse(&parsed.emit()).expect("reparses");
    assert_eq!(parsed, again);

    // Broken escapes are rejected, not guessed at.
    assert!(json::parse(r#""\x""#).is_err(), "unknown escape");
    assert!(json::parse(r#""\u12""#).is_err(), "truncated hex");
    assert!(json::parse(r#""\ud83d""#).is_err(), "unpaired high surrogate");
    assert!(json::parse("\"raw\ncontrol\"").is_err(), "unescaped control char");
}

#[test]
fn nesting_depth_is_bounded_not_stack_fatal() {
    // The parser guards recursion with a fixed depth cap (128): a
    // document at the cap parses, one past it is an error — never a
    // stack overflow.
    let deep = |n: usize| format!("{}0{}", "[".repeat(n), "]".repeat(n));
    assert!(json::parse(&deep(128)).is_ok(), "at the cap parses");
    assert!(json::parse(&deep(129)).is_err(), "past the cap is a clean error");
    let objs =
        |n: usize| format!("{}1{}", "{\"k\":".repeat(n), "}".repeat(n));
    assert!(json::parse(&objs(128)).is_ok());
    assert!(json::parse(&objs(129)).is_err());
}

#[test]
fn duplicate_keys_resolve_to_the_first_binding() {
    // Member order is preserved and `get` finds the first match, so
    // duplicate keys are deterministic (first wins) rather than
    // silently last-wins or an error — pinned here so a parser change
    // cannot flip decode behavior unnoticed.
    let v = json::parse(r#"{"a": 1, "a": 2, "b": 3}"#).expect("parses");
    assert_eq!(v.get("a").and_then(json::Json::as_u64), Some(1));
    assert_eq!(v.get("b").and_then(json::Json::as_u64), Some(3));
}

#[test]
fn non_finite_numbers_are_rejected_on_both_paths() {
    // JSON has no NaN/Infinity literals; the parser refuses them…
    for bad in ["NaN", "Infinity", "-Infinity", "[1, NaN]", r#"{"x": Infinity}"#] {
        assert!(json::parse(bad).is_err(), "`{bad}` must not parse");
    }
    // …and the strict wire writer refuses to *produce* them, rather
    // than degrading to null like the tree emitter.
    let mut w = json::writer::JsonWriter::new();
    w.begin_array().f64(f64::NAN).end_array();
    assert!(w.finish().is_err(), "strict writer rejects NaN");
    let mut w = json::writer::JsonWriter::new();
    w.begin_array().f64(f64::INFINITY).end_array();
    assert!(w.finish().is_err(), "strict writer rejects Infinity");
}

#[test]
fn propagation_reports_round_trip_bit_identically_for_every_engine() {
    // The serving wire format must not perturb results: for every
    // registered engine, serialize the report the engine produced and
    // decode it back — equality is exact (f64 emission uses the
    // shortest round-tripping representation), including the optional
    // exceedance interval and every quantile bound.
    use sysunc::{engine_by_name, PropagationReport, PropagationRequest, UncertainInput, ENGINE_NAMES};
    let model = |x: &[f64]| x[0] * x[0] + 3.0 * x[1];
    for name in ENGINE_NAMES {
        let engine = engine_by_name(name).expect("registered engine");
        let inputs = vec![
            UncertainInput::Normal { mu: 1.0, sigma: 0.5 },
            UncertainInput::Uniform { a: 0.0, b: 2.0 },
        ];
        let request = PropagationRequest::new(inputs, &model)
            .expect("valid request")
            .with_budget(512)
            .with_seed(2020)
            .with_threshold(2.5);
        let report = engine.propagate(&request).expect("propagates");
        let text = json::to_string(&report);
        let back: PropagationReport = json::from_str(&text).expect("decodes");
        assert_eq!(report, back, "wire round-trip differs for `{name}`");
    }
}
