//! Synthetic operational domain: a long-tailed world model of object
//! encounters.
//!
//! The paper develops its Fig. 4 example against an "open context": the
//! developing organization models only the classes it knows (car,
//! pedestrian) and reserves probability for the unknown. This module is
//! the *reality* that model faces: a world with a known head and a Zipf
//! long tail of novel classes — the "long furry tail of unlikely events"
//! of the paper's references \[30\]\[31\].

use crate::error::{PerceptionError, Result};
use sysunc_prob::rng::RngCore;
use sysunc_prob::dist::Categorical;

/// Ground truth of one encounter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Truth {
    /// One of the classes the developers modeled (index into the known
    /// list).
    Known(usize),
    /// A class outside the model — an ontological event (tail index).
    Novel(usize),
}

impl Truth {
    /// Whether this encounter is outside the modeled class set.
    pub fn is_novel(&self) -> bool {
        matches!(self, Truth::Novel(_))
    }
}

/// The world: known classes with probabilities, plus a Zipf tail of novel
/// classes carrying a fixed total probability mass.
///
/// # Examples
///
/// The paper's running numbers: `P(car) = 0.6, P(pedestrian) = 0.3,
/// P(unknown) = 0.1`, with the unknown mass spread over a long tail.
///
/// ```
/// use sysunc_prob::rng::SeedableRng;
/// use sysunc_perception::WorldModel;
/// let world = WorldModel::new(
///     vec!["car".into(), "pedestrian".into()],
///     vec![0.6, 0.3],
///     0.1,      // total novel mass
///     1_000,    // latent novel classes
///     1.1,      // Zipf exponent
/// )?;
/// let mut rng = sysunc_prob::rng::StdRng::seed_from_u64(1);
/// let t = world.sample(&mut rng);
/// let _ = t.is_novel();
/// # Ok::<(), sysunc_perception::PerceptionError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorldModel {
    known: Vec<String>,
    known_probs: Vec<f64>,
    novel_mass: f64,
    top: Categorical,
    tail: Categorical,
}

impl WorldModel {
    /// Creates a world model.
    ///
    /// `known_probs` are the *absolute* probabilities of each known class;
    /// together with `novel_mass` they must sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::InvalidWorld`] for inconsistent
    /// probabilities, empty classes, or bad tail parameters.
    pub fn new(
        known: Vec<String>,
        known_probs: Vec<f64>,
        novel_mass: f64,
        novel_classes: usize,
        zipf_exponent: f64,
    ) -> Result<Self> {
        if known.is_empty() || known.len() != known_probs.len() {
            return Err(PerceptionError::InvalidWorld(
                "known classes and probabilities must be non-empty and aligned".into(),
            ));
        }
        if !(0.0..1.0).contains(&novel_mass) {
            return Err(PerceptionError::InvalidWorld(format!(
                "novel mass must be in [0, 1), got {novel_mass}"
            )));
        }
        if novel_classes == 0 || zipf_exponent <= 0.0 {
            return Err(PerceptionError::InvalidWorld(
                "need novel_classes > 0 and zipf_exponent > 0".into(),
            ));
        }
        let total: f64 = known_probs.iter().sum::<f64>() + novel_mass;
        if (total - 1.0).abs() > 1e-9 {
            return Err(PerceptionError::InvalidWorld(format!(
                "probabilities sum to {total}, expected 1"
            )));
        }
        // Top-level choice: known classes ++ [novel].
        let mut top_probs = known_probs.clone();
        top_probs.push(novel_mass);
        let top = Categorical::new(top_probs)
            .map_err(|e| PerceptionError::InvalidWorld(e.to_string()))?;
        // Zipf tail over novel classes.
        let weights: Vec<f64> =
            (1..=novel_classes).map(|k| 1.0 / (k as f64).powf(zipf_exponent)).collect();
        let tail = Categorical::from_weights(&weights)
            .map_err(|e| PerceptionError::InvalidWorld(e.to_string()))?;
        Ok(Self { known, known_probs, novel_mass, top, tail })
    }

    /// The paper's running configuration: car 0.6, pedestrian 0.3, unknown
    /// 0.1 over a 1000-class Zipf(1.1) tail.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` mirrors
    /// [`WorldModel::new`].
    pub fn paper_example() -> Result<Self> {
        Self::new(
            vec!["car".into(), "pedestrian".into()],
            vec![0.6, 0.3],
            0.1,
            1_000,
            1.1,
        )
    }

    /// Known class names.
    pub fn known_classes(&self) -> &[String] {
        &self.known
    }

    /// Absolute probabilities of the known classes.
    /// Range: each entry lies in `[0, 1]`; together with the novel mass they sum to one.
    pub fn known_probs(&self) -> &[f64] {
        &self.known_probs
    }

    /// Total probability of encountering something novel.
    /// Range: `[0, 1]` — the probability mass held by unmodeled classes.
    pub fn novel_mass(&self) -> f64 {
        self.novel_mass
    }

    /// True probability of one specific novel class (for validating
    /// missing-mass estimators).
    /// Range: `[0, 1]` — one tail share of the novel mass.
    pub fn novel_class_probability(&self, tail_index: usize) -> f64 {
        use sysunc_prob::dist::Discrete as _;
        self.novel_mass * self.tail.pmf(tail_index as u64)
    }

    /// Samples one encounter.
    pub fn sample(&self, rng: &mut dyn RngCore) -> Truth {
        let pick = self.top.sample_index(rng);
        if pick < self.known.len() {
            Truth::Known(pick)
        } else {
            Truth::Novel(self.tail.sample_index(rng))
        }
    }

    /// Samples a batch of encounters.
    pub fn sample_n(&self, n: usize, rng: &mut dyn RngCore) -> Vec<Truth> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn validation() {
        assert!(WorldModel::new(vec![], vec![], 0.1, 10, 1.0).is_err());
        assert!(WorldModel::new(vec!["a".into()], vec![0.5], 0.1, 10, 1.0).is_err()); // sums to 0.6
        assert!(WorldModel::new(vec!["a".into()], vec![0.9], 0.1, 0, 1.0).is_err());
        assert!(WorldModel::new(vec!["a".into()], vec![0.9], 0.1, 10, 0.0).is_err());
        assert!(WorldModel::paper_example().is_ok());
    }

    #[test]
    fn sampling_frequencies_match_priors() {
        let world = WorldModel::paper_example().unwrap();
        let mut r = rng();
        let n = 200_000;
        let mut counts = [0u64; 3];
        for t in world.sample_n(n, &mut r) {
            match t {
                Truth::Known(i) => counts[i] += 1,
                Truth::Novel(_) => counts[2] += 1,
            }
        }
        assert!((counts[0] as f64 / n as f64 - 0.6).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.1).abs() < 0.005);
    }

    #[test]
    fn tail_is_long() {
        // Many distinct novel classes appear; the most common dominates
        // but does not exhaust the tail.
        let world = WorldModel::paper_example().unwrap();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        let mut first = 0u64;
        let mut novel = 0u64;
        for t in world.sample_n(300_000, &mut r) {
            if let Truth::Novel(k) = t {
                novel += 1;
                seen.insert(k);
                if k == 0 {
                    first += 1;
                }
            }
        }
        assert!(seen.len() > 100, "long tail: saw {} distinct classes", seen.len());
        let share = first as f64 / novel as f64;
        assert!(share > 0.05 && share < 0.5, "head share {share}");
    }

    #[test]
    fn novel_class_probability_sums_to_mass() {
        let world = WorldModel::paper_example().unwrap();
        let total: f64 = (0..1_000).map(|k| world.novel_class_probability(k)).sum();
        assert!((total - 0.1).abs() < 1e-9);
    }
}
