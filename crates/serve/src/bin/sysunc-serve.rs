//! Standalone propagation server.
//!
//! ```text
//! sysunc-serve [--addr HOST:PORT] [--workers N] [--queue N] [--timeout-ms N]
//!              [--max-connections N] [--cache-capacity N] [--cache-shards N]
//!              [--cache-ttl-ms N] [--child]
//! ```
//!
//! Binds (port 0 = ephemeral), prints `listening on <addr>` to stdout,
//! and serves until stdin reaches EOF — the supervisor-friendly,
//! signal-free shutdown convention: closing the pipe asks the server
//! to drain and exit 0.
//!
//! `--child` marks the process as a shard under a `sysunc-fleet`
//! supervisor: stderr chatter is suppressed (the supervisor owns the
//! operator console) while the stdout `listening on <addr>` handshake
//! line — the supervisor's readiness signal — is kept.

use std::io::Read;
use std::process::ExitCode;
use std::time::Duration;
use sysunc::ModelRegistry;
use sysunc_serve::{Server, ServerConfig};

struct Args {
    config: ServerConfig,
    /// Supervised-shard mode: keep the stdout handshake, drop chatter.
    child: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut config = ServerConfig::default();
    let mut child = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue" => {
                config.queue_capacity = value("--queue")?
                    .parse()
                    .map_err(|e| format!("--queue: {e}"))?
            }
            "--timeout-ms" => {
                config.request_timeout = Duration::from_millis(
                    value("--timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--timeout-ms: {e}"))?,
                )
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--cache-capacity" => {
                config.cache_capacity = value("--cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--cache-capacity: {e}"))?
            }
            "--cache-shards" => {
                config.cache_shards = value("--cache-shards")?
                    .parse()
                    .map_err(|e| format!("--cache-shards: {e}"))?
            }
            "--cache-ttl-ms" => {
                config.cache_ttl = Some(Duration::from_millis(
                    value("--cache-ttl-ms")?
                        .parse()
                        .map_err(|e| format!("--cache-ttl-ms: {e}"))?,
                ))
            }
            "--child" => child = true,
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(Args { config, child })
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Args { config, child } = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("sysunc-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let registry = match ModelRegistry::standard() {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("sysunc-serve: cannot build the model registry: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::start(config, registry) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("sysunc-serve: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    // Serve until stdin closes.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    if !child {
        eprintln!("sysunc-serve: stdin closed, draining");
    }
    server.shutdown();
    ExitCode::SUCCESS
}
