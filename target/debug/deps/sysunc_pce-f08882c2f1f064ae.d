/root/repo/target/debug/deps/sysunc_pce-f08882c2f1f064ae.d: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

/root/repo/target/debug/deps/sysunc_pce-f08882c2f1f064ae: crates/pce/src/lib.rs crates/pce/src/error.rs crates/pce/src/expansion.rs crates/pce/src/input.rs crates/pce/src/multiindex.rs crates/pce/src/quadrature.rs

crates/pce/src/lib.rs:
crates/pce/src/error.rs:
crates/pce/src/expansion.rs:
crates/pce/src/input.rs:
crates/pce/src/multiindex.rs:
crates/pce/src/quadrature.rs:
