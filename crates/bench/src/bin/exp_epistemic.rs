//! E3 — Sec. III-B: epistemic uncertainty as reducible model inaccuracy.
//! Two mechanisms, both of which must show monotone reduction:
//! (a) structural refinement — a k-mascon model of a lumpy planet
//! converges to the true trajectory as k grows;
//! (b) statistical refinement — the Beta-posterior credible width on a
//! classification probability shrinks with every observation.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::orbital::{Body, Integrator, NBodySystem, Vec2};
use sysunc::perception::{ClassifierModel, Truth};
use sysunc::prob::dist::{Beta, Continuous as _};
use sysunc_bench::{header, section};

fn lumpy_system(k: usize) -> Result<NBodySystem, Box<dyn std::error::Error>> {
    let planet = Body::point_mass("planet", 1.0, Vec2::zero(), Vec2::zero())?
        .with_mascon_ring(k, 0.4, 0.5, 3.0)?;
    let probe = Body::point_mass("probe", 1e-9, Vec2::new(1.2, 0.0), Vec2::new(0.0, 0.9))?;
    Ok(NBodySystem::new(vec![probe, planet], 1.0)?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E3", "Sec. III-B — epistemic uncertainty shrinks with refinement");

    section("(a) structural refinement: k-mascon gravity models");
    let horizon = 3_000;
    let mut truth = lumpy_system(16)?;
    let truth_traj = Integrator::VelocityVerlet.propagate(&mut truth, 0.002, horizon);
    println!("  {:>10} {:>22}", "mascons k", "max trajectory error");
    let mut prev = f64::INFINITY;
    for k in [1usize, 2, 4, 8] {
        let mut model = lumpy_system(k)?;
        let traj = Integrator::VelocityVerlet.propagate(&mut model, 0.002, horizon);
        let err: f64 = traj
            .iter()
            .zip(&truth_traj)
            .map(|(a, b)| a[0].distance(b[0]))
            .fold(0.0, f64::max);
        println!("  {k:>10} {err:>22.6}");
        assert!(err < prev, "refinement must reduce epistemic error");
        prev = err;
    }
    println!("  (the k = 1 point-mass row is the paper's 'idealized point masses' model)");

    section("(b) statistical refinement: Beta posterior on P(correct | car)");
    let camera = ClassifierModel::paper_camera()?;
    let mut rng = StdRng::seed_from_u64(3);
    let mut posterior = Beta::new(1.0, 1.0)?;
    println!("  {:>10} {:>12} {:>20}", "obs", "mean", "95% credible width");
    let mut observed = 0usize;
    for target in [10usize, 100, 1_000, 10_000, 100_000] {
        let mut successes = 0u64;
        let mut failures = 0u64;
        while observed < target {
            let o = camera.classify(Truth::Known(0), &mut rng);
            if o.label == 0 {
                successes += 1;
            } else {
                failures += 1;
            }
            observed += 1;
        }
        posterior = posterior.updated(successes, failures);
        println!(
            "  {target:>10} {:>12.4} {:>20.5}",
            posterior.mean(),
            posterior.credible_width(0.95)
        );
    }
    println!("  (width ~ N^-1/2: 'epistemic uncertainty decreases with every observation')");
    Ok(())
}
