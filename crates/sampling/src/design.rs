//! Experimental designs: point sets in the unit hypercube `[0, 1)^d`.
//!
//! These are the "design of experiment" machinery the paper lists under
//! *uncertainty removal during design time* (Sec. IV). A design decides
//! *where* to probe a model; the [`crate::propagate`] helpers then push the
//! points through input distributions and the model.

use crate::batch::SoaMatrix;
use crate::error::{Result, SamplingError};
use sysunc_prob::rng::Rng as _;
use sysunc_prob::rng::RngCore;

/// A generator of `n` points in the unit hypercube `[0, 1)^dim`.
///
/// Object-safe so engines can be selected at runtime (e.g. by the
/// method-comparison experiment E9).
pub trait Design: std::fmt::Debug + Send + Sync {
    /// Generates `n` points of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`SamplingError::InvalidDesign`] for `n == 0`, `dim == 0`, or
    /// dimensions the design cannot support.
    fn generate(&self, n: usize, dim: usize, rng: &mut dyn RngCore) -> Result<Vec<Vec<f64>>>;

    /// Fills a struct-of-arrays matrix with exactly the points
    /// [`Design::generate`] would produce, consuming the RNG in the same
    /// order — the allocation-free column-major entry point of the
    /// chunked propagation drivers.
    ///
    /// The default generates row-major and transposes; designs override
    /// it to write columns directly. Overrides must keep the generated
    /// values (and the RNG consumption order) bit-identical to
    /// `generate`, which is what lets the chunked drivers claim
    /// bit-identity with the scalar path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Design::generate`], plus
    /// [`SamplingError::DimensionMismatch`] when `out` is not shaped
    /// `(dim, n)`.
    fn generate_into(
        &self,
        n: usize,
        dim: usize,
        rng: &mut dyn RngCore,
        out: &mut SoaMatrix,
    ) -> Result<()> {
        check_out_shape(n, dim, out)?;
        let points = self.generate(n, dim, rng)?;
        out.fill_from_rows(&points);
        Ok(())
    }

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

fn check_shape(n: usize, dim: usize) -> Result<()> {
    if n == 0 || dim == 0 {
        return Err(SamplingError::InvalidDesign(format!(
            "need n > 0 and dim > 0, got n={n}, dim={dim}"
        )));
    }
    Ok(())
}

fn check_out_shape(n: usize, dim: usize, out: &SoaMatrix) -> Result<()> {
    check_shape(n, dim)?;
    if out.dim() != dim || out.n() != n {
        return Err(SamplingError::DimensionMismatch {
            expected: dim * n,
            actual: out.dim() * out.n(),
        });
    }
    Ok(())
}

/// Plain pseudo-random (crude Monte Carlo) design.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RandomDesign;

impl Design for RandomDesign {
    fn generate(&self, n: usize, dim: usize, rng: &mut dyn RngCore) -> Result<Vec<Vec<f64>>> {
        check_shape(n, dim)?;
        Ok((0..n).map(|_| (0..dim).map(|_| rng.random::<f64>()).collect()).collect())
    }

    fn generate_into(
        &self,
        n: usize,
        dim: usize,
        rng: &mut dyn RngCore,
        out: &mut SoaMatrix,
    ) -> Result<()> {
        check_out_shape(n, dim, out)?;
        // Point-major draw order scattered into columns: the same RNG
        // consumption as `generate`, without the per-point allocations.
        for i in 0..n {
            for j in 0..dim {
                out.col_mut(j)[i] = rng.random::<f64>();
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "monte-carlo"
    }
}

/// Latin hypercube design: each one-dimensional projection hits every one of
/// the `n` strata exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatinHypercubeDesign;

impl Design for LatinHypercubeDesign {
    fn generate(&self, n: usize, dim: usize, rng: &mut dyn RngCore) -> Result<Vec<Vec<f64>>> {
        check_shape(n, dim)?;
        let mut pts = vec![vec![0.0; dim]; n];
        let mut perm: Vec<usize> = (0..n).collect();
        for j in 0..dim {
            // Fisher-Yates shuffle of the strata.
            for i in (1..n).rev() {
                let k = (rng.random::<f64>() * (i + 1) as f64) as usize % (i + 1);
                perm.swap(i, k);
            }
            for (i, pt) in pts.iter_mut().enumerate() {
                pt[j] = (perm[i] as f64 + rng.random::<f64>()) / n as f64;
            }
        }
        Ok(pts)
    }

    fn generate_into(
        &self,
        n: usize,
        dim: usize,
        rng: &mut dyn RngCore,
        out: &mut SoaMatrix,
    ) -> Result<()> {
        check_out_shape(n, dim, out)?;
        // `generate` is already column-major (one shuffled permutation
        // per dimension, carried across dimensions); this writes the
        // identical values straight into the columns.
        let mut perm: Vec<usize> = (0..n).collect();
        for j in 0..dim {
            for i in (1..n).rev() {
                let k = (rng.random::<f64>() * (i + 1) as f64) as usize % (i + 1);
                perm.swap(i, k);
            }
            let col = out.col_mut(j);
            for (i, &stratum) in perm.iter().enumerate() {
                col[i] = (stratum as f64 + rng.random::<f64>()) / n as f64;
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "latin-hypercube"
    }
}

/// First 16 primes, the bases of the Halton sequence.
const PRIMES: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// Halton low-discrepancy sequence (radical inverse in coprime bases).
///
/// Deterministic: the RNG argument is unused. Supports up to 16 dimensions;
/// correlations between high-prime dimensions make it a poor choice beyond
/// that, use [`SobolDesign`] instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HaltonDesign {
    /// Number of initial sequence elements to skip (burn-in, commonly 20).
    pub skip: usize,
}

impl Default for HaltonDesign {
    fn default() -> Self {
        Self { skip: 20 }
    }
}

impl HaltonDesign {
    /// Radical inverse of `index` in the given base.
    fn radical_inverse(mut index: u64, base: u64) -> f64 {
        let mut result = 0.0;
        let mut f = 1.0 / base as f64;
        while index > 0 {
            result += f * (index % base) as f64;
            index /= base;
            f /= base as f64;
        }
        result
    }
}

impl Design for HaltonDesign {
    fn generate(&self, n: usize, dim: usize, _rng: &mut dyn RngCore) -> Result<Vec<Vec<f64>>> {
        check_shape(n, dim)?;
        if dim > PRIMES.len() {
            return Err(SamplingError::InvalidDesign(format!(
                "Halton supports up to {} dimensions, requested {dim}",
                PRIMES.len()
            )));
        }
        Ok((0..n)
            .map(|i| {
                let idx = (i + self.skip + 1) as u64;
                (0..dim).map(|j| Self::radical_inverse(idx, PRIMES[j])).collect()
            })
            .collect())
    }

    fn generate_into(
        &self,
        n: usize,
        dim: usize,
        rng: &mut dyn RngCore,
        out: &mut SoaMatrix,
    ) -> Result<()> {
        check_out_shape(n, dim, out)?;
        if dim > PRIMES.len() {
            return Err(SamplingError::InvalidDesign(format!(
                "Halton supports up to {} dimensions, requested {dim}",
                PRIMES.len()
            )));
        }
        let _ = rng; // deterministic sequence: RNG unused, as in `generate`
        for (j, &base) in PRIMES.iter().take(dim).enumerate() {
            let col = out.col_mut(j);
            for (i, y) in col.iter_mut().enumerate() {
                *y = Self::radical_inverse((i + self.skip + 1) as u64, base);
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "halton"
    }
}

/// Sobol' direction-number initialization: degree `s`, primitive-polynomial
/// coefficient bits `a`, and initial values `m` (one entry per degree).
struct SobolInit {
    s: usize,
    a: u32,
    m: &'static [u32],
}

/// Initialization data for dimensions 2..=16 (dimension 1 is the van der
/// Corput sequence in base 2). Primitive polynomials encoded Joe–Kuo style.
const SOBOL_INIT: [SobolInit; 15] = [
    SobolInit { s: 1, a: 0, m: &[1] },
    SobolInit { s: 2, a: 1, m: &[1, 3] },
    SobolInit { s: 3, a: 1, m: &[1, 3, 1] },
    SobolInit { s: 3, a: 2, m: &[1, 1, 1] },
    SobolInit { s: 4, a: 1, m: &[1, 1, 3, 3] },
    SobolInit { s: 4, a: 4, m: &[1, 3, 5, 13] },
    SobolInit { s: 5, a: 2, m: &[1, 1, 5, 5, 17] },
    SobolInit { s: 5, a: 4, m: &[1, 1, 5, 5, 5] },
    SobolInit { s: 5, a: 7, m: &[1, 1, 7, 11, 19] },
    SobolInit { s: 5, a: 11, m: &[1, 1, 5, 1, 1] },
    SobolInit { s: 5, a: 13, m: &[1, 1, 1, 3, 11] },
    SobolInit { s: 5, a: 14, m: &[1, 3, 5, 5, 31] },
    SobolInit { s: 6, a: 1, m: &[1, 3, 3, 9, 7, 49] },
    SobolInit { s: 6, a: 13, m: &[1, 1, 1, 15, 21, 21] },
    SobolInit { s: 6, a: 16, m: &[1, 3, 1, 13, 27, 49] },
];

/// Number of bits of the generated integers (and max sequence length 2^32).
const SOBOL_BITS: usize = 32;

/// Sobol' low-discrepancy sequence (Gray-code construction, up to 16
/// dimensions).
///
/// Deterministic: the RNG argument is unused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SobolDesign {
    /// Number of initial points to skip. Skipping the first point (the
    /// origin) is conventional; larger powers of two preserve balance.
    pub skip: usize,
}

impl Default for SobolDesign {
    fn default() -> Self {
        Self { skip: 1 }
    }
}

impl SobolDesign {
    /// Maximum supported dimension.
    pub const MAX_DIM: usize = 16;

    /// Computes the direction numbers `v[bit]` for one dimension.
    fn direction_numbers(dim_index: usize) -> Vec<u64> {
        let mut v = vec![0u64; SOBOL_BITS];
        if dim_index == 0 {
            for (i, vi) in v.iter_mut().enumerate() {
                *vi = 1u64 << (SOBOL_BITS - 1 - i);
            }
            return v;
        }
        let init = &SOBOL_INIT[dim_index - 1];
        let s = init.s;
        let mut m: Vec<u64> = init.m.iter().map(|&x| x as u64).collect();
        // Extend m by the primitive-polynomial recurrence.
        for i in s..SOBOL_BITS {
            // m_i = 2 a_1 m_{i-1} XOR 4 a_2 m_{i-2} XOR ... XOR
            //       2^{s-1} a_{s-1} m_{i-s+1} XOR 2^s m_{i-s} XOR m_{i-s}
            let mut mi = m[i - s] ^ (m[i - s] << s);
            for k in 1..s {
                let a_k = (init.a >> (s - 1 - k)) & 1;
                if a_k == 1 {
                    mi ^= m[i - k] << k;
                }
            }
            m.push(mi);
        }
        for (i, vi) in v.iter_mut().enumerate() {
            *vi = m[i] << (SOBOL_BITS - 1 - i);
        }
        v
    }
}

impl Design for SobolDesign {
    fn generate(&self, n: usize, dim: usize, _rng: &mut dyn RngCore) -> Result<Vec<Vec<f64>>> {
        check_shape(n, dim)?;
        if dim > Self::MAX_DIM {
            return Err(SamplingError::InvalidDesign(format!(
                "Sobol supports up to {} dimensions, requested {dim}",
                Self::MAX_DIM
            )));
        }
        let dirs: Vec<Vec<u64>> = (0..dim).map(SobolDesign::direction_numbers).collect();
        let scale = 1.0 / (1u64 << SOBOL_BITS) as f64;
        let mut state = vec![0u64; dim];
        let mut out = Vec::with_capacity(n);
        // Gray-code iteration: point i flips the bit at the position of the
        // lowest zero bit of i.
        for i in 0..(self.skip + n) {
            if i > 0 {
                let c = (i as u64 - 1).trailing_ones() as usize;
                for (j, st) in state.iter_mut().enumerate() {
                    *st ^= dirs[j][c];
                }
            }
            if i >= self.skip {
                out.push(state.iter().map(|&s| s as f64 * scale).collect());
            }
        }
        Ok(out)
    }

    fn generate_into(
        &self,
        n: usize,
        dim: usize,
        rng: &mut dyn RngCore,
        out: &mut SoaMatrix,
    ) -> Result<()> {
        check_out_shape(n, dim, out)?;
        if dim > Self::MAX_DIM {
            return Err(SamplingError::InvalidDesign(format!(
                "Sobol supports up to {} dimensions, requested {dim}",
                Self::MAX_DIM
            )));
        }
        let _ = rng; // deterministic sequence: RNG unused, as in `generate`
        let dirs: Vec<Vec<u64>> = (0..dim).map(SobolDesign::direction_numbers).collect();
        let scale = 1.0 / (1u64 << SOBOL_BITS) as f64;
        let mut state = vec![0u64; dim];
        // Same Gray-code walk as `generate`, writing each point across the
        // columns instead of allocating a row vector per point.
        for i in 0..(self.skip + n) {
            if i > 0 {
                let c = (i as u64 - 1).trailing_ones() as usize;
                for (j, st) in state.iter_mut().enumerate() {
                    *st ^= dirs[j][c];
                }
            }
            if i >= self.skip {
                let row = i - self.skip;
                for (j, &st) in state.iter().enumerate() {
                    out.col_mut(j)[row] = st as f64 * scale;
                }
            }
        }
        Ok(())
    }

    fn name(&self) -> &'static str {
        "sobol"
    }
}

/// Stratified design: the hypercube is divided into `strata^dim` congruent
/// cells; points are placed uniformly in cells visited round-robin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StratifiedDesign {
    /// Strata per dimension.
    pub strata_per_dim: usize,
}

impl Design for StratifiedDesign {
    fn generate(&self, n: usize, dim: usize, rng: &mut dyn RngCore) -> Result<Vec<Vec<f64>>> {
        check_shape(n, dim)?;
        if self.strata_per_dim == 0 {
            return Err(SamplingError::InvalidDesign("strata_per_dim must be > 0".into()));
        }
        let cells = self.strata_per_dim.checked_pow(dim as u32).ok_or_else(|| {
            SamplingError::InvalidDesign("strata^dim overflows".into())
        })?;
        let k = self.strata_per_dim;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut cell = i % cells;
            let mut pt = Vec::with_capacity(dim);
            for _ in 0..dim {
                let idx = cell % k;
                cell /= k;
                pt.push((idx as f64 + rng.random::<f64>()) / k as f64);
            }
            out.push(pt);
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "stratified"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    fn in_unit_cube(pts: &[Vec<f64>]) {
        for p in pts {
            for &x in p {
                assert!((0.0..1.0).contains(&x), "point outside [0,1): {x}");
            }
        }
    }

    #[test]
    fn all_designs_produce_requested_shape() {
        let designs: Vec<Box<dyn Design>> = vec![
            Box::new(RandomDesign),
            Box::new(LatinHypercubeDesign),
            Box::new(HaltonDesign::default()),
            Box::new(SobolDesign::default()),
            Box::new(StratifiedDesign { strata_per_dim: 3 }),
        ];
        for d in designs {
            let pts = d.generate(50, 4, &mut rng()).unwrap();
            assert_eq!(pts.len(), 50, "{}", d.name());
            assert!(pts.iter().all(|p| p.len() == 4));
            in_unit_cube(&pts);
            assert!(d.generate(0, 4, &mut rng()).is_err());
            assert!(d.generate(10, 0, &mut rng()).is_err());
        }
    }

    #[test]
    fn latin_hypercube_stratification_property() {
        // Every 1-D projection hits every stratum exactly once.
        let n = 64;
        let pts = LatinHypercubeDesign.generate(n, 3, &mut rng()).unwrap();
        for j in 0..3 {
            let mut seen = vec![false; n];
            for p in &pts {
                let stratum = (p[j] * n as f64) as usize;
                assert!(!seen[stratum], "stratum {stratum} hit twice in dim {j}");
                seen[stratum] = true;
            }
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn halton_first_elements_in_base_2_and_3() {
        let pts = HaltonDesign { skip: 0 }.generate(4, 2, &mut rng()).unwrap();
        // Base 2: 1/2, 1/4, 3/4, 1/8; base 3: 1/3, 2/3, 1/9, 4/9.
        let expect0 = [0.5, 0.25, 0.75, 0.125];
        let expect1 = [1.0 / 3.0, 2.0 / 3.0, 1.0 / 9.0, 4.0 / 9.0];
        for i in 0..4 {
            assert!((pts[i][0] - expect0[i]).abs() < 1e-12);
            assert!((pts[i][1] - expect1[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn sobol_first_points_dimension_one_is_van_der_corput() {
        let pts = SobolDesign { skip: 1 }.generate(7, 1, &mut rng()).unwrap();
        let expect = [0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125];
        for (p, e) in pts.iter().zip(expect) {
            assert!((p[0] - e).abs() < 1e-12, "{} vs {e}", p[0]);
        }
    }

    #[test]
    fn sobol_balance_in_power_of_two_blocks() {
        // In each dimension, the first 2^k points (skipping the origin-led
        // block boundary) land 2^{k-1} in each half.
        let n = 256;
        let pts = SobolDesign { skip: 0 }.generate(n, 8, &mut rng()).unwrap();
        for j in 0..8 {
            let lower = pts.iter().filter(|p| p[j] < 0.5).count();
            assert_eq!(lower, n / 2, "dim {j} unbalanced: {lower}");
        }
    }

    #[test]
    fn sobol_integrates_better_than_random() {
        // Integrate f(x) = prod(2 x_i) over [0,1]^5: exact value 1.
        let n = 4096;
        let dim = 5;
        let f = |p: &[f64]| p.iter().map(|x| 2.0 * x).product::<f64>();
        let sob = SobolDesign::default().generate(n, dim, &mut rng()).unwrap();
        let est_s: f64 = sob.iter().map(|p| f(p)).sum::<f64>() / n as f64;
        let rnd = RandomDesign.generate(n, dim, &mut rng()).unwrap();
        let est_r: f64 = rnd.iter().map(|p| f(p)).sum::<f64>() / n as f64;
        assert!(
            (est_s - 1.0).abs() < (est_r - 1.0).abs(),
            "sobol {est_s} should beat random {est_r}"
        );
        assert!((est_s - 1.0).abs() < 5e-3);
    }

    #[test]
    fn dimension_limits_enforced() {
        assert!(HaltonDesign::default().generate(8, 17, &mut rng()).is_err());
        assert!(SobolDesign::default().generate(8, 17, &mut rng()).is_err());
        let pts = SobolDesign::default().generate(8, 16, &mut rng()).unwrap();
        in_unit_cube(&pts);
    }

    #[test]
    fn generate_into_bit_identical_to_generate() {
        // Every design (overridden or default `generate_into`) must
        // produce the transposed `generate` output bit-for-bit, from the
        // same seed, and leave the RNG in the same state afterwards.
        let designs: Vec<Box<dyn Design>> = vec![
            Box::new(RandomDesign),
            Box::new(LatinHypercubeDesign),
            Box::new(HaltonDesign::default()),
            Box::new(SobolDesign::default()),
            Box::new(StratifiedDesign { strata_per_dim: 3 }),
        ];
        for d in designs {
            for (n, dim) in [(1, 1), (37, 3), (64, 5)] {
                let mut rng_rows = StdRng::seed_from_u64(99);
                let pts = d.generate(n, dim, &mut rng_rows).unwrap();
                let mut rng_cols = StdRng::seed_from_u64(99);
                let mut m = SoaMatrix::zeroed(dim, n);
                d.generate_into(n, dim, &mut rng_cols, &mut m).unwrap();
                for j in 0..dim {
                    for i in 0..n {
                        assert_eq!(
                            m.col(j)[i].to_bits(),
                            pts[i][j].to_bits(),
                            "{} point {i} dim {j} (n={n})",
                            d.name()
                        );
                    }
                }
                // RNG consumption order identical → same next draw.
                use sysunc_prob::rng::Rng as _;
                assert_eq!(
                    rng_rows.random::<f64>().to_bits(),
                    rng_cols.random::<f64>().to_bits(),
                    "{} leaves RNG in a different state",
                    d.name()
                );
            }
        }
    }

    #[test]
    fn generate_into_rejects_shape_mismatch() {
        let mut m = SoaMatrix::zeroed(2, 8);
        assert!(RandomDesign.generate_into(8, 3, &mut rng(), &mut m).is_err());
        assert!(RandomDesign.generate_into(9, 2, &mut rng(), &mut m).is_err());
        assert!(RandomDesign.generate_into(0, 2, &mut rng(), &mut m).is_err());
        assert!(RandomDesign.generate_into(8, 2, &mut rng(), &mut m).is_ok());
    }

    #[test]
    fn stratified_covers_all_cells() {
        let pts = StratifiedDesign { strata_per_dim: 2 }.generate(8, 3, &mut rng()).unwrap();
        let mut cells = std::collections::HashSet::new();
        for p in &pts {
            let cell: Vec<usize> = p.iter().map(|&x| (x * 2.0) as usize).collect();
            cells.insert(cell);
        }
        assert_eq!(cells.len(), 8);
    }
}
