//! Rule `manifest`: every dependency in every `Cargo.toml` must be a
//! path dependency (directly, or via `workspace = true` resolving to a
//! path entry in `[workspace.dependencies]`).
//!
//! This is the build-side half of the zero-external-deps policy: a
//! registry or git dependency reintroduces network resolution — and
//! with it epistemic uncertainty about whether the workspace builds —
//! so the gate rejects any manifest entry that is not path-shaped.

use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct ManifestHygiene;

/// True when a `[section]` header names a dependency table.
fn is_dependency_section(header: &str) -> bool {
    let inner = header.trim().trim_start_matches('[').trim_end_matches(']').trim();
    inner == "dependencies"
        || inner == "dev-dependencies"
        || inner == "build-dependencies"
        || inner == "workspace.dependencies"
        || inner.ends_with(".dependencies")
        || inner.ends_with(".dev-dependencies")
        || inner.ends_with(".build-dependencies")
}

/// True when a header declares a single dependency as its own table,
/// e.g. `[dependencies.serde]`.
fn subtable_dependency(header: &str) -> Option<&str> {
    let inner = header.trim().trim_start_matches('[').trim_end_matches(']').trim();
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(name) = inner.strip_prefix(prefix) {
            return Some(name);
        }
    }
    None
}

/// True when a single inline dependency entry is path-shaped.
fn entry_is_path(value: &str) -> bool {
    value.contains("path") || value.contains("workspace = true") || value.contains("workspace=true")
}

impl Lint for ManifestHygiene {
    fn name(&self) -> &'static str {
        "manifest"
    }

    fn explain(&self) -> &'static str {
        "Every dependency in every Cargo.toml must be a path dependency \
         (directly, or via `workspace = true` resolving to a path entry in \
         `[workspace.dependencies]`). This is the build-side half of the \
         zero-external-deps policy: a registry or git dependency \
         reintroduces network resolution — and with it epistemic uncertainty \
         about whether the workspace builds — so the gate rejects any \
         manifest entry that is not path-shaped. Vendor code in-tree instead."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::Manifest
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let mut in_dep_section = false;
        // Pending `[dependencies.<name>]` subtable awaiting a `path` key.
        let mut subtable: Option<(String, usize, bool)> = None;
        for (no, raw) in file.lines() {
            let line = raw.trim();
            if line.starts_with('[') {
                if let Some((name, at, saw_path)) = subtable.take() {
                    if !saw_path {
                        out.push(self.subtable_violation(file, at, &name));
                    }
                }
                if let Some(name) = subtable_dependency(line) {
                    subtable = Some((name.to_string(), no, false));
                    in_dep_section = false;
                } else {
                    in_dep_section = is_dependency_section(line);
                }
                continue;
            }
            if let Some((_, _, saw_path)) = subtable.as_mut() {
                if line.starts_with("path") {
                    *saw_path = true;
                }
                continue;
            }
            if !in_dep_section || line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some((name, value)) = line.split_once('=') {
                if !entry_is_path(value) {
                    out.push(Violation {
                        file: file.path.clone(),
                        line: no,
                        rule: self.name(),
                        resolution: "token",
                        message: format!(
                            "dependency `{}` is not a path dependency \
                             (external crates are forbidden; vendor the code in-tree)",
                            name.trim()
                        ),
                    });
                }
            }
        }
        if let Some((name, at, saw_path)) = subtable {
            if !saw_path {
                out.push(self.subtable_violation(file, at, &name));
            }
        }
    }
}

impl ManifestHygiene {
    fn subtable_violation(&self, file: &SourceFile, line: usize, name: &str) -> Violation {
        Violation {
            file: file.path.clone(),
            line,
            rule: self.name(),
            resolution: "token",
            message: format!(
                "dependency table `{name}` has no `path` key \
                 (external crates are forbidden; vendor the code in-tree)"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(toml: &str) -> Vec<Violation> {
        let file = SourceFile::new("Cargo.toml", toml, FileKind::Manifest);
        let mut out = Vec::new();
        ManifestHygiene.check(&file, &mut out);
        out
    }

    #[test]
    fn path_and_workspace_entries_pass() {
        let clean = r#"
[package]
name = "x"

[dependencies]
sysunc-prob = { path = "../prob" }
sysunc-core = { workspace = true }

[workspace.dependencies]
sysunc-prob = { path = "crates/prob" }
"#;
        assert!(run(clean).is_empty());
    }

    #[test]
    fn version_only_dependency_fires() {
        let bad = "[dependencies]\nserde = \"1.0\"\n";
        let out = run(bad);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
        assert!(out[0].message.contains("serde"));
    }

    #[test]
    fn git_dependency_fires() {
        let bad = "[dev-dependencies]\nfoo = { git = \"https://example.com/foo\" }\n";
        assert_eq!(run(bad).len(), 1);
    }

    #[test]
    fn subtable_without_path_fires_and_with_path_passes() {
        let bad = "[dependencies.serde]\nversion = \"1.0\"\nfeatures = [\"derive\"]\n";
        let out = run(bad);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("serde"));

        let good = "[dependencies.local]\npath = \"../local\"\n";
        assert!(run(good).is_empty());
    }

    #[test]
    fn non_dependency_sections_are_ignored() {
        let other = "[package]\nversion = \"1.0\"\n\n[features]\ndefault = []\n";
        assert!(run(other).is_empty());
    }
}
