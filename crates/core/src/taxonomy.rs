//! The paper's taxonomy: types of uncertainty (Sec. III) and means to cope
//! with them (Sec. IV, Fig. 3), as first-class values.

use sysunc_prob::json::{FromJson, Json, JsonError, ToJson};
use std::fmt;

/// The three types of uncertainty (paper Sec. III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UncertaintyKind {
    /// Randomness of a process represented by a (chosen) probabilistic
    /// model; irreducible for that model choice (Sec. III-A).
    Aleatory,
    /// Lack of knowledge about the model's parameters or accuracy — the
    /// *known unknown*; reducible by observation and refinement
    /// (Sec. III-B).
    Epistemic,
    /// Complete ignorance of a relevant aspect — the *unknown unknown*;
    /// only reducible by model *reformulation* (Sec. III-C).
    Ontological,
}

impl UncertaintyKind {
    /// All kinds, in the paper's order.
    pub const ALL: [UncertaintyKind; 3] =
        [UncertaintyKind::Aleatory, UncertaintyKind::Epistemic, UncertaintyKind::Ontological];

    /// Whether the holder is *aware* of this uncertainty (the paper's
    /// known-unknown vs unknown-unknown distinction).
    pub fn is_known_unknown(&self) -> bool {
        !matches!(self, UncertaintyKind::Ontological)
    }

    /// Whether more observations of the *same* model can reduce it.
    pub fn reducible_by_observation(&self) -> bool {
        matches!(self, UncertaintyKind::Epistemic)
    }

    /// The paper's rule of thumb for telling epistemic from ontological:
    /// model *accuracy* vs model *correctness*.
    pub fn discriminator(&self) -> &'static str {
        match self {
            UncertaintyKind::Aleatory => "spread of the chosen probabilistic model",
            UncertaintyKind::Epistemic => "model accuracy (known unknown)",
            UncertaintyKind::Ontological => "model correctness (unknown unknown)",
        }
    }
}

impl fmt::Display for UncertaintyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UncertaintyKind::Aleatory => write!(f, "aleatory"),
            UncertaintyKind::Epistemic => write!(f, "epistemic"),
            UncertaintyKind::Ontological => write!(f, "ontological"),
        }
    }
}

/// The four means to cope with uncertainty (paper Sec. IV, mirroring
/// Laprie's fault prevention/removal/tolerance/forecasting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Means {
    /// Avoid introducing uncertainty: simple architectures, restricted
    /// operational design domain, well-known elements.
    Prevention,
    /// Reduce uncertainty: design-of-experiment and safety analysis at
    /// design time; field observation and updates in use.
    Removal,
    /// Operate safely despite uncertainty: redundancy with diverse
    /// uncertainties, uncertainty-aware components.
    Tolerance,
    /// Estimate the present level and future occurrence of uncertainty:
    /// residual-risk estimation for the release decision.
    Forecasting,
}

impl Means {
    /// All means, in the paper's priority order ("uncertainty prevention
    /// should be prioritized").
    pub const ALL: [Means; 4] =
        [Means::Prevention, Means::Removal, Means::Tolerance, Means::Forecasting];
}

impl fmt::Display for Means {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Means::Prevention => write!(f, "prevention"),
            Means::Removal => write!(f, "removal"),
            Means::Tolerance => write!(f, "tolerance"),
            Means::Forecasting => write!(f, "forecasting"),
        }
    }
}

/// Lifecycle phase in which a method operates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// During development (design time).
    DesignTime,
    /// After release (during use / runtime).
    InUse,
}

/// Qualitative effectiveness of a method against one uncertainty kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Effectiveness {
    /// No meaningful effect.
    None,
    /// Helps, but cannot be the primary measure.
    Partial,
    /// A primary measure for this kind.
    Strong,
}

/// A concrete engineering method classified by the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub struct Method {
    /// Method name.
    pub name: &'static str,
    /// Which mean it realizes.
    pub means: Means,
    /// When it operates.
    pub phase: Phase,
    /// Effectiveness against (aleatory, epistemic, ontological).
    pub effectiveness: [Effectiveness; 3],
    /// Which module of this workspace implements or demonstrates it.
    pub implemented_by: &'static str,
}

impl Method {
    /// Effectiveness against one kind.
    pub fn against(&self, kind: UncertaintyKind) -> Effectiveness {
        match kind {
            UncertaintyKind::Aleatory => self.effectiveness[0],
            UncertaintyKind::Epistemic => self.effectiveness[1],
            UncertaintyKind::Ontological => self.effectiveness[2],
        }
    }
}

/// The built-in catalog of methods the paper names, classified per its
/// Fig. 3 and Sec. IV discussion.
pub fn method_catalog() -> Vec<Method> {
    use Effectiveness::{None as No, Partial, Strong};
    vec![
        Method {
            name: "restriction of the operational design domain",
            means: Means::Prevention,
            phase: Phase::DesignTime,
            effectiveness: [Partial, Strong, Strong],
            implemented_by: "sysunc-perception::WorldModel (reduced novel mass)",
        },
        Method {
            name: "simple architectures not prone to emergent behavior",
            means: Means::Prevention,
            phase: Phase::DesignTime,
            effectiveness: [No, Strong, Partial],
            implemented_by: "design guideline (no executable form)",
        },
        Method {
            name: "use of elements with well-known behavior",
            means: Means::Prevention,
            phase: Phase::DesignTime,
            effectiveness: [No, Strong, Partial],
            implemented_by: "sysunc-perception::ClassifierModel with tight confusion bounds",
        },
        Method {
            name: "design of experiment / uncertainty propagation",
            means: Means::Removal,
            phase: Phase::DesignTime,
            effectiveness: [Partial, Strong, No],
            implemented_by: "sysunc-sampling, sysunc-pce",
        },
        Method {
            name: "safety analysis with epistemic/ontological uncertainty",
            means: Means::Removal,
            phase: Phase::DesignTime,
            effectiveness: [Partial, Strong, Partial],
            implemented_by: "sysunc-fta (interval/fuzzy), sysunc-bayesnet::EvidentialNetwork",
        },
        Method {
            name: "field observation and continuous updates",
            means: Means::Removal,
            phase: Phase::InUse,
            effectiveness: [No, Strong, Strong],
            implemented_by: "sysunc-perception::FieldCampaign",
        },
        Method {
            name: "redundant architectures with diverse uncertainties",
            means: Means::Tolerance,
            phase: Phase::InUse,
            effectiveness: [Strong, Strong, Partial],
            implemented_by: "sysunc-perception::FusionSystem",
        },
        Method {
            name: "uncertainty-aware components (epistemic outputs)",
            means: Means::Tolerance,
            phase: Phase::InUse,
            effectiveness: [Partial, Strong, Partial],
            implemented_by: "sysunc-perception::RejectingClassifier",
        },
        Method {
            name: "estimation of residual uncertainty",
            means: Means::Forecasting,
            phase: Phase::DesignTime,
            effectiveness: [Partial, Partial, Strong],
            implemented_by: "sysunc-perception::ReleaseForecast (Good-Turing)",
        },
        Method {
            name: "surprise monitoring (conditional entropy)",
            means: Means::Forecasting,
            phase: Phase::InUse,
            effectiveness: [No, Partial, Strong],
            implemented_by: "sysunc-orbital::SurpriseMonitor, sysunc-prob::info",
        },
    ]
}

/// Derives a ranked method shortlist for a given dominant uncertainty
/// kind, honoring the paper's priority order prevention → removal →
/// tolerance → forecasting among equally effective methods.
pub fn recommend(kind: UncertaintyKind) -> Vec<Method> {
    let mut methods: Vec<Method> = method_catalog()
        .into_iter()
        .filter(|m| m.against(kind) != Effectiveness::None)
        .collect();
    methods.sort_by(|a, b| {
        b.against(kind)
            .cmp(&a.against(kind))
            .then_with(|| a.means.cmp(&b.means))
    });
    methods
}

impl ToJson for UncertaintyKind {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for UncertaintyKind {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        match v.as_str() {
            Some("aleatory") => Ok(UncertaintyKind::Aleatory),
            Some("epistemic") => Ok(UncertaintyKind::Epistemic),
            Some("ontological") => Ok(UncertaintyKind::Ontological),
            _ => Err(JsonError::decode("expected an uncertainty kind name")),
        }
    }
}

impl ToJson for Means {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl FromJson for Means {
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        match v.as_str() {
            Some("prevention") => Ok(Means::Prevention),
            Some("removal") => Ok(Means::Removal),
            Some("tolerance") => Ok(Means::Tolerance),
            Some("forecasting") => Ok(Means::Forecasting),
            _ => Err(JsonError::decode("expected a means name")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_properties_match_paper() {
        assert!(UncertaintyKind::Epistemic.is_known_unknown());
        assert!(UncertaintyKind::Aleatory.is_known_unknown());
        assert!(!UncertaintyKind::Ontological.is_known_unknown());
        assert!(UncertaintyKind::Epistemic.reducible_by_observation());
        assert!(!UncertaintyKind::Aleatory.reducible_by_observation());
        assert!(!UncertaintyKind::Ontological.reducible_by_observation());
    }

    #[test]
    fn display_names() {
        assert_eq!(UncertaintyKind::Aleatory.to_string(), "aleatory");
        assert_eq!(Means::Forecasting.to_string(), "forecasting");
        assert_eq!(UncertaintyKind::ALL.len(), 3);
        assert_eq!(Means::ALL.len(), 4);
    }

    #[test]
    fn catalog_covers_all_means_and_phases() {
        let catalog = method_catalog();
        for means in Means::ALL {
            assert!(
                catalog.iter().any(|m| m.means == means),
                "no method for {means}"
            );
        }
        assert!(catalog.iter().any(|m| m.phase == Phase::DesignTime));
        assert!(catalog.iter().any(|m| m.phase == Phase::InUse));
        // Every kind has at least one Strong method.
        for kind in UncertaintyKind::ALL {
            assert!(
                catalog.iter().any(|m| m.against(kind) == Effectiveness::Strong),
                "no strong method against {kind}"
            );
        }
    }

    #[test]
    fn ontological_recommendations_match_paper_argument() {
        // Sec. IV: tolerance is "hardly able to cope" with ontological
        // uncertainty; removal during use is "better suited".
        let recs = recommend(UncertaintyKind::Ontological);
        let first_strong: Vec<&Method> = recs
            .iter()
            .filter(|m| m.against(UncertaintyKind::Ontological) == Effectiveness::Strong)
            .collect();
        assert!(first_strong
            .iter()
            .any(|m| m.name.contains("field observation")));
        // No tolerance method is rated Strong against ontological.
        assert!(first_strong.iter().all(|m| m.means != Means::Tolerance));
    }

    #[test]
    fn recommendation_ranking_prefers_prevention_on_ties() {
        let recs = recommend(UncertaintyKind::Epistemic);
        // Among Strong methods, prevention-type come first.
        let strong: Vec<&Method> = recs
            .iter()
            .take_while(|m| m.against(UncertaintyKind::Epistemic) == Effectiveness::Strong)
            .collect();
        assert!(!strong.is_empty());
        assert_eq!(strong[0].means, Means::Prevention);
    }

    #[test]
    fn aleatory_is_tolerated_not_removed_in_use() {
        // Field observation cannot reduce aleatory spread (it is
        // irreducible for the chosen model) — the catalog encodes that.
        let field = method_catalog()
            .into_iter()
            .find(|m| m.name.contains("field observation"))
            .expect("catalog contains field observation");
        assert_eq!(field.against(UncertaintyKind::Aleatory), Effectiveness::None);
    }
}
