/root/repo/target/debug/examples/propagation_methods-67639ca70332c9a4.d: examples/propagation_methods.rs

/root/repo/target/debug/examples/propagation_methods-67639ca70332c9a4: examples/propagation_methods.rs

examples/propagation_methods.rs:
