//! Struct-of-arrays batch buffers for the chunked propagation kernels.
//!
//! The scalar propagation path stores design points row-major
//! (`Vec<Vec<f64>>`, one heap allocation per point); the chunked path
//! stores them column-major in cache-aligned flat buffers so the
//! per-dimension inverse-CDF fills and the per-model `eval_batch` loops
//! run over contiguous `f64` slices the autovectorizer can lower to
//! SIMD. See DESIGN.md ("Chunked struct-of-arrays kernels") for the
//! layout and determinism contract.

/// Cache-line size the buffers align to, in bytes.
pub const CACHE_LINE: usize = 64;

/// A heap `f64` buffer whose data starts on a 64-byte (cache-line)
/// boundary, built without `unsafe`: the allocation is over-sized by up
/// to seven elements and the aligned window inside it is located with
/// `align_offset`.
///
/// The buffer has a fixed length; it never grows, so the aligned window
/// is stable for the lifetime of the value.
#[derive(Debug)]
pub struct AlignedBuf {
    raw: Vec<f64>,
    offset: usize,
    len: usize,
}

impl AlignedBuf {
    /// Allocates a zeroed buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        let pad = CACHE_LINE / std::mem::size_of::<f64>() - 1;
        let raw = vec![0.0; len + pad];
        let misalign = raw.as_ptr().align_offset(CACHE_LINE);
        // `align_offset` counts in elements; a `Vec<f64>` allocation is
        // at least 8-byte aligned, so the window fits — fall back to the
        // allocation start in the (theoretical) impossible case.
        let offset = if misalign <= pad { misalign } else { 0 };
        Self { raw, offset, len }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The aligned contents.
    pub fn as_slice(&self) -> &[f64] {
        &self.raw[self.offset..self.offset + self.len]
    }

    /// The aligned contents, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.raw[self.offset..self.offset + self.len]
    }
}

/// A struct-of-arrays matrix: `dim` cache-aligned columns of `n`
/// elements each, where `col(j)[i]` is coordinate `j` of point `i`.
///
/// This is the storage the chunked drivers generate designs into and
/// evaluate models from; a column slice is exactly the argument shape of
/// `Continuous::quantile_fill` and `Model::eval_batch`.
#[derive(Debug)]
pub struct SoaMatrix {
    cols: Vec<AlignedBuf>,
    n: usize,
}

impl SoaMatrix {
    /// Allocates a zeroed matrix of `dim` columns with `n` points each.
    pub fn zeroed(dim: usize, n: usize) -> Self {
        Self { cols: (0..dim).map(|_| AlignedBuf::zeroed(n)).collect(), n }
    }

    /// Number of points (rows).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of coordinates (columns).
    pub fn dim(&self) -> usize {
        self.cols.len()
    }

    /// Column `j` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `j >= dim`.
    pub fn col(&self, j: usize) -> &[f64] {
        self.cols[j].as_slice()
    }

    /// Column `j` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics when `j >= dim`.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        self.cols[j].as_mut_slice()
    }

    /// Views of the half-open row range `lo..hi` across every column —
    /// the borrowed struct-of-arrays chunk handed to `Model::eval_batch`.
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn chunk(&self, lo: usize, hi: usize) -> Vec<&[f64]> {
        self.cols.iter().map(|c| &c.as_slice()[lo..hi]).collect()
    }

    /// Copies row-major points (`points[i][j]`) into the columns — the
    /// transpose bridge from the scalar `Design::generate` layout.
    ///
    /// # Panics
    ///
    /// Panics when the point count or any point's dimension disagrees
    /// with the matrix shape.
    pub fn fill_from_rows(&mut self, points: &[Vec<f64>]) {
        assert_eq!(points.len(), self.n, "fill_from_rows: point count mismatch");
        for (j, col) in self.cols.iter_mut().enumerate() {
            let col = col.as_mut_slice();
            for (i, p) in points.iter().enumerate() {
                col[i] = p[j];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_buf_is_cache_aligned() {
        for len in [0, 1, 7, 8, 63, 64, 1000] {
            let b = AlignedBuf::zeroed(len);
            assert_eq!(b.len(), len);
            assert_eq!(b.is_empty(), len == 0);
            if len > 0 {
                assert_eq!(
                    b.as_slice().as_ptr() as usize % CACHE_LINE,
                    0,
                    "len {len} not cache-aligned"
                );
            }
            assert!(b.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn aligned_buf_roundtrips_writes() {
        let mut b = AlignedBuf::zeroed(10);
        for (i, x) in b.as_mut_slice().iter_mut().enumerate() {
            *x = i as f64;
        }
        assert_eq!(b.as_slice()[9], 9.0);
        assert_eq!(b.as_slice().len(), 10);
    }

    #[test]
    fn soa_matrix_transposes_rows() {
        let pts = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let mut m = SoaMatrix::zeroed(2, 3);
        m.fill_from_rows(&pts);
        assert_eq!(m.dim(), 2);
        assert_eq!(m.n(), 3);
        assert_eq!(m.col(0), &[1.0, 3.0, 5.0]);
        assert_eq!(m.col(1), &[2.0, 4.0, 6.0]);
        let chunk = m.chunk(1, 3);
        assert_eq!(chunk[0], &[3.0, 5.0]);
        assert_eq!(chunk[1], &[4.0, 6.0]);
    }
}
