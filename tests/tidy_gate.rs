//! Tier-1 gate: the workspace must pass its own static-analysis lint,
//! `sysunc-tidy`, with zero standing violations. The first test runs
//! the real binary the way CI does, so a regression in either the code
//! base or the lint itself fails the ordinary test suite; the rest
//! exercise the library in-process against the real tree — the JSON
//! findings round-trip through the workspace's own reader, parallel
//! and serial runs agree byte-for-byte, and the cross-file
//! `pub-reexport` rule demonstrably fires when a real re-export is
//! knocked out.

use std::path::Path;
use std::process::Command;

use sysunc::prob::json;
use sysunc_tidy::{check_files, check_files_serial, walk, FileKind, SourceFile};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn run_tidy(extra: &[&str]) -> (bool, String, String) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--offline", "-p", "sysunc-tidy", "--"])
        .args(extra)
        .arg(root())
        .current_dir(root())
        .output()
        .expect("sysunc-tidy should spawn");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn workspace_passes_sysunc_tidy_with_zero_violations() {
    let (ok, stdout, stderr) = run_tidy(&[]);
    assert!(ok, "sysunc-tidy found violations:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("0 violation(s)"),
        "expected a clean summary, got:\n{stdout}"
    );
    // The gate must actually have scanned the tree, not vacuously passed.
    let scanned: usize = stdout
        .lines()
        .find_map(|l| l.strip_prefix("sysunc-tidy: scanned ")?.split(' ').next()?.parse().ok())
        .expect("summary line present");
    assert!(scanned > 100, "suspiciously few files scanned: {scanned}");
}

#[test]
fn json_findings_parse_with_the_in_tree_reader() {
    let (ok, stdout, stderr) = run_tidy(&["--json"]);
    assert!(ok, "sysunc-tidy --json failed:\n{stdout}\n{stderr}");
    let doc = json::parse(stdout.trim()).expect("findings must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("sysunc-tidy/2"),
        "schema id missing or wrong"
    );
    assert_eq!(doc.get("clean").and_then(json::Json::as_bool), Some(true));
    let scanned =
        doc.get("files_scanned").and_then(json::Json::as_usize).expect("files_scanned");
    assert!(scanned > 100, "suspiciously few files scanned: {scanned}");
    assert_eq!(
        doc.get("violations").and_then(json::Json::as_arr).map(<[json::Json]>::len),
        Some(0)
    );
    // Allowed findings carry the full file/line/rule/resolution/message
    // shape; resolution is one of the three analysis layers.
    let allowed = doc.get("allowed").and_then(json::Json::as_arr).expect("allowed array");
    assert!(!allowed.is_empty(), "the tree has acknowledged exceptions");
    for finding in allowed {
        assert!(finding.get("file").and_then(json::Json::as_str).is_some());
        assert!(finding.get("line").and_then(json::Json::as_u64).is_some());
        assert!(finding.get("rule").and_then(json::Json::as_str).is_some());
        assert!(finding.get("message").and_then(json::Json::as_str).is_some());
        let resolution = finding
            .get("resolution")
            .and_then(json::Json::as_str)
            .expect("every finding carries its resolution provenance");
        assert!(
            matches!(resolution, "token" | "module-graph" | "type-flow"),
            "unknown resolution layer `{resolution}`"
        );
    }
}

#[test]
fn bare_explain_lists_rules_and_unknown_rules_exit_two() {
    // No workspace-root argument here: a bare `--explain` would take a
    // following non-flag token as the rule name.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(&cargo)
        .args(["run", "--quiet", "--offline", "-p", "sysunc-tidy", "--", "--explain"])
        .current_dir(root())
        .output()
        .expect("sysunc-tidy should spawn");
    assert!(output.status.success(), "bare --explain must exit 0");
    let stdout = String::from_utf8_lossy(&output.stdout);
    for rule in ["panic", "float-eq", "pub-reexport", "lock-hygiene", "unused-allow"] {
        assert!(
            stdout.lines().any(|l| l.starts_with(rule)),
            "listing lacks `{rule}`:\n{stdout}"
        );
    }

    let output = Command::new(cargo)
        .args(["run", "--quiet", "--offline", "-p", "sysunc-tidy", "--", "--explain", "no-such"])
        .current_dir(root())
        .output()
        .expect("sysunc-tidy should spawn");
    assert_eq!(output.status.code(), Some(2), "unknown rule must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown rule"), "{stderr}");
    assert!(stderr.contains("lock-hygiene"), "stderr lists the known rules: {stderr}");
}

#[test]
fn dump_modules_renders_the_resolved_tree() {
    let (ok, stdout, stderr) = run_tidy(&["--dump-modules"]);
    assert!(ok, "--dump-modules failed:\n{stderr}");
    assert!(stdout.contains("crate prob"), "lists the prob crate:\n{stdout}");
    assert!(stdout.contains("mod (root) [root]"), "marks crate roots:\n{stdout}");
    assert!(stdout.contains("pub use"), "shows re-export edges");
}

#[test]
fn parallel_and_serial_runs_agree_on_the_real_tree() {
    let files = walk::collect(root()).expect("workspace walks");
    let par = check_files(&files);
    let ser = check_files_serial(&files);
    assert_eq!(par, ser, "parallel checking must be deterministic");
}

#[test]
fn pub_reexport_fires_when_a_real_reexport_is_knocked_out() {
    // The live tree keeps every public item reachable, so the rule has
    // nothing to flag; prove it guards that state by removing one real
    // re-export in memory and checking the dead API is caught.
    let mut files = walk::collect(root()).expect("workspace walks");
    let lib = files
        .iter_mut()
        .find(|f| f.path == Path::new("crates/prob/src/lib.rs"))
        .expect("prob crate root present");
    let knocked: String = lib
        .content
        .lines()
        .filter(|l| !l.contains("pub use error::"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(knocked, lib.content, "fixture line must exist to knock out");
    *lib = SourceFile::new(lib.path.clone(), knocked, FileKind::RustLibrary);
    let report = check_files(&files);
    let hits: Vec<_> =
        report.violations.iter().filter(|v| v.rule == "pub-reexport").collect();
    assert!(
        hits.iter().any(|v| v.message.contains("ProbError")),
        "expected `ProbError` to become unreachable, got: {hits:?}"
    );
    assert!(hits.iter().all(|v| v.file == Path::new("crates/prob/src/error.rs")));
}

#[test]
fn dead_pub_use_chain_seeded_into_the_real_tree_is_caught() {
    // Seed the real prob crate with a module whose only re-export chain
    // stops short of the root: `seeded_dead` re-exports `inner::SeededSecret`,
    // but `mod seeded_dead;` is private and nothing re-exports it
    // upward. The pre-resolver rule name-matched re-exports from *any*
    // module, saw "SeededSecret is re-exported somewhere", and stayed
    // silent; root-reachability catches it.
    let mut files = walk::collect(root()).expect("workspace walks");
    let lib = files
        .iter_mut()
        .find(|f| f.path == Path::new("crates/prob/src/lib.rs"))
        .expect("prob crate root present");
    let seeded = format!("{}mod seeded_dead;\n", lib.content);
    *lib = SourceFile::new(lib.path.clone(), seeded, FileKind::RustLibrary);
    files.push(SourceFile::new(
        "crates/prob/src/seeded_dead.rs",
        "//! Seeded fixture.\nmod inner;\npub use inner::SeededSecret;\n",
        FileKind::RustLibrary,
    ));
    files.push(SourceFile::new(
        "crates/prob/src/seeded_dead/inner.rs",
        "//! Seeded fixture.\n/// Never reachable.\npub struct SeededSecret;\n",
        FileKind::RustLibrary,
    ));
    let report = check_files(&files);
    let hits: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "pub-reexport" && v.message.contains("SeededSecret"))
        .collect();
    assert!(!hits.is_empty(), "dead pub use chain must be caught");
    assert!(hits.iter().all(|v| v.resolution == "module-graph"));
}

#[test]
fn root_reachable_glob_reexport_seeded_into_the_real_tree_stays_clean() {
    // The inverse seeding: a private module whose items reach the root
    // through a glob re-export. The pre-resolver rule matched glob
    // paths only textually and flagged exactly this shape; the module
    // graph proves reachability and stays silent.
    let mut files = walk::collect(root()).expect("workspace walks");
    let lib = files
        .iter_mut()
        .find(|f| f.path == Path::new("crates/prob/src/lib.rs"))
        .expect("prob crate root present");
    let seeded = format!("{}mod seeded_live;\npub use seeded_live::*;\n", lib.content);
    *lib = SourceFile::new(lib.path.clone(), seeded, FileKind::RustLibrary);
    files.push(SourceFile::new(
        "crates/prob/src/seeded_live.rs",
        "//! Seeded fixture.\n/// Reachable through the glob.\npub struct SeededGlob;\n",
        FileKind::RustLibrary,
    ));
    let report = check_files(&files);
    let hits: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.message.contains("SeededGlob") || v.message.contains("seeded_live"))
        .collect();
    assert!(hits.is_empty(), "glob-reachable items are not dead API, got: {hits:?}");
}

#[test]
fn lock_hygiene_fires_on_a_seeded_fixture() {
    let files = vec![SourceFile::new(
        "crates/x/src/lib.rs",
        "//! Fixture.\n\
         use std::sync::Mutex;\n\
         /// Unwraps the lock, then sleeps on it.\n\
         pub fn bad(m: &Mutex<u32>) -> u32 {\n\
             let g = m.lock().unwrap();\n\
             std::thread::sleep(std::time::Duration::from_millis(1));\n\
             *g\n\
         }\n",
        FileKind::RustLibrary,
    )];
    let report = check_files(&files);
    let hits: Vec<_> =
        report.violations.iter().filter(|v| v.rule == "lock-hygiene").collect();
    assert_eq!(hits.len(), 2, "unwrap + guard-across-sleep, got: {hits:?}");
    assert!(hits.iter().all(|v| v.resolution == "token"));
    assert!(hits.iter().any(|v| v.message.contains("unwrap")), "{hits:?}");
    assert!(hits.iter().any(|v| v.message.contains("still live across")), "{hits:?}");
}

#[test]
fn float_eq_type_flow_fires_for_all_three_sources() {
    // One fixture per flow source: a float parameter, a float-returning
    // call (defined in a *different* file), and an inferred float let.
    let files = vec![
        SourceFile::new(
            "crates/x/src/lib.rs",
            "//! Fixture.\n\
             pub mod measure;\n\
             /// Parameter-typed flow.\n\
             pub fn param(a: f64, b: f64) -> bool { a == b }\n\
             /// Call-result flow; `reading` lives in measure.rs.\n\
             pub fn call(t: u64) -> bool { measure::reading(t) == measure::reading(t + 1) }\n\
             /// Inferred-let flow.\n\
             pub fn local(flag: bool) -> bool {\n\
                 let x = 0.5;\n\
                 let y = if flag { x } else { x };\n\
                 x == y\n\
             }\n",
            FileKind::RustLibrary,
        ),
        SourceFile::new(
            "crates/x/src/measure.rs",
            "//! Fixture.\n/// A reading.\npub fn reading(_t: u64) -> f64 { 0.0 }\n",
            FileKind::RustLibrary,
        ),
    ];
    let report = check_files(&files);
    let hits: Vec<_> = report.violations.iter().filter(|v| v.rule == "float-eq").collect();
    assert_eq!(hits.len(), 3, "one finding per flow source, got: {hits:?}");
    assert!(hits.iter().all(|v| v.resolution == "type-flow"));
    assert!(hits.iter().any(|v| v.message.contains("parameter-typed")), "{hits:?}");
    assert!(hits.iter().any(|v| v.message.contains("reading")), "{hits:?}");
    assert!(hits.iter().any(|v| v.message.contains("literal-inferred")), "{hits:?}");
}

#[test]
fn former_textual_false_positives_do_not_fire() {
    // Regression fixtures for the line-heuristic gate's false-positive
    // classes: forbidden constructs inside string literals, comparisons
    // in doc comments, braces inside strings around `#[cfg(test)]`.
    let files = vec![
        SourceFile::new(
            "crates/x/src/lib.rs",
            "//! Fixture crate root.\npub mod fixture;\n",
            FileKind::RustLibrary,
        ),
        SourceFile::new(
            "crates/x/src/fixture.rs",
            "//! Notes: `x == 0.5` is what the float-eq rule forbids.\n\
             /// Also prose: calling `.unwrap()` panics.\n\
             pub fn shipped() -> &'static str { \"s.unwrap() == 0.5 panic!\" }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 const BRACES: &str = \"}}}\";\n\
                 fn t() { shipped().unwrap(); }\n\
             }\n",
            FileKind::RustLibrary,
        ),
    ];
    let report = check_files(&files);
    assert!(
        report.violations.is_empty() && report.allowed.is_empty(),
        "fixture should be clean, got: {:?}",
        report.violations
    );
}
