//! Input specifications pairing physical distributions with their
//! Wiener–Askey germ (orthogonal polynomial family).

use sysunc_algebra::PolyFamily;
use sysunc_prob::special::inverse_standard_normal_cdf;

/// A physical input random variable paired with its polynomial-chaos germ.
///
/// Each variant defines (a) which orthogonal family spans its chaos, (b)
/// the affine/monotone map from the *germ* variable `ξ` (distributed per
/// the family's reference measure) to the physical variable `x`, and (c)
/// the germ quantile function used for regression sampling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PceInput {
    /// `X ~ N(mu, sigma²)`, Hermite germ `ξ ~ N(0, 1)`, `x = mu + sigma ξ`.
    Normal {
        /// Mean.
        mu: f64,
        /// Standard deviation.
        sigma: f64,
    },
    /// `X ~ U(a, b)`, Legendre germ `ξ ~ U(-1, 1)`, `x = a + (b-a)(ξ+1)/2`.
    Uniform {
        /// Lower bound.
        a: f64,
        /// Upper bound.
        b: f64,
    },
    /// `X ~ Exp(rate)`, Laguerre germ `ξ ~ Exp(1)`, `x = ξ / rate`.
    Exponential {
        /// Rate parameter.
        rate: f64,
    },
    /// `X ~ Beta(alpha, beta)` on `[0, 1]`, Jacobi germ on `[-1, 1]`,
    /// `x = (ξ + 1) / 2`.
    Beta {
        /// First Beta shape.
        alpha: f64,
        /// Second Beta shape.
        beta: f64,
    },
}

impl PceInput {
    /// The orthogonal polynomial family of the germ.
    pub fn family(&self) -> PolyFamily {
        match *self {
            PceInput::Normal { .. } => PolyFamily::Hermite,
            PceInput::Uniform { .. } => PolyFamily::Legendre,
            PceInput::Exponential { .. } => PolyFamily::Laguerre,
            // Beta(a, b) with density ∝ u^{a-1}(1-u)^{b-1} on [0,1] maps to
            // the Jacobi weight (1-x)^{b-1} (1+x)^{a-1} on [-1,1].
            PceInput::Beta { alpha, beta } => {
                PolyFamily::Jacobi { alpha: beta - 1.0, beta: alpha - 1.0 }
            }
        }
    }

    /// Maps a germ realization `ξ` to the physical variable.
    pub fn to_physical(&self, xi: f64) -> f64 {
        match *self {
            PceInput::Normal { mu, sigma } => mu + sigma * xi,
            PceInput::Uniform { a, b } => a + (b - a) * (xi + 1.0) / 2.0,
            PceInput::Exponential { rate } => xi / rate,
            PceInput::Beta { .. } => (xi + 1.0) / 2.0,
        }
    }

    /// Germ quantile function: maps `u ∈ (0, 1)` to a germ realization.
    ///
    /// Used to turn unit-hypercube designs into germ-space samples for
    /// regression fitting.
    pub fn germ_quantile(&self, u: f64) -> f64 {
        match *self {
            PceInput::Normal { .. } => inverse_standard_normal_cdf(u),
            PceInput::Uniform { .. } => 2.0 * u - 1.0,
            PceInput::Exponential { .. } => -(-u).ln_1p(),
            PceInput::Beta { alpha, beta } => {
                2.0 * sysunc_prob::special::inv_reg_inc_beta(alpha, beta, u) - 1.0
            }
        }
    }

    /// Mean of the physical variable (for validation).
    pub fn physical_mean(&self) -> f64 {
        match *self {
            PceInput::Normal { mu, .. } => mu,
            PceInput::Uniform { a, b } => 0.5 * (a + b),
            PceInput::Exponential { rate } => 1.0 / rate,
            PceInput::Beta { alpha, beta } => alpha / (alpha + beta),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn germ_quantile_medians() {
        let n = PceInput::Normal { mu: 3.0, sigma: 2.0 };
        assert!((n.germ_quantile(0.5)).abs() < 1e-12);
        assert!((n.to_physical(n.germ_quantile(0.5)) - 3.0).abs() < 1e-12);
        let u = PceInput::Uniform { a: 0.0, b: 10.0 };
        assert!((u.to_physical(u.germ_quantile(0.25)) - 2.5).abs() < 1e-12);
        let e = PceInput::Exponential { rate: 2.0 };
        assert!((e.to_physical(e.germ_quantile(0.5)) - std::f64::consts::LN_2 / 2.0).abs() < 1e-12);
    }

    #[test]
    fn beta_germ_consistency() {
        // Beta(2, 5): germ quantile mapped to physical must match the Beta
        // quantile directly.
        let input = PceInput::Beta { alpha: 2.0, beta: 5.0 };
        for &u in &[0.1, 0.5, 0.9] {
            let phys = input.to_physical(input.germ_quantile(u));
            let direct = sysunc_prob::special::inv_reg_inc_beta(2.0, 5.0, u);
            assert!((phys - direct).abs() < 1e-10);
        }
    }

    #[test]
    fn germ_measure_matches_family_rule() {
        // E[to_physical(ξ)] under the family's Gauss rule must equal the
        // physical mean — verifies the germ/family pairing.
        let inputs = [
            PceInput::Normal { mu: 1.5, sigma: 0.7 },
            PceInput::Uniform { a: -2.0, b: 4.0 },
            PceInput::Exponential { rate: 3.0 },
            PceInput::Beta { alpha: 2.0, beta: 3.0 },
        ];
        for input in inputs {
            let rule = input.family().gauss_rule(16).unwrap();
            let mean = rule.integrate(|xi| input.to_physical(xi));
            assert!(
                (mean - input.physical_mean()).abs() < 1e-8,
                "{input:?}: {mean} vs {}",
                input.physical_mean()
            );
        }
    }
}
