//! Evidential networks: Dempster–Shafer theory on a Bayesian-network
//! skeleton, after Simon, Weber & Evsukoff (the paper's reference \[8\]).
//!
//! The construction extends each node's sample space from its *states* to a
//! chosen family of *focal sets* (subsets of states). Conditional mass
//! tables then assign belief mass to sets — so epistemic indecision
//! ("car **or** pedestrian") and ontological reserve (mass on the whole
//! frame Θ) propagate through the network exactly, using the ordinary
//! variable-elimination engine on the extended space. Query results come
//! back as [`MassFunction`]s, from which belief/plausibility bounds on any
//! event can be read.

use crate::error::{BnError, Result};
use crate::infer::VariableElimination;
use crate::network::BayesNet;
use sysunc_evidence::{Frame, MassFunction};

/// A Bayesian network whose node states are Dempster–Shafer focal sets.
#[derive(Debug, Clone, Default)]
pub struct EvidentialNetwork {
    bn: BayesNet,
    frames: Vec<Frame>,
    focal_sets: Vec<Vec<u64>>,
}

impl EvidentialNetwork {
    /// Creates an empty evidential network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a root node from a prior mass function. The node's extended
    /// states are precisely the prior's focal elements.
    ///
    /// # Errors
    ///
    /// Propagates [`BnError::InvalidNode`] from the underlying network.
    pub fn add_root<S: Into<String>>(&mut self, name: S, prior: &MassFunction) -> Result<usize> {
        let focal: Vec<(u64, f64)> = prior.focal_elements().collect();
        let states: Vec<String> =
            focal.iter().map(|(s, _)| prior.frame().format_subset(*s)).collect();
        let masses: Vec<f64> = focal.iter().map(|&(_, m)| m).collect();
        let id = self.bn.add_root(name, states, masses)?;
        self.frames.push(prior.frame().clone());
        self.focal_sets.push(focal.into_iter().map(|(s, _)| s).collect());
        Ok(id)
    }

    /// Adds a child node.
    ///
    /// `focal_sets` are the extended states of the new node (subset masks
    /// of `frame`); `cmt` is the conditional mass table: one row per
    /// combination of the parents' extended states (last parent fastest),
    /// each row a mass distribution over `focal_sets`.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::InvalidNode`] for empty or out-of-frame focal
    /// sets, plus the underlying network's CPT validation errors.
    pub fn add_node<S: Into<String>>(
        &mut self,
        name: S,
        frame: Frame,
        focal_sets: Vec<u64>,
        parents: Vec<usize>,
        cmt: Vec<Vec<f64>>,
    ) -> Result<usize> {
        if focal_sets.is_empty() {
            return Err(BnError::InvalidNode("node needs at least one focal set".into()));
        }
        for &s in &focal_sets {
            if s == 0 || s & !frame.theta() != 0 {
                return Err(BnError::InvalidNode(format!(
                    "focal set {s:#b} invalid for the frame"
                )));
            }
        }
        let states: Vec<String> = focal_sets.iter().map(|&s| frame.format_subset(s)).collect();
        let id = self.bn.add_node(name, states, parents, cmt)?;
        self.frames.push(frame);
        self.focal_sets.push(focal_sets);
        Ok(id)
    }

    /// The underlying extended-state Bayesian network.
    pub fn as_bayes_net(&self) -> &BayesNet {
        &self.bn
    }

    /// The frame of a node.
    ///
    /// # Panics
    ///
    /// Panics for out-of-range ids.
    pub fn frame(&self, node: usize) -> &Frame {
        &self.frames[node]
    }

    /// Marginal mass function of a node given focal-set evidence
    /// (`(node, focal set mask)` pairs; the mask must be one of the
    /// observed node's extended states).
    ///
    /// # Errors
    ///
    /// Returns [`BnError::UnknownState`] when an evidence mask is not an
    /// extended state of its node, plus inference errors.
    pub fn query(&self, node: usize, evidence: &[(usize, u64)]) -> Result<MassFunction> {
        if node >= self.bn.len() {
            return Err(BnError::UnknownNode(format!("id {node}")));
        }
        let ev: Vec<(usize, usize)> = evidence
            .iter()
            .map(|&(nid, mask)| {
                let sid = self
                    .focal_sets
                    .get(nid)
                    .ok_or_else(|| BnError::UnknownNode(format!("id {nid}")))?
                    .iter()
                    .position(|&s| s == mask)
                    .ok_or_else(|| {
                        BnError::UnknownState(format!("focal mask {mask:#b} of node {nid}"))
                    })?;
                Ok((nid, sid))
            })
            .collect::<Result<_>>()?;
        let marginal = VariableElimination::new(&self.bn).marginal(node, &ev)?;
        let focal: Vec<(u64, f64)> = self.focal_sets[node]
            .iter()
            .zip(&marginal)
            .filter(|(_, &m)| m > 0.0)
            .map(|(&s, &m)| (s, m))
            .collect();
        MassFunction::from_focal(&self.frames[node], focal)
            .map_err(|e| BnError::InvalidNode(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysunc_evidence::Frame;

    /// The paper's Table I, read *evidentially*: the ground-truth node has
    /// an `unknown` singleton; the perception node has focal sets for each
    /// output plus the epistemic `{car, pedestrian}` set; the missing 0.1
    /// of the unknown row is assigned to Θ (ontological reserve).
    fn perception_chain() -> (EvidentialNetwork, usize, usize) {
        let gt_frame = Frame::new(vec!["car", "pedestrian", "unknown"]).unwrap();
        let prior =
            MassFunction::bayesian(&gt_frame, &[0.6, 0.3, 0.1]).unwrap();
        let mut en = EvidentialNetwork::new();
        let gt = en.add_root("ground_truth", &prior).unwrap();

        let p_frame = Frame::new(vec!["car", "pedestrian", "none"]).unwrap();
        let car = p_frame.singleton("car").unwrap();
        let ped = p_frame.singleton("pedestrian").unwrap();
        let none = p_frame.singleton("none").unwrap();
        let car_ped = p_frame.subset(&["car", "pedestrian"]).unwrap();
        let theta = p_frame.theta();
        let focal = vec![car, ped, car_ped, none, theta];
        // Rows: ground truth = car, pedestrian, unknown (Table I, with the
        // unknown row's missing 0.1 going to Θ).
        let cmt = vec![
            vec![0.9, 0.005, 0.05, 0.045, 0.0],
            vec![0.005, 0.9, 0.05, 0.045, 0.0],
            vec![0.0, 0.0, 0.2, 0.7, 0.1],
        ];
        let perc = en.add_node("perception", p_frame, focal, vec![gt], cmt).unwrap();
        (en, gt, perc)
    }

    #[test]
    fn prior_mass_round_trips() {
        let (en, gt, _) = perception_chain();
        let m = en.query(gt, &[]).unwrap();
        let car = en.frame(gt).singleton("car").unwrap();
        assert!((m.belief(car) - 0.6).abs() < 1e-12);
        assert!((m.plausibility(car) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn perception_marginal_has_bel_pl_gap() {
        let (en, _, perc) = perception_chain();
        let m = en.query(perc, &[]).unwrap();
        let frame = en.frame(perc);
        let car = frame.singleton("car").unwrap();
        // Bel(car) counts only the singleton; Pl(car) adds the epistemic
        // {car, pedestrian} focal mass and the Θ reserve.
        let bel = m.belief(car);
        let pl = m.plausibility(car);
        assert!((bel - (0.6 * 0.9 + 0.3 * 0.005)).abs() < 1e-12);
        let expected_pl = bel + (0.6 * 0.05 + 0.3 * 0.05 + 0.1 * 0.2) + 0.1 * 0.1;
        assert!((pl - expected_pl).abs() < 1e-12, "{pl} vs {expected_pl}");
        assert!(pl > bel);
    }

    #[test]
    fn mass_on_theta_tracks_ontological_reserve() {
        let (en, _, perc) = perception_chain();
        let m = en.query(perc, &[]).unwrap();
        let theta = en.frame(perc).theta();
        // Only the unknown ground truth feeds Θ: 0.1 * 0.1.
        assert!((m.mass(theta) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn diagnostic_query_given_none_output() {
        let (en, gt, perc) = perception_chain();
        let none = en.frame(perc).singleton("none").unwrap();
        let post = en.query(gt, &[(perc, none)]).unwrap();
        let unknown = en.frame(gt).singleton("unknown").unwrap();
        // P(none) = 0.6*0.045 + 0.3*0.045 + 0.1*0.7 = 0.1105;
        // P(unknown | none) = 0.07 / 0.1105.
        assert!((post.belief(unknown) - 0.07 / 0.1105).abs() < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let mut en = EvidentialNetwork::new();
        let frame = Frame::new(vec!["a", "b"]).unwrap();
        let prior = MassFunction::vacuous(&frame);
        let root = en.add_root("r", &prior).unwrap();
        // Focal set outside the frame.
        assert!(en
            .add_node("c", frame.clone(), vec![0b100], vec![root], vec![vec![1.0]])
            .is_err());
        // Empty focal list.
        assert!(en
            .add_node("c", frame.clone(), vec![], vec![root], vec![])
            .is_err());
        // Evidence on a non-state mask.
        let c = en
            .add_node("c", frame.clone(), vec![0b01, 0b11], vec![root], vec![vec![0.5, 0.5]])
            .unwrap();
        assert!(en.query(c, &[(c, 0b10)]).is_err());
        assert!(en.query(9, &[]).is_err());
    }

    #[test]
    fn bayesian_special_case_matches_plain_bn() {
        // With singleton-only focal sets, the evidential network reduces to
        // an ordinary BN.
        let frame = Frame::new(vec!["x", "y"]).unwrap();
        let prior = MassFunction::bayesian(&frame, &[0.3, 0.7]).unwrap();
        let mut en = EvidentialNetwork::new();
        let r = en.add_root("r", &prior).unwrap();
        let c = en
            .add_node(
                "c",
                frame.clone(),
                vec![0b01, 0b10],
                vec![r],
                vec![vec![0.8, 0.2], vec![0.1, 0.9]],
            )
            .unwrap();
        let m = en.query(c, &[]).unwrap();
        let x = frame.singleton("x").unwrap();
        let expect = 0.3 * 0.8 + 0.7 * 0.1;
        assert!((m.belief(x) - expect).abs() < 1e-12);
        assert!((m.plausibility(x) - expect).abs() < 1e-12);
    }
}
