//! # sysunc-sampling — Monte Carlo and quasi-Monte Carlo engines
//!
//! Design-of-experiment machinery for the `sysunc` uncertainty toolkit
//! (reproduction of Gansch & Adee, *System Theoretic View on
//! Uncertainties*, DATE 2020). The paper lists design of experiments as an
//! **uncertainty removal** means at design time (Sec. IV); this crate
//! provides the engines:
//!
//! - [`RandomDesign`] — crude Monte Carlo.
//! - [`LatinHypercubeDesign`] — stratified 1-D projections.
//! - [`SobolDesign`] / [`HaltonDesign`] — low-discrepancy (quasi-Monte
//!   Carlo) sequences, built from scratch (Gray-code Sobol' with embedded
//!   primitive-polynomial direction numbers; radical-inverse Halton).
//! - [`StratifiedDesign`] — grid stratification for low dimensions.
//! - [`propagate`] — push input distributions through a deterministic
//!   model and collect output statistics (the scalar reference path; the
//!   production chunked driver lives in `sysunc-core`).
//! - [`SoaMatrix`] / [`AlignedBuf`] — cache-aligned struct-of-arrays
//!   buffers the chunked kernels generate designs into.
//! - [`importance_estimate`] — rare-event estimation.
//! - [`ConvergenceTrace`] — accuracy-vs-cost curves for the method
//!   comparison experiment (E9 in EXPERIMENTS.md).
//!
//! ```
//! use sysunc_prob::rng::SeedableRng;
//! use sysunc_prob::dist::{Continuous, Uniform};
//! use sysunc_sampling::{propagate, SobolDesign};
//!
//! // E[X1 * X2] for independent U(0,1): exact 0.25.
//! let u = Uniform::standard();
//! let inputs: Vec<&dyn Continuous> = vec![&u, &u];
//! let mut rng = sysunc_prob::rng::StdRng::seed_from_u64(1);
//! let res = propagate(&inputs, &SobolDesign::default(),
//!                     &|x: &[f64]| x[0] * x[1], 4096, &mut rng)?;
//! assert!((res.mean() - 0.25).abs() < 1e-3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod batch;
mod design;
mod error;
mod propagate;
mod variance_reduction;

pub use batch::{AlignedBuf, SoaMatrix, CACHE_LINE};
pub use design::{
    Design, HaltonDesign, LatinHypercubeDesign, RandomDesign, SobolDesign, StratifiedDesign,
};
pub use error::{Result, SamplingError};
pub use propagate::{
    importance_estimate, propagate, to_input_space, ConvergenceTrace, Model, PropagationResult,
};
pub use variance_reduction::{control_variate_estimate, propagate_antithetic};
