//! Benchmark: fault tree analysis cost — MOCUS cut sets, exact
//! enumeration, structure-recursive quantification (crisp / interval /
//! fuzzy), and dynamic-tree Monte Carlo.

use sysunc_bench::timing::{BenchmarkId, Criterion};
use sysunc_bench::{criterion_group, criterion_main};
use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use std::sync::Arc;
use sysunc::evidence::{FuzzyNumber, Interval};
use sysunc::fta::{
    minimal_cut_sets, quantify_with, DynGateKind, DynamicFaultTree, FaultTree, GateKind,
};
use sysunc::prob::dist::Exponential;

/// Layered tree: `groups` OR-ed groups of AND-ed triples.
fn layered_tree(groups: usize) -> FaultTree {
    let mut ft = FaultTree::new();
    let mut ors = Vec::new();
    for g in 0..groups {
        let events: Vec<_> = (0..3)
            .map(|i| ft.add_basic_event(format!("e{g}_{i}"), 0.01 * (i + 1) as f64).expect("valid"))
            .collect();
        ors.push(ft.add_gate(format!("g{g}"), GateKind::And, events).expect("valid"));
    }
    let top = ft.add_gate("top", GateKind::Or, ors).expect("valid");
    ft.set_top(top).expect("valid");
    ft
}

fn bench_fta(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_fta");
    for groups in [2usize, 4, 6, 8] {
        let ft = layered_tree(groups);
        group.bench_with_input(BenchmarkId::new("mocus", groups), &ft, |b, ft| {
            b.iter(|| minimal_cut_sets(ft).expect("small"));
        });
        group.bench_with_input(BenchmarkId::new("exact_enum", groups), &ft, |b, ft| {
            b.iter(|| ft.top_probability_exact().expect("small"));
        });
        let crisp: Vec<f64> = ft.basic_events().iter().map(|e| e.probability).collect();
        group.bench_with_input(BenchmarkId::new("structural_crisp", groups), &ft, |b, ft| {
            b.iter(|| quantify_with(ft, &crisp).expect("valid"));
        });
        let intervals: Vec<Interval> = crisp
            .iter()
            .map(|&p| Interval::new(p * 0.5, p * 2.0).expect("ordered"))
            .collect();
        group.bench_with_input(BenchmarkId::new("structural_interval", groups), &ft, |b, ft| {
            b.iter(|| quantify_with(ft, &intervals).expect("valid"));
        });
        let fuzzies: Vec<FuzzyNumber> = crisp
            .iter()
            .map(|&p| FuzzyNumber::triangular(p * 0.5, p, p * 2.0).expect("ordered"))
            .collect();
        group.bench_with_input(BenchmarkId::new("structural_fuzzy", groups), &ft, |b, ft| {
            b.iter(|| quantify_with(ft, &fuzzies).expect("valid"));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("dynamic_fta");
        let mut dft = DynamicFaultTree::new();
    let a = dft.add_event("a", Arc::new(Exponential::new(1.0).expect("valid")));
    let b_ev = dft.add_event("b", Arc::new(Exponential::new(1.5).expect("valid")));
    let spare = dft.add_gate("sp", DynGateKind::ColdSpare, vec![a, b_ev]).expect("valid");
    let c_ev = dft.add_event("c", Arc::new(Exponential::new(0.2).expect("valid")));
    let top = dft.add_gate("top", DynGateKind::Or, vec![spare, c_ev]).expect("valid");
    dft.set_top(top).expect("valid");
    group.bench_function("mc_unreliability_10k", |bch| {
        bch.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            dft.unreliability(1.0, 10_000, &mut rng).expect("runs")
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_fta
}
criterion_main!(benches);
