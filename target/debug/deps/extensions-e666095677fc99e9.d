/root/repo/target/debug/deps/extensions-e666095677fc99e9.d: tests/extensions.rs

/root/repo/target/debug/deps/extensions-e666095677fc99e9: tests/extensions.rs

tests/extensions.rs:
