/root/repo/target/release/deps/exp_table1-c4b2a7c5524f461a.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/release/deps/exp_table1-c4b2a7c5524f461a: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
