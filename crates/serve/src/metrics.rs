//! Lock-free server metrics: atomic counters and fixed-bucket latency
//! histograms per route and per engine, rendered as a Prometheus-style
//! text exposition for `GET /metrics`.
//!
//! The registry is built once with a fixed key set (the route table
//! and the engine catalog), so recording never allocates, never locks,
//! and can be shared across worker and connection threads behind an
//! `Arc` with plain `&self` methods.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;
use sysunc::ENGINE_NAMES;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` in one atomic step.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Upper bucket bounds of every latency histogram, in microseconds.
/// An implicit `+Inf` bucket follows the last bound.
pub const LATENCY_BUCKETS_MICROS: &[u64] = &[
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// A fixed-bucket latency histogram over [`LATENCY_BUCKETS_MICROS`].
#[derive(Debug)]
pub struct Histogram {
    /// One slot per bound plus the `+Inf` overflow slot; each holds
    /// the count of observations `<=` its bound (non-cumulative).
    slots: Vec<AtomicU64>,
    sum_micros: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        let slots = (0..=LATENCY_BUCKETS_MICROS.len())
            .map(|_| AtomicU64::new(0))
            .collect();
        Self { slots, sum_micros: AtomicU64::new(0), count: AtomicU64::new(0) }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency observation.
    pub fn observe(&self, elapsed: Duration) {
        self.observe_micros(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one latency observation given in microseconds.
    pub fn observe_micros(&self, micros: u64) {
        let slot = LATENCY_BUCKETS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(LATENCY_BUCKETS_MICROS.len());
        if let Some(counter) = self.slots.get(slot) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Cumulative counts per bound (Prometheus `le` semantics); the
    /// final entry is the `+Inf` bucket and equals [`Histogram::count`].
    pub fn cumulative(&self) -> Vec<u64> {
        let mut total = 0;
        self.slots
            .iter()
            .map(|s| {
                total += s.load(Ordering::Relaxed);
                total
            })
            .collect()
    }
}

/// The route labels metrics are keyed by. Unknown targets all fall
/// into `"other"` so an attacker cannot grow the registry.
pub const ROUTE_LABELS: &[&str] = &[
    "/v1/propagate",
    "/v1/propagate/batch",
    "/v1/engines",
    "/v1/models",
    "/metrics",
    "/healthz",
    "other",
];

/// The status codes the server emits, one counter slot each per route.
pub const STATUS_CODES: &[u16] = &[200, 400, 404, 405, 408, 413, 500, 503];

/// Per-route request statistics.
#[derive(Debug)]
struct RouteStats {
    /// Parallel to [`STATUS_CODES`].
    by_status: Vec<Counter>,
    latency: Histogram,
}

impl RouteStats {
    fn new() -> Self {
        Self {
            by_status: STATUS_CODES.iter().map(|_| Counter::new()).collect(),
            latency: Histogram::new(),
        }
    }
}

/// Per-engine propagation statistics.
#[derive(Debug)]
struct EngineStats {
    runs: Counter,
    latency: Histogram,
}

/// The server-wide metrics registry backing `GET /metrics`.
#[derive(Debug)]
pub struct ServerMetrics {
    connections_opened: Counter,
    connections_closed: Counter,
    connections_rejected: Counter,
    protocol_errors: Counter,
    cache_hits: Counter,
    cache_misses: Counter,
    cache_evictions: Counter,
    batch_jobs: Counter,
    /// Parallel to [`ROUTE_LABELS`].
    routes: Vec<RouteStats>,
    /// Parallel to [`ENGINE_NAMES`].
    engines: Vec<EngineStats>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self {
            connections_opened: Counter::new(),
            connections_closed: Counter::new(),
            connections_rejected: Counter::new(),
            protocol_errors: Counter::new(),
            cache_hits: Counter::new(),
            cache_misses: Counter::new(),
            cache_evictions: Counter::new(),
            batch_jobs: Counter::new(),
            routes: ROUTE_LABELS.iter().map(|_| RouteStats::new()).collect(),
            engines: ENGINE_NAMES
                .iter()
                .map(|_| EngineStats { runs: Counter::new(), latency: Histogram::new() })
                .collect(),
        }
    }
}

/// Folds an arbitrary request target into a stable route label.
pub fn route_label(target: &str) -> &'static str {
    let path = target.split('?').next().unwrap_or(target);
    ROUTE_LABELS
        .iter()
        .find(|r| **r == path)
        .copied()
        .unwrap_or("other")
}

impl ServerMetrics {
    /// An empty registry covering every route and engine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an accepted connection.
    pub fn connection_opened(&self) {
        self.connections_opened.incr();
    }

    /// Records a closed connection.
    pub fn connection_closed(&self) {
        self.connections_closed.incr();
    }

    /// Records a connection refused at the accept-side cap (`503`
    /// before any request is read).
    pub fn connection_rejected(&self) {
        self.connections_rejected.incr();
    }

    /// Records a connection dropped for unparseable HTTP.
    pub fn protocol_error(&self) {
        self.protocol_errors.incr();
    }

    /// Records one response-cache hit.
    pub fn cache_hit(&self) {
        self.cache_hits.incr();
    }

    /// Records one response-cache miss.
    pub fn cache_miss(&self) {
        self.cache_misses.incr();
    }

    /// Records `n` response-cache evictions.
    pub fn cache_evicted(&self, n: u64) {
        self.cache_evictions.add(n);
    }

    /// Records `n` jobs carried by batch-propagate requests.
    pub fn batch_jobs(&self, n: u64) {
        self.batch_jobs.add(n);
    }

    /// Records one served request: route label (see [`route_label`]),
    /// response status, and wall-clock latency.
    pub fn record_request(&self, route: &str, status: u16, elapsed: Duration) {
        if let Some(stats) = route_index(route).and_then(|i| self.routes.get(i)) {
            if let Some(counter) = STATUS_CODES
                .iter()
                .position(|s| *s == status)
                .and_then(|si| stats.by_status.get(si))
            {
                counter.incr();
            }
            stats.latency.observe(elapsed);
        }
    }

    /// Records one engine propagation run.
    pub fn record_engine(&self, engine: &str, elapsed: Duration) {
        if let Some(stats) = ENGINE_NAMES
            .iter()
            .position(|e| *e == engine)
            .and_then(|i| self.engines.get(i))
        {
            stats.runs.incr();
            stats.latency.observe(elapsed);
        }
    }

    /// Requests served on `route` with `status` so far.
    pub fn status_count(&self, route: &str, status: u16) -> u64 {
        route_index(route)
            .and_then(|r| self.routes.get(r))
            .zip(STATUS_CODES.iter().position(|s| *s == status))
            .and_then(|(stats, s)| stats.by_status.get(s))
            .map(|counter| counter.get())
            .unwrap_or(0)
    }

    /// Total requests served on `route` (any status).
    pub fn route_count(&self, route: &str) -> u64 {
        route_index(route)
            .and_then(|r| self.routes.get(r))
            .map(|stats| stats.latency.count())
            .unwrap_or(0)
    }

    /// Response-cache hits so far.
    pub fn cache_hit_count(&self) -> u64 {
        self.cache_hits.get()
    }

    /// Response-cache misses so far.
    pub fn cache_miss_count(&self) -> u64 {
        self.cache_misses.get()
    }

    /// Response-cache evictions so far.
    pub fn cache_eviction_count(&self) -> u64 {
        self.cache_evictions.get()
    }

    /// Connections refused at the accept-side cap so far.
    pub fn connections_rejected_count(&self) -> u64 {
        self.connections_rejected.get()
    }

    /// Jobs carried by batch-propagate requests so far.
    pub fn batch_job_count(&self) -> u64 {
        self.batch_jobs.get()
    }

    /// Propagation runs recorded for `engine`.
    pub fn engine_count(&self, engine: &str) -> u64 {
        ENGINE_NAMES
            .iter()
            .position(|e| *e == engine)
            .and_then(|i| self.engines.get(i))
            .map(|stats| stats.runs.get())
            .unwrap_or(0)
    }

    /// Renders the Prometheus-style text exposition. Zero-valued
    /// per-status counters are omitted; histogram series are always
    /// emitted in full.
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        let gauge = |out: &mut String, name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        gauge(
            &mut out,
            "sysunc_connections_opened_total",
            "TCP connections accepted.",
            self.connections_opened.get(),
        );
        gauge(
            &mut out,
            "sysunc_connections_closed_total",
            "TCP connections closed.",
            self.connections_closed.get(),
        );
        gauge(
            &mut out,
            "sysunc_connections_rejected_total",
            "Connections refused at the accept-side connection cap.",
            self.connections_rejected.get(),
        );
        gauge(
            &mut out,
            "sysunc_protocol_errors_total",
            "Connections dropped for malformed HTTP.",
            self.protocol_errors.get(),
        );
        gauge(
            &mut out,
            "sysunc_cache_hits_total",
            "Responses served from the canonical-request cache.",
            self.cache_hits.get(),
        );
        gauge(
            &mut out,
            "sysunc_cache_misses_total",
            "Propagate lookups that missed the response cache.",
            self.cache_misses.get(),
        );
        gauge(
            &mut out,
            "sysunc_cache_evictions_total",
            "Entries evicted from the response cache at capacity.",
            self.cache_evictions.get(),
        );
        gauge(
            &mut out,
            "sysunc_batch_jobs_total",
            "Propagation jobs carried by batch requests.",
            self.batch_jobs.get(),
        );

        out.push_str(
            "# HELP sysunc_http_requests_total Requests served, by route and status.\n\
             # TYPE sysunc_http_requests_total counter\n",
        );
        for (label, stats) in ROUTE_LABELS.iter().zip(self.routes.iter()) {
            for (status, counter) in STATUS_CODES.iter().zip(stats.by_status.iter()) {
                let n = counter.get();
                if n > 0 {
                    out.push_str(&format!(
                        "sysunc_http_requests_total{{route=\"{label}\",status=\"{status}\"}} {n}\n"
                    ));
                }
            }
        }

        out.push_str(
            "# HELP sysunc_http_request_duration_micros Request latency, by route.\n\
             # TYPE sysunc_http_request_duration_micros histogram\n",
        );
        for (label, stats) in ROUTE_LABELS.iter().zip(self.routes.iter()) {
            render_histogram(
                &mut out,
                "sysunc_http_request_duration_micros",
                "route",
                label,
                &stats.latency,
            );
        }

        out.push_str(
            "# HELP sysunc_engine_runs_total Propagation runs, by engine.\n\
             # TYPE sysunc_engine_runs_total counter\n",
        );
        for (name, stats) in ENGINE_NAMES.iter().zip(self.engines.iter()) {
            let n = stats.runs.get();
            if n > 0 {
                out.push_str(&format!("sysunc_engine_runs_total{{engine=\"{name}\"}} {n}\n"));
            }
        }
        out.push_str(
            "# HELP sysunc_engine_run_duration_micros Propagation latency, by engine.\n\
             # TYPE sysunc_engine_run_duration_micros histogram\n",
        );
        for (name, stats) in ENGINE_NAMES.iter().zip(self.engines.iter()) {
            render_histogram(
                &mut out,
                "sysunc_engine_run_duration_micros",
                "engine",
                name,
                &stats.latency,
            );
        }
        out
    }
}

fn route_index(route: &str) -> Option<usize> {
    ROUTE_LABELS.iter().position(|r| *r == route)
}

fn render_histogram(out: &mut String, name: &str, label: &str, key: &str, h: &Histogram) {
    let cumulative = h.cumulative();
    for (bound, n) in LATENCY_BUCKETS_MICROS.iter().zip(cumulative.iter()) {
        out.push_str(&format!("{name}_bucket{{{label}=\"{key}\",le=\"{bound}\"}} {n}\n"));
    }
    // The final cumulative entry is the `+Inf` bucket (== count).
    let total = cumulative.last().copied().unwrap_or(0);
    out.push_str(&format!("{name}_bucket{{{label}=\"{key}\",le=\"+Inf\"}} {total}\n"));
    out.push_str(&format!("{name}_sum{{{label}=\"{key}\"}} {}\n", h.sum_micros()));
    out.push_str(&format!("{name}_count{{{label}=\"{key}\"}} {}\n", h.count()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded() {
        let h = Histogram::new();
        h.observe_micros(50); // <= 100
        h.observe_micros(100); // <= 100 (boundary inclusive)
        h.observe_micros(700); // <= 1000
        h.observe_micros(10_000_000); // +Inf
        let c = h.cumulative();
        assert_eq!(c[0], 2);
        assert_eq!(c[3], 3); // le=1000
        assert_eq!(c[LATENCY_BUCKETS_MICROS.len()], 4);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum_micros(), 50 + 100 + 700 + 10_000_000);
    }

    #[test]
    fn route_labels_fold_unknown_targets_to_other() {
        assert_eq!(route_label("/v1/propagate"), "/v1/propagate");
        assert_eq!(route_label("/metrics?x=1"), "/metrics");
        assert_eq!(route_label("/admin/secret"), "other");
    }

    #[test]
    fn recording_is_visible_through_accessors_and_exposition() {
        let m = ServerMetrics::new();
        m.connection_opened();
        m.record_request("/v1/propagate", 200, Duration::from_micros(400));
        m.record_request("/v1/propagate", 503, Duration::from_micros(20));
        m.record_request("other", 404, Duration::from_micros(10));
        m.record_engine("monte-carlo", Duration::from_millis(2));
        assert_eq!(m.status_count("/v1/propagate", 200), 1);
        assert_eq!(m.status_count("/v1/propagate", 503), 1);
        assert_eq!(m.route_count("/v1/propagate"), 2);
        assert_eq!(m.engine_count("monte-carlo"), 1);
        let text = m.render_text();
        assert!(text.contains(
            "sysunc_http_requests_total{route=\"/v1/propagate\",status=\"200\"} 1"
        ));
        assert!(text.contains(
            "sysunc_http_requests_total{route=\"/v1/propagate\",status=\"503\"} 1"
        ));
        assert!(text.contains("sysunc_engine_runs_total{engine=\"monte-carlo\"} 1"));
        assert!(text
            .contains("sysunc_http_request_duration_micros_count{route=\"/v1/propagate\"} 2"));
        assert!(text.contains("le=\"+Inf\""));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().map(|v| v.parse::<u64>());
            assert!(matches!(value, Some(Ok(_))), "bad exposition line: {line}");
            assert!(parts.next().is_some(), "bad exposition line: {line}");
        }
    }

    #[test]
    fn pipeline_counters_surface_in_accessors_and_exposition() {
        let m = ServerMetrics::new();
        m.cache_hit();
        m.cache_hit();
        m.cache_miss();
        m.cache_evicted(3);
        m.connection_rejected();
        m.batch_jobs(16);
        m.record_request("/v1/propagate/batch", 200, Duration::from_micros(900));
        assert_eq!(m.cache_hit_count(), 2);
        assert_eq!(m.cache_miss_count(), 1);
        assert_eq!(m.cache_eviction_count(), 3);
        assert_eq!(m.connections_rejected_count(), 1);
        assert_eq!(m.batch_job_count(), 16);
        assert_eq!(m.status_count("/v1/propagate/batch", 200), 1);
        let text = m.render_text();
        assert!(text.contains("sysunc_cache_hits_total 2"));
        assert!(text.contains("sysunc_cache_misses_total 1"));
        assert!(text.contains("sysunc_cache_evictions_total 3"));
        assert!(text.contains("sysunc_connections_rejected_total 1"));
        assert!(text.contains("sysunc_batch_jobs_total 16"));
        assert!(text.contains(
            "sysunc_http_requests_total{route=\"/v1/propagate/batch\",status=\"200\"} 1"
        ));
    }

    #[test]
    fn unknown_statuses_and_engines_are_ignored_not_panicking() {
        let m = ServerMetrics::new();
        m.record_request("/v1/engines", 999, Duration::from_micros(5));
        m.record_engine("not-an-engine", Duration::from_micros(5));
        assert_eq!(m.status_count("/v1/engines", 999), 0);
        assert_eq!(m.route_count("/v1/engines"), 1); // latency still recorded
        assert_eq!(m.engine_count("not-an-engine"), 0);
    }
}
