//! Log-normal distribution.

use super::{Continuous, Normal, Support};
use crate::error::Result;
use crate::rng::RngCore;

/// Log-normal distribution: `X = exp(Y)` where `Y ~ N(mu, sigma^2)`.
///
/// Commonly used as an epistemic error-factor model on failure rates in
/// probabilistic risk assessment.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, LogNormal};
/// let ln = LogNormal::new(0.0, 0.5)?;
/// assert!((ln.quantile(0.5) - 1.0).abs() < 1e-12); // median = exp(mu)
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    base: Normal,
}

impl LogNormal {
    /// Creates a log-normal with log-mean `mu` and log-standard-deviation
    /// `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ProbError::InvalidParameter`] if `sigma <= 0` or
    /// either parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        Ok(Self { base: Normal::new(mu, sigma)? })
    }

    /// Creates a log-normal from its median and *error factor*
    /// `EF = x_{0.95} / x_{0.50}`, the parameterization used in nuclear and
    /// automotive PRA handbooks.
    ///
    /// # Errors
    ///
    /// Returns [`crate::ProbError::InvalidParameter`] if `median <= 0` or
    /// `error_factor <= 1`.
    pub fn from_median_error_factor(median: f64, error_factor: f64) -> Result<Self> {
        if median <= 0.0 || error_factor <= 1.0 {
            return Err(crate::ProbError::InvalidParameter(format!(
                "LogNormal::from_median_error_factor requires median > 0 and EF > 1, got ({median}, {error_factor})"
            )));
        }
        const Z95: f64 = 1.644_853_626_951_472_7;
        Self::new(median.ln(), error_factor.ln() / Z95)
    }

    /// Log-mean parameter `mu`.
    pub fn mu(&self) -> f64 {
        self.base.mu()
    }

    /// Log-standard-deviation parameter `sigma`.
    pub fn sigma(&self) -> f64 {
        self.base.sigma()
    }
}

impl Continuous for LogNormal {
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.base.pdf(x.ln()) / x
        }
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            f64::NEG_INFINITY
        } else {
            self.base.ln_pdf(x.ln()) - x.ln()
        }
    }

    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            self.base.cdf(x.ln())
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        self.base.quantile(p).exp()
    }

    fn mean(&self) -> f64 {
        (self.base.mu() + 0.5 * self.base.sigma() * self.base.sigma()).exp()
    }

    fn variance(&self) -> f64 {
        let s2 = self.base.sigma() * self.base.sigma();
        (s2.exp() - 1.0) * (2.0 * self.base.mu() + s2).exp()
    }

    fn support(&self) -> Support {
        Support::non_negative()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.base.sample(rng).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn median_is_exp_mu() {
        let d = LogNormal::new(1.2, 0.8).unwrap();
        assert!((d.quantile(0.5) - 1.2f64.exp()).abs() < 1e-10);
    }

    #[test]
    fn error_factor_parameterization() {
        let d = LogNormal::from_median_error_factor(1e-4, 3.0).unwrap();
        assert!((d.quantile(0.5) - 1e-4).abs() < 1e-14);
        assert!((d.quantile(0.95) / d.quantile(0.5) - 3.0).abs() < 1e-9);
        assert!(LogNormal::from_median_error_factor(0.0, 3.0).is_err());
        assert!(LogNormal::from_median_error_factor(1.0, 1.0).is_err());
    }

    #[test]
    fn analytic_moments() {
        let d = LogNormal::new(0.3, 0.6).unwrap();
        let expect_mean = (0.3f64 + 0.18).exp();
        assert!((d.mean() - expect_mean).abs() < 1e-12);
        testutil::check_sample_moments(&d, 21, 400_000, 5.0);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let d = LogNormal::new(0.0, 0.4).unwrap();
        testutil::check_pdf_integrates_to_cdf(&d, 0.2, 3.0, 1e-9);
    }

    #[test]
    fn zero_outside_support() {
        let d = LogNormal::new(0.0, 1.0).unwrap();
        assert_eq!(d.pdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
    }
}
