/root/repo/target/debug/deps/sysunc_algebra-2139b2b82c27ed26.d: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

/root/repo/target/debug/deps/libsysunc_algebra-2139b2b82c27ed26.rmeta: crates/algebra/src/lib.rs crates/algebra/src/decomp.rs crates/algebra/src/eigen.rs crates/algebra/src/error.rs crates/algebra/src/matrix.rs crates/algebra/src/orthopoly.rs

crates/algebra/src/lib.rs:
crates/algebra/src/decomp.rs:
crates/algebra/src/eigen.rs:
crates/algebra/src/error.rs:
crates/algebra/src/matrix.rs:
crates/algebra/src/orthopoly.rs:
