//! Multi-index sets for multivariate polynomial bases.

/// A multi-index `α ∈ ℕ^d`: the per-dimension degrees of one basis term.
pub type MultiIndex = Vec<usize>;

/// Generates the total-degree index set
/// `{ α : |α|₁ <= degree }` in graded lexicographic order.
///
/// The set has `C(dim + degree, degree)` elements.
///
/// # Panics
///
/// Panics if `dim == 0`.
///
/// # Examples
///
/// ```
/// use sysunc_pce::multiindex::total_degree_set;
/// let set = total_degree_set(2, 2);
/// assert_eq!(set.len(), 6); // C(4, 2)
/// assert_eq!(set[0], vec![0, 0]);
/// ```
pub fn total_degree_set(dim: usize, degree: usize) -> Vec<MultiIndex> {
    assert!(dim > 0, "total_degree_set: dim must be > 0");
    let mut out = Vec::new();
    for total in 0..=degree {
        append_with_sum(dim, total, &mut vec![0; dim], 0, total, &mut out);
    }
    out
}

/// Generates the hyperbolic-cross set
/// `{ α : (Σ α_i^q)^{1/q} <= degree }` for `0 < q <= 1`, which prunes
/// high-order interaction terms (sparsity-of-effects heuristic).
///
/// # Panics
///
/// Panics if `dim == 0` or `q` is outside `(0, 1]`.
pub fn hyperbolic_set(dim: usize, degree: usize, q: f64) -> Vec<MultiIndex> {
    assert!(dim > 0, "hyperbolic_set: dim must be > 0");
    assert!(q > 0.0 && q <= 1.0, "hyperbolic_set: q in (0, 1], got {q}");
    total_degree_set(dim, degree)
        .into_iter()
        .filter(|alpha| {
            let norm: f64 =
                alpha.iter().map(|&a| (a as f64).powf(q)).sum::<f64>().powf(1.0 / q);
            norm <= degree as f64 + 1e-9
        })
        .collect()
}

/// Recursive helper: fills `out` with all vectors of the given element sum.
fn append_with_sum(
    dim: usize,
    _total: usize,
    buf: &mut Vec<usize>,
    pos: usize,
    remaining: usize,
    out: &mut Vec<MultiIndex>,
) {
    if pos == dim - 1 {
        buf[pos] = remaining;
        out.push(buf.clone());
        return;
    }
    for v in (0..=remaining).rev() {
        buf[pos] = v;
        append_with_sum(dim, _total, buf, pos + 1, remaining - v, out);
    }
}

/// Number of terms of the total-degree basis: `C(dim + degree, degree)`.
pub fn total_degree_len(dim: usize, degree: usize) -> usize {
    // Evaluate the binomial iteratively to avoid overflow for typical sizes.
    let mut num = 1usize;
    for i in 1..=degree {
        num = num * (dim + i) / i;
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_degree_counts() {
        assert_eq!(total_degree_set(1, 3).len(), 4);
        assert_eq!(total_degree_set(2, 2).len(), 6);
        assert_eq!(total_degree_set(3, 4).len(), 35);
        assert_eq!(total_degree_len(3, 4), 35);
        assert_eq!(total_degree_len(5, 3), 56);
    }

    #[test]
    fn total_degree_contains_each_axis() {
        let set = total_degree_set(3, 2);
        assert!(set.contains(&vec![0, 0, 0]));
        assert!(set.contains(&vec![2, 0, 0]));
        assert!(set.contains(&vec![0, 1, 1]));
        assert!(!set.contains(&vec![2, 1, 0]) || set.iter().all(|a| a.iter().sum::<usize>() <= 2));
    }

    #[test]
    fn all_indices_unique_and_within_budget() {
        let set = total_degree_set(4, 3);
        let unique: std::collections::HashSet<_> = set.iter().cloned().collect();
        assert_eq!(unique.len(), set.len());
        assert!(set.iter().all(|a| a.iter().sum::<usize>() <= 3));
    }

    #[test]
    fn hyperbolic_prunes_interactions() {
        let full = total_degree_set(3, 4);
        let hyp = hyperbolic_set(3, 4, 0.5);
        assert!(hyp.len() < full.len());
        // Pure univariate terms survive.
        assert!(hyp.contains(&vec![4, 0, 0]));
        // Strong interactions are pruned: (2,2,0) has q=0.5 norm
        // (2*sqrt(2))² = 8 > 4.
        assert!(!hyp.contains(&vec![2, 2, 0]));
        // q = 1 reduces to total degree.
        assert_eq!(hyperbolic_set(3, 4, 1.0).len(), full.len());
    }

    #[test]
    fn first_index_is_constant_term() {
        for dim in 1..5 {
            assert_eq!(total_degree_set(dim, 3)[0], vec![0; dim]);
        }
    }
}
