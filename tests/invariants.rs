//! Cross-layer invariants stated as first-class `propcheck` properties:
//! claims that span crates (engines × reports, wire × hashing, evidence
//! calculus, fault-tree analysis) rather than belonging to any single
//! module's unit tests. Each property shrinks to a minimal
//! counterexample on failure and prints a `PROPCHECK_SEED` replay line;
//! the final test deliberately breaks an invariant to prove the
//! shrinker and the seed-replay path work end to end.

use std::collections::BTreeMap;

use sysunc::evidence::{Frame, MassFunction};
use sysunc::fta::{minimal_cut_sets, FaultTree, GateKind, NodeRef};
use sysunc::prob::dist::{Continuous, Normal};
use sysunc::prob::json::{self, FromJson};
use sysunc::prob::propcheck::{
    self, f64_range, one_of, recursive, u64_range, usize_range, vec_of, BoxedStrategy, Strategy,
};
use sysunc::{
    fnv1a64, standard_engines, CanonicalRequest, Propagator, SobolEngine, UncertainInput,
    WireRequest, ENGINE_NAMES,
};

// ------------------------------------------------------------------
// Quantile monotonicity and interval containment across all engines.
// ------------------------------------------------------------------

/// A strategy over every input kind the sampling and spectral engines
/// accept (`Interval` inputs are evidential-only and tested there).
fn sampled_input() -> BoxedStrategy<UncertainInput> {
    one_of(vec![
        (f64_range(-2.0, 2.0), f64_range(0.1, 1.5))
            .map(|(mu, sigma)| UncertainInput::Normal { mu, sigma })
            .boxed(),
        (f64_range(-2.0, 1.0), f64_range(0.2, 3.0))
            .map(|(a, width)| UncertainInput::Uniform { a, b: a + width })
            .boxed(),
        f64_range(0.3, 2.5).map(|rate| UncertainInput::Exponential { rate }).boxed(),
        (f64_range(0.5, 4.0), f64_range(0.5, 4.0))
            .map(|(alpha, beta)| UncertainInput::Beta { alpha, beta })
            .boxed(),
    ])
    .boxed()
}

/// Every engine the workspace ships, including the Sobol QMC engine
/// that `standard_engines` leaves out.
fn all_engines() -> Vec<Box<dyn Propagator>> {
    let mut engines = standard_engines();
    engines.push(Box::new(SobolEngine));
    engines
}

struct SumModel;
impl sysunc::Model for SumModel {
    fn eval(&self, x: &[f64]) -> f64 {
        x.iter().sum()
    }
}

/// For every engine: quantile intervals are non-decreasing in the
/// level (both endpoints), every reported interval is ordered, and the
/// exceedance probability — when requested — is a probability.
#[test]
fn every_engine_reports_monotone_quantiles_and_ordered_intervals() {
    const TINY: f64 = 1e-9;
    let levels = [0.05, 0.25, 0.5, 0.75, 0.95];
    propcheck::check(
        "every_engine_reports_monotone_quantiles_and_ordered_intervals",
        16,
        (vec_of(sampled_input(), 1..4), usize_range(64..257), u64_range(0..50_000)),
        |(inputs, budget, seed)| {
            let model = SumModel;
            let mut request = sysunc::PropagationRequest::new(inputs.clone(), &model)
                .expect("non-empty inputs");
            request.budget = *budget;
            request.seed = *seed;
            request.quantile_levels = levels.to_vec();
            request.threshold = Some(0.75);
            for engine in all_engines() {
                let report = engine.propagate(&request).expect("engine accepts the request");
                let name = engine.name();
                assert!(
                    report.mean.lo() <= report.mean.hi() + TINY,
                    "{name}: mean interval is ordered"
                );
                assert!(
                    report.variance.hi() >= -TINY,
                    "{name}: variance cannot be negative"
                );
                assert_eq!(report.quantiles.len(), levels.len(), "{name}: all levels answered");
                for ((level, q), requested) in report.quantiles.iter().zip(&levels) {
                    assert!(
                        (level - requested).abs() < TINY,
                        "{name}: levels echo the request in order"
                    );
                    assert!(q.lo() <= q.hi() + TINY, "{name}: quantile interval is ordered");
                }
                for pair in report.quantiles.windows(2) {
                    let (lo_level, lo_q) = &pair[0];
                    let (hi_level, hi_q) = &pair[1];
                    assert!(
                        lo_q.lo() <= hi_q.lo() + TINY && lo_q.hi() <= hi_q.hi() + TINY,
                        "{name}: quantiles must be monotone in the level: \
                         q({lo_level}) = {lo_q:?} vs q({hi_level}) = {hi_q:?}"
                    );
                }
                let exceedance = report.exceedance.expect("threshold was requested");
                assert!(
                    exceedance.lo() >= -TINY && exceedance.hi() <= 1.0 + TINY,
                    "{name}: exceedance is a probability, got {exceedance:?}"
                );
                assert!(exceedance.lo() <= exceedance.hi() + TINY);
            }
        },
    );
}

// ------------------------------------------------------------------
// CanonicalRequest: hashing is invariant under JSON respelling.
// ------------------------------------------------------------------

const MODELS: &[&str] = &["sum", "linear-2x3y", "product", "orbital-period", "orbital-energy"];

/// Reordering members, changing whitespace, or spelling defaults
/// explicitly must not change the canonical bytes or the content hash
/// — the property the fleet router's cache placement depends on.
#[test]
fn canonical_request_hash_is_invariant_under_json_respelling() {
    propcheck::check(
        "canonical_request_hash_is_invariant_under_json_respelling",
        64,
        (
            usize_range(0..ENGINE_NAMES.len()),
            usize_range(0..MODELS.len()),
            (f64_range(-3.0, 3.0), f64_range(0.1, 2.0)),
            usize_range(1..10_000),
            u64_range(0..1 << 48),
            propcheck::any_bool(),
        ),
        |&(engine, model, (mu, sigma), budget, seed, with_threshold)| {
            let mut wire = WireRequest::new(
                ENGINE_NAMES[engine],
                MODELS[model],
                vec![
                    UncertainInput::Normal { mu, sigma },
                    UncertainInput::Uniform { a: mu - 1.0, b: mu + 1.0 },
                ],
            );
            wire.budget = budget;
            wire.seed = seed;
            if with_threshold {
                wire.threshold = Some(mu);
            }
            let canonical = CanonicalRequest::from_wire(&wire).expect("known engine");

            // Respell the same request: members reversed, noisy
            // whitespace. Decoding and re-canonicalizing must land on
            // the same bytes and the same hash.
            let threshold = match wire.threshold {
                Some(t) => format!("{t}"),
                None => "null".into(),
            };
            let respelled = format!(
                "{{\n  \"threshold\": {threshold},\n  \"seed\": {seed},\
                 \n  \"quantile_levels\": {levels},\n  \"model\": {model:?},\
                 \n  \"inputs\": {inputs},\n  \"engine\": {engine:?},\
                 \n  \"budget\": {budget}\n}}",
                levels = json::to_string(&wire.quantile_levels),
                inputs = json::to_string(&wire.inputs),
                model = wire.model,
                engine = wire.engine,
            );
            let decoded = WireRequest::from_json(&json::parse(&respelled).expect("valid JSON"))
                .expect("respelled request decodes");
            let recanonicalized = CanonicalRequest::from_wire(&decoded).expect("same engine");
            assert_eq!(canonical.bytes(), recanonicalized.bytes(), "canonical bytes agree");
            assert_eq!(canonical.content_hash(), recanonicalized.content_hash());
            assert_eq!(canonical.engine(), recanonicalized.engine());

            // The hash is FNV-1a/64 of the canonical bytes, and the hex
            // spelling is its 16-digit rendering.
            assert_eq!(canonical.content_hash(), fnv1a64(canonical.bytes().as_bytes()));
            assert_eq!(
                canonical.hash_hex(),
                format!("{:016x}", canonical.content_hash())
            );

            // Omitted members decode to defaults, so a minimal spelling
            // and an explicit-defaults spelling canonicalize alike.
            let minimal = format!(
                "{{\"engine\": {engine:?}, \"model\": {model:?}, \"inputs\": {inputs}}}",
                engine = wire.engine,
                model = wire.model,
                inputs = json::to_string(&wire.inputs),
            );
            let minimal_decoded =
                WireRequest::from_json(&json::parse(&minimal).expect("valid JSON"))
                    .expect("minimal request decodes");
            let defaults =
                WireRequest::new(ENGINE_NAMES[engine], MODELS[model], wire.inputs.clone());
            assert_eq!(
                CanonicalRequest::from_wire(&minimal_decoded).expect("decodes").bytes(),
                CanonicalRequest::from_wire(&defaults).expect("decodes").bytes(),
                "omitted members canonicalize as their defaults"
            );
        },
    );
}

// ------------------------------------------------------------------
// Evidence calculus: Bel ≤ Pl for every subset of the frame.
// ------------------------------------------------------------------

/// For any mass function, belief never exceeds plausibility, both are
/// probabilities, `Pl(A) = 1 − Bel(¬A)`, and belief is monotone under
/// set inclusion.
#[test]
fn belief_is_bounded_by_plausibility_on_every_subset() {
    const TINY: f64 = 1e-9;
    let frame = Frame::new(vec!["a", "b", "c", "d"]).expect("valid frame");
    let theta = frame.theta();
    propcheck::check(
        "belief_is_bounded_by_plausibility_on_every_subset",
        64,
        vec_of((u64_range(1..16), f64_range(0.01, 1.0)), 1..6),
        |entries| {
            // Merge duplicate focal sets, then normalize to total mass 1.
            let mut focal: BTreeMap<u64, f64> = BTreeMap::new();
            for &(mask, weight) in entries {
                *focal.entry(mask).or_insert(0.0) += weight;
            }
            let total: f64 = focal.values().sum();
            let elements: Vec<(u64, f64)> =
                focal.into_iter().map(|(mask, w)| (mask, w / total)).collect();
            let m = MassFunction::from_focal(&frame, elements).expect("normalized mass");

            for set in 1..theta {
                let bel = m.belief(set);
                let pl = m.plausibility(set);
                assert!(bel <= pl + TINY, "Bel({set:#b}) = {bel} exceeds Pl = {pl}");
                assert!((-TINY..=1.0 + TINY).contains(&bel), "Bel is a probability");
                assert!((-TINY..=1.0 + TINY).contains(&pl), "Pl is a probability");
                let complement = theta & !set;
                assert!(
                    (pl + m.belief(complement) - 1.0).abs() < TINY,
                    "Pl(A) = 1 - Bel(not A) fails for {set:#b}"
                );
                for bit in 0..4u64 {
                    let superset = set | (1 << bit);
                    assert!(
                        bel <= m.belief(superset) + TINY,
                        "belief must be monotone under inclusion"
                    );
                }
            }
            assert!((m.belief(theta) - 1.0).abs() < TINY, "Bel(Θ) = 1");
            assert!((m.plausibility(theta) - 1.0).abs() < TINY, "Pl(Θ) = 1");
        },
    );
}

// ------------------------------------------------------------------
// Fault-tree analysis: MOCUS cut sets are sufficient and minimal.
// ------------------------------------------------------------------

const N_EVENTS: usize = 5;

/// A randomly shaped gate tree over `N_EVENTS` shared basic events.
#[derive(Clone, Debug)]
enum TreeSpec {
    Leaf(usize),
    Gate(usize, Vec<TreeSpec>),
}

fn tree_spec() -> BoxedStrategy<TreeSpec> {
    recursive(
        || usize_range(0..N_EVENTS).map(TreeSpec::Leaf).boxed(),
        2,
        |inner| {
            (usize_range(0..3), vec_of(inner, 2..4))
                .map(|(kind, children)| TreeSpec::Gate(kind, children))
                .boxed()
        },
    )
}

fn build_node(
    tree: &mut FaultTree,
    events: &[NodeRef],
    spec: &TreeSpec,
    counter: &mut usize,
) -> NodeRef {
    match spec {
        TreeSpec::Leaf(i) => events[*i],
        TreeSpec::Gate(kind, children) => {
            let mut inputs: Vec<NodeRef> = Vec::new();
            for child in children {
                let node = build_node(tree, events, child, counter);
                if !inputs.contains(&node) {
                    inputs.push(node);
                }
            }
            let kind = match kind {
                0 => GateKind::And,
                1 => GateKind::Or,
                _ => GateKind::KOfN(2.min(inputs.len())),
            };
            *counter += 1;
            tree.add_gate(format!("g{counter}"), kind, inputs).expect("valid gate")
        }
    }
}

/// Every MOCUS cut set triggers the top event on its own, stops
/// triggering it when any single member is removed (minimality — the
/// gates are monotone, so a sufficient proper subset would itself be a
/// smaller cut set), and no listed cut set contains another.
#[test]
fn fta_cut_sets_are_sufficient_minimal_and_incomparable() {
    propcheck::check(
        "fta_cut_sets_are_sufficient_minimal_and_incomparable",
        64,
        tree_spec(),
        |spec| {
            let mut tree = FaultTree::new();
            let events: Vec<NodeRef> = (0..N_EVENTS)
                .map(|i| {
                    tree.add_basic_event(format!("e{i}"), 0.05 + 0.04 * i as f64)
                        .expect("valid event")
                })
                .collect();
            let mut counter = 0;
            let top = build_node(&mut tree, &events, spec, &mut counter);
            tree.set_top(top).expect("top exists");

            let cuts = minimal_cut_sets(&tree).expect("analyzable tree");
            assert!(!cuts.is_empty(), "a monotone tree with a top event has cut sets");
            for cut in &cuts {
                let mut failed = vec![false; N_EVENTS];
                for &i in cut {
                    failed[i] = true;
                }
                assert!(
                    tree.structure_function(&failed).expect("evaluates"),
                    "cut set {cut:?} must be sufficient"
                );
                for &i in cut {
                    failed[i] = false;
                    assert!(
                        !tree.structure_function(&failed).expect("evaluates"),
                        "cut set {cut:?} minus event {i} must not trigger the top"
                    );
                    failed[i] = true;
                }
            }
            for (i, a) in cuts.iter().enumerate() {
                for (j, b) in cuts.iter().enumerate() {
                    assert!(
                        i == j || !a.is_subset(b),
                        "cut sets must be pairwise incomparable: {a:?} ⊆ {b:?}"
                    );
                }
            }
        },
    );
}

// ------------------------------------------------------------------
// The acceptance knockout: a deliberately broken invariant shrinks to
// a minimal counterexample whose seed replays deterministically.
// ------------------------------------------------------------------

/// Asserts the (false) claim that no Normal quantile exceeds the
/// median. The harness must find the violation, shrink the level to
/// the 0.5 boundary, and replay it bit-identically — both from
/// `Config::with_seed` and through the real `PROPCHECK_SEED`
/// environment variable.
#[test]
fn a_broken_invariant_shrinks_to_minimal_and_replays_via_seed() {
    let broken = |p: &f64| {
        let d = Normal::new(0.0, 1.0).expect("valid");
        assert!(
            d.quantile(*p) <= d.quantile(0.5),
            "deliberately broken claim: q({p}) never exceeds the median"
        );
    };
    let config = propcheck::Config::new("knockout_quantile_monotonicity").cases(64).ephemeral();
    let failure = propcheck::check_config(&config, f64_range(0.001, 0.999), broken)
        .expect_err("the broken invariant must produce a counterexample");
    assert_eq!(failure.name, "knockout_quantile_monotonicity");
    assert!(
        failure.minimal > 0.5 && failure.minimal < 0.501,
        "shrinking lands on the smallest violating level, got {}",
        failure.minimal
    );
    assert!(!failure.persisted, "ephemeral runs never write the corpus");

    // Replay 1: explicit seed. Exactly one case, bit-identical minimum.
    let replay = propcheck::Config::new("knockout_quantile_monotonicity")
        .with_seed(failure.seed)
        .ephemeral();
    let replayed = propcheck::check_config(&replay, f64_range(0.001, 0.999), broken)
        .expect_err("the seed reproduces the failure");
    assert_eq!(replayed.minimal.to_bits(), failure.minimal.to_bits());
    assert_eq!(replayed.seed, failure.seed);
    assert_eq!(replayed.case, 0, "seed replay runs the replayed case first");

    // Replay 2: the PROPCHECK_SEED environment variable — the recipe
    // the failure report prints.
    std::env::set_var("PROPCHECK_SEED", format!("{:#x}", failure.seed));
    let from_env = propcheck::Config::new("knockout_quantile_monotonicity").ephemeral();
    let env_replayed = propcheck::check_config(&from_env, f64_range(0.001, 0.999), broken);
    std::env::remove_var("PROPCHECK_SEED");
    let env_failure = env_replayed.expect_err("the env seed reproduces the failure");
    assert_eq!(env_failure.minimal.to_bits(), failure.minimal.to_bits());
    assert!(
        format!("{failure}").contains("PROPCHECK_SEED"),
        "the report prints the replay recipe"
    );
}
