//! Measures propagation throughput per engine × paper model, chunked
//! vs scalar, and writes the machine-readable comparison.
//!
//! ```text
//! engine_bench [--out BENCH_engine.json] [--budget 65536] [--reps 3]
//!              [--seed 2020]
//! ```
//!
//! The three design-of-experiment engines (`monte-carlo`,
//! `latin-hypercube`, `sobol-qmc`) are timed twice on each paper model
//! (`orbital-period` with uniform parameter spreads, `missed-hazard`
//! with uniform world-mix shares): once through the scalar reference
//! path (`sysunc::sampling::propagate`, one allocation and one virtual
//! dispatch per sample) and once through the chunked struct-of-arrays
//! driver (`sysunc::propagator::propagate_chunked`). The two paths
//! produce bit-identical outputs (see `tests/engine_chunked.rs`), so
//! the ratio is a pure kernel-efficiency number. The spectral and
//! evidential engines have no scalar/chunked split; their rows carry
//! the full-engine throughput with speedup 1.0 for trend continuity.
//!
//! Output: a `sysunc-bench-engine/1` JSON document. Each rep measures a
//! full run and the best rep wins (noise floors, not averages, reflect
//! kernel cost on a loaded machine).

use std::process::ExitCode;
use std::time::Instant;
use sysunc::orbital::TwoBodyPeriodModel;
use sysunc::perception::MissedHazardModel;
use sysunc::prob::dist::{Continuous, Uniform};
use sysunc::prob::json::writer::JsonWriter;
use sysunc::prob::rng::{SeedableRng, StdRng};
use sysunc::propagator::{propagate_chunked, ChunkOptions};
use sysunc::sampling::{
    propagate, Design, LatinHypercubeDesign, RandomDesign, SobolDesign,
};
use sysunc::{
    EvidentialEngine, Model, PropagationRequest, Propagator, SpectralEngine, UncertainInput,
};

struct Args {
    out: String,
    budget: usize,
    reps: usize,
    seed: u64,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut parsed =
        Args { out: "BENCH_engine.json".into(), budget: 65_536, reps: 3, seed: 2020 };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--out" => parsed.out = value("--out")?,
            "--budget" => {
                parsed.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--reps" => {
                parsed.reps =
                    value("--reps")?.parse().map_err(|e| format!("--reps: {e}"))?
            }
            "--seed" => {
                parsed.seed =
                    value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    parsed.budget = parsed.budget.max(1);
    parsed.reps = parsed.reps.max(1);
    Ok(parsed)
}

/// One benchmark workload: a paper model plus matching uniform inputs
/// (uniform marginals keep the inverse-CDF cheap, so the measured
/// difference is the kernel structure, not special-function cost).
struct Workload<'m> {
    name: &'static str,
    model: &'m dyn Model,
    dists: Vec<Uniform>,
    wire_inputs: Vec<UncertainInput>,
}

impl Workload<'_> {
    fn refs(&self) -> Vec<&dyn Continuous> {
        self.dists.iter().map(|d| d as &dyn Continuous).collect()
    }
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let started = Instant::now();
        f();
        best = best.min(started.elapsed().as_secs_f64());
    }
    best
}

struct Row {
    engine: &'static str,
    model: &'static str,
    scalar_sps: f64,
    chunked_sps: f64,
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("engine_bench: {msg}");
            return ExitCode::FAILURE;
        }
    };

    let valid = |d: Result<Uniform, _>| d.expect("literal bounds are valid");
    let period = TwoBodyPeriodModel;
    let hazard = match MissedHazardModel::paper_camera() {
        Ok(hazard) => hazard,
        Err(e) => {
            eprintln!("engine_bench: cannot build the paper camera: {e}");
            return ExitCode::FAILURE;
        }
    };
    let workloads = [
        Workload {
            name: "orbital-period",
            model: &period,
            dists: vec![
                valid(Uniform::new(0.8, 1.2)),
                valid(Uniform::new(0.8, 1.2)),
                valid(Uniform::new(0.9, 1.1)),
            ],
            wire_inputs: vec![
                UncertainInput::Uniform { a: 0.8, b: 1.2 },
                UncertainInput::Uniform { a: 0.8, b: 1.2 },
                UncertainInput::Uniform { a: 0.9, b: 1.1 },
            ],
        },
        Workload {
            name: "missed-hazard",
            model: &hazard,
            dists: vec![valid(Uniform::new(0.0, 1.0)), valid(Uniform::new(0.0, 0.3))],
            wire_inputs: vec![
                UncertainInput::Uniform { a: 0.0, b: 1.0 },
                UncertainInput::Uniform { a: 0.0, b: 0.3 },
            ],
        },
    ];

    let designs: [(&'static str, Box<dyn Design>); 3] = [
        ("monte-carlo", Box::new(RandomDesign)),
        ("latin-hypercube", Box::new(LatinHypercubeDesign)),
        ("sobol-qmc", Box::new(SobolDesign::default())),
    ];

    let mut rows = Vec::new();
    for w in &workloads {
        let refs = w.refs();
        for (engine, design) in &designs {
            // The scalar reference path is generic over a sized model;
            // a closure shim keeps the per-sample virtual call it would
            // pay for any real model behind the facade.
            let shim = |x: &[f64]| w.model.eval(x);
            let scalar = best_secs(args.reps, || {
                let mut rng = StdRng::seed_from_u64(args.seed);
                propagate(&refs, design.as_ref(), &shim, args.budget, &mut rng)
                    .expect("scalar path runs");
            });
            let chunked = best_secs(args.reps, || {
                let mut rng = StdRng::seed_from_u64(args.seed);
                propagate_chunked(
                    &refs,
                    design.as_ref(),
                    w.model,
                    args.budget,
                    ChunkOptions::auto(args.budget),
                    &mut rng,
                )
                .expect("chunked path runs");
            });
            rows.push(Row {
                engine,
                model: w.name,
                scalar_sps: args.budget as f64 / scalar.max(1e-12),
                chunked_sps: args.budget as f64 / chunked.max(1e-12),
            });
        }

        // Full-engine rows for the two non-sampling engines: no scalar/
        // chunked split, recorded for trend continuity at speedup 1.0.
        let engines: [(&'static str, Box<dyn Propagator>); 2] = [
            ("pce-spectral", Box::new(SpectralEngine::default())),
            ("evidential", Box::new(EvidentialEngine::default())),
        ];
        for (name, engine) in &engines {
            let request = match PropagationRequest::new(w.wire_inputs.clone(), w.model) {
                Ok(request) => request.with_budget(args.budget).with_seed(args.seed),
                Err(e) => {
                    eprintln!("engine_bench: cannot build a request for {}: {e}", w.name);
                    return ExitCode::FAILURE;
                }
            };
            let mut evaluations = 0usize;
            let secs = best_secs(args.reps, || {
                let report = engine.propagate(&request).expect("engine runs");
                evaluations = report.evaluations;
            });
            let sps = evaluations as f64 / secs.max(1e-12);
            rows.push(Row { engine: name, model: w.name, scalar_sps: sps, chunked_sps: sps });
        }
    }

    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("schema").string("sysunc-bench-engine/1");
    w.key("budget").u64(args.budget as u64);
    w.key("reps").u64(args.reps as u64);
    w.key("seed").u64(args.seed);
    w.key("entries").begin_array();
    for row in &rows {
        let speedup = row.chunked_sps / row.scalar_sps.max(1e-12);
        w.begin_object();
        w.key("engine").string(row.engine);
        w.key("model").string(row.model);
        w.key("scalar_sps").f64(row.scalar_sps);
        w.key("chunked_sps").f64(row.chunked_sps);
        w.key("speedup").f64(speedup);
        w.end_object();
        println!(
            "{:<16} {:<16} scalar {:>12.0} samples/s  chunked {:>12.0} samples/s  {:>5.2}x",
            row.engine, row.model, row.scalar_sps, row.chunked_sps, speedup
        );
    }
    w.end_array();
    w.end_object();
    let doc = match w.finish() {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("engine_bench: cannot render the document: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = std::fs::write(&args.out, doc + "\n") {
        eprintln!("engine_bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("engine_bench: wrote {}", args.out);
    ExitCode::SUCCESS
}
