//! Rule `lock-hygiene`: mutex/rwlock guards must be acquired with an
//! explicit poisoning policy and must not stay live across blocking
//! calls.
//!
//! Two findings, both about the same hazard class — a lock held in a
//! state the author did not think about:
//!
//! 1. **Unwrapped acquisition.** `.lock().unwrap()` (and
//!    `.read()`/`.write()` on an `RwLock`) turns a poisoned lock into a
//!    library panic: one worker's panic cascades through every other
//!    thread that touches the mutex. Library code must either recover
//!    (`.unwrap_or_else(|e| e.into_inner())`, the workspace's `lock()`
//!    helper idiom) or acknowledge the poisoning policy explicitly with
//!    `// tidy: allow(lock-hygiene)`. This finding is token-shaped
//!    (`resolution: token`).
//! 2. **Guard live across a blocking call.** A `let`-bound guard that
//!    is still live when the function sleeps, joins a thread, does
//!    socket I/O or blocks on a channel `recv` serializes every other
//!    thread behind an operation of unbounded latency — the deadlock
//!    shape the serve worker pool is designed around. Liveness runs as
//!    real dataflow over the function's [`crate::cfg`] control-flow
//!    graph (`resolution: cfg`): a guard counts as held at a blocking
//!    call only if some path actually carries it there. An early
//!    `return` between acquisition and the call, a move into another
//!    function, `drop(guard)`, a reassignment, or the end of the
//!    binding's scope all end liveness on that path.
//!
//! `Condvar::wait` is deliberately **not** a blocking call here: it
//! atomically releases the guard it consumes — holding a guard at a
//! `wait` call is the correct condition-variable idiom, not a hazard.
//! Closure bodies are outside the enclosing function's CFG (they run
//! on another schedule), so guards acquired or used inside closures
//! are never charged to the enclosing function.
//!
//! Acquisition is token-shaped over the lexed stream: an
//! empty-argument `.lock()`/`.read()`/`.write()` method call or a call
//! whose final path segment is exactly `lock` (the free-helper idiom);
//! buffer-taking `read(&mut buf)`/`write(&buf)` I/O calls do not match.
//! Kills over-approximate (any bare mention that could be a move ends
//! liveness), so the rule under-approximates "held" — it can miss a
//! hazard, but it does not accuse a guard that a path already
//! released.

use std::collections::HashSet;

use crate::cfg::{self, BitSet, Cfg};
use crate::lexer::TokenKind;
use crate::resolve;
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct LockHygiene;

/// Callables of unbounded latency a guard must not be held across.
/// `wait`/`wait_timeout` are excluded on purpose: `Condvar::wait`
/// releases the guard it consumes.
pub(crate) const BLOCKING: &[&str] = &[
    "sleep",
    "join",
    "recv",
    "recv_timeout",
    "accept",
    "connect",
    "read_to_end",
    "read_to_string",
    "read_exact",
    "write_all",
    "flush",
];

/// Guard-returning method names (empty-argument calls only, so
/// buffer-taking `Read::read`/`Write::write` never match).
const GUARD_METHODS: &[&str] = &["lock", "read", "write"];

/// True when the ident at `i` is a guard-acquiring call: an
/// empty-argument `.lock()`/`.read()`/`.write()` method, or any call
/// whose final path segment is exactly `lock` (e.g. the workspace's
/// poison-recovering `lock(&mutex)` helper, or `Mutex::lock(&m)`).
pub(crate) fn is_guard_acquisition(file: &SourceFile, i: usize) -> bool {
    let tokens = file.tokens();
    let t = &tokens[i];
    if t.kind != TokenKind::Ident {
        return false;
    }
    let name = file.text(t);
    let mut after = (i + 1..tokens.len()).filter(|&k| !tokens[k].is_comment());
    let Some(open) = after.next() else { return false };
    if !(tokens[open].kind == TokenKind::Punct && file.text(&tokens[open]) == "(") {
        return false;
    }
    let method = tokens[..i]
        .iter()
        .rev()
        .find(|u| !u.is_comment())
        .map(|u| u.kind == TokenKind::Punct && file.text(u) == ".")
        .unwrap_or(false);
    if method {
        // `.lock()` / `.read()` / `.write()` with no arguments.
        GUARD_METHODS.contains(&name)
            && after
                .next()
                .map(|c| tokens[c].kind == TokenKind::Punct && file.text(&tokens[c]) == ")")
                .unwrap_or(false)
    } else {
        // Free or path call: only the exact name `lock` qualifies.
        name == "lock"
    }
}

/// If the tokens right after `i` are `. unwrap (`, returns the index of
/// the `unwrap` ident.
fn unwrap_after(file: &SourceFile, i: usize) -> Option<usize> {
    let tokens = file.tokens();
    let mut sig = (i..tokens.len()).filter(|&k| !tokens[k].is_comment());
    let dot = sig.next()?;
    if !(tokens[dot].kind == TokenKind::Punct && file.text(&tokens[dot]) == ".") {
        return None;
    }
    let unwrap = sig.next()?;
    if !(tokens[unwrap].kind == TokenKind::Ident && file.text(&tokens[unwrap]) == "unwrap") {
        return None;
    }
    let open = sig.next()?;
    (tokens[open].kind == TokenKind::Punct && file.text(&tokens[open]) == "(")
        .then_some(unwrap)
}

/// The index one past the matching `)` of the `(` at `open`.
fn close_paren(file: &SourceFile, open: usize) -> usize {
    let tokens = file.tokens();
    let mut depth = 0i64;
    let mut j = open;
    while j < tokens.len() {
        if tokens[j].kind == TokenKind::Punct {
            match file.text(&tokens[j]) {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    j
}

impl Lint for LockHygiene {
    fn name(&self) -> &'static str {
        "lock-hygiene"
    }

    fn explain(&self) -> &'static str {
        "Mutex/RwLock guards need an explicit poisoning policy and bounded \
         hold times. `.lock().unwrap()` (or `.read()`/`.write()` unwrapped) \
         turns one thread's panic into a process-wide cascade through the \
         poisoned lock — recover with `.unwrap_or_else(|e| e.into_inner())` \
         (the workspace `lock()` helper) or acknowledge the policy with \
         `// tidy: allow(lock-hygiene)`. A let-bound guard still live at a \
         call to `sleep`, `join`, `recv`, or socket I/O serializes all other \
         threads behind unbounded latency; liveness is computed over the \
         function's control-flow graph, so only paths that actually carry \
         the guard to the call count — early returns, moves, `drop(guard)` \
         and scope ends all release it. `Condvar::wait` is exempt — it \
         releases the guard it consumes, so holding one there is the \
         correct idiom."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let tokens = file.tokens();
        for i in 0..tokens.len() {
            let t = &tokens[i];
            if t.kind != TokenKind::Ident || file.in_test_block(t.line) {
                continue;
            }
            // (1) Unwrapped acquisition: `.lock().unwrap()` and friends.
            if is_guard_acquisition(file, i) {
                let open = (i + 1..tokens.len())
                    .find(|&k| !tokens[k].is_comment())
                    .unwrap_or(i + 1);
                let after_call = close_paren(file, open);
                if unwrap_after(file, after_call).is_some() {
                    let name = file.text(t);
                    out.push(Violation {
                        file: file.path.clone(),
                        line: t.line,
                        rule: self.name(),
                        resolution: "token",
                        message: format!(
                            "`.{name}().unwrap()` panics on a poisoned lock, cascading \
                             one thread's panic through every other; recover with \
                             `.unwrap_or_else(|e| e.into_inner())` or acknowledge the \
                             poisoning policy"
                        ),
                    });
                }
            }
        }
        // (2) Guards live across blocking calls: CFG dataflow per fn.
        for f in &resolve::parse_facts(file).fns {
            let Some(body) = f.body else { continue };
            if file.in_test_block(f.line) {
                continue;
            }
            let graph = cfg::build(file, body);
            let facts = guard_facts(file, body);
            if facts.is_empty() {
                continue;
            }
            check_liveness(file, &graph, &facts, out);
        }
    }
}

/// One guard binding inside a function body.
pub(crate) struct GuardFact {
    /// The binding name.
    pub name: String,
    /// 1-based line of the `let`.
    pub let_line: usize,
    /// Token index (the statement's `;`) after which the guard is live.
    pub gen_at: usize,
    /// Token index of the acquiring ident inside the initializer.
    pub acq: usize,
    /// Token index of the `}` closing the binding's scope; the guard
    /// cannot be live at or past it.
    pub scope_close: usize,
}

/// Collects the guard bindings of one function body: `let`s whose
/// whole initializer is a guard acquisition (plus `unwrap`-family
/// adapters that still yield the guard).
pub(crate) fn guard_facts(file: &SourceFile, body: (usize, usize)) -> Vec<GuardFact> {
    let tokens = file.tokens();
    let (open, close) = body;
    let mut out = Vec::new();
    for i in open + 1..close.min(tokens.len()) {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || file.text(t) != "let" || file.in_test_block(t.line) {
            continue;
        }
        let mut sig = (i + 1..tokens.len()).filter(|&k| !tokens[k].is_comment());
        let Some(mut n) = sig.next() else { continue };
        if tokens[n].kind == TokenKind::Ident && file.text(&tokens[n]) == "mut" {
            match sig.next() {
                Some(k) => n = k,
                None => continue,
            }
        }
        if tokens[n].kind != TokenKind::Ident {
            continue; // destructuring patterns are out of scope
        }
        let name = file.text(&tokens[n]);
        // Statement extent: to the `;` at relative depth 0.
        let mut stmt_end = None;
        let mut acquires = None;
        let mut depth = 0i64;
        let mut j = n + 1;
        while j < tokens.len() {
            let u = &tokens[j];
            if u.kind == TokenKind::Punct {
                match file.text(u) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            break; // malformed; bail out
                        }
                    }
                    ";" if depth == 0 => {
                        stmt_end = Some(j);
                        break;
                    }
                    _ => {}
                }
            }
            if u.kind == TokenKind::Ident && is_guard_acquisition(file, j) {
                acquires = Some(j);
            }
            j += 1;
        }
        let (Some(stmt_end), Some(acq)) = (stmt_end, acquires) else { continue };
        // The binding holds the guard only when the acquisition — plus
        // result adapters that still yield it (`unwrap`,
        // `unwrap_or_else`, `expect`) — is the *whole* initializer. A
        // further method call (`lock(m).drain(..).collect()`) consumes
        // the guard inside the statement; it dies at the semicolon.
        let paren = (acq + 1..tokens.len())
            .find(|&k| !tokens[k].is_comment())
            .unwrap_or(acq + 1);
        let mut e = close_paren(file, paren);
        loop {
            let mut sig = (e..tokens.len()).filter(|&k| !tokens[k].is_comment());
            let (Some(dot), Some(method), Some(p)) = (sig.next(), sig.next(), sig.next())
            else {
                break;
            };
            if tokens[dot].kind == TokenKind::Punct
                && file.text(&tokens[dot]) == "."
                && tokens[method].kind == TokenKind::Ident
                && matches!(file.text(&tokens[method]), "unwrap" | "unwrap_or_else" | "expect")
                && tokens[p].kind == TokenKind::Punct
                && file.text(&tokens[p]) == "("
            {
                e = close_paren(file, p);
            } else {
                break;
            }
        }
        if (e..stmt_end).any(|k| !tokens[k].is_comment()) {
            continue; // the guard is consumed inside its own statement
        }
        // Scope close: the `}` taking brace depth negative after the
        // statement (the function's own `}` as the fallback).
        let mut depth = 0i64;
        let mut scope_close = close;
        for k in stmt_end + 1..close.min(tokens.len()) {
            if tokens[k].kind == TokenKind::Punct {
                match file.text(&tokens[k]) {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth < 0 {
                            scope_close = k;
                            break;
                        }
                    }
                    _ => {}
                }
            }
        }
        out.push(GuardFact {
            name: name.to_string(),
            let_line: t.line,
            gen_at: stmt_end,
            acq,
            scope_close,
        });
    }
    out
}

/// What a token does to a guard fact during replay.
enum Ev {
    Gen,
    Kill,
}

/// The effect of token `k` on fact `f`, in replay order: leaving the
/// binding's scope kills; the binding statement's end gens; after
/// that, `drop(name)`, any bare mention that could move the guard, a
/// reassignment, or a shadowing rebind kills. Borrows (`&name`,
/// `*name`) and uses through the guard (`name.method()`, `name[..]`)
/// keep it live.
fn event_at(file: &SourceFile, k: usize, f: &GuardFact) -> Option<Ev> {
    let tokens = file.tokens();
    if k >= f.scope_close {
        return Some(Ev::Kill);
    }
    if k == f.gen_at {
        return Some(Ev::Gen);
    }
    if k <= f.gen_at {
        return None;
    }
    let t = &tokens[k];
    if t.kind != TokenKind::Ident {
        return None;
    }
    let text = file.text(t);
    if text == "drop" {
        // `drop(name)` releases early.
        let mut sig = (k + 1..tokens.len()).filter(|&j| !tokens[j].is_comment());
        if let (Some(open), Some(arg)) = (sig.next(), sig.next()) {
            if tokens[open].kind == TokenKind::Punct
                && file.text(&tokens[open]) == "("
                && tokens[arg].kind == TokenKind::Ident
                && file.text(&tokens[arg]) == f.name
            {
                return Some(Ev::Kill);
            }
        }
        return None;
    }
    if text != f.name {
        return None;
    }
    // A mention of the binding. Decide move-vs-use from its neighbors.
    let prev = tokens[..k].iter().rposition(|u| !u.is_comment());
    if let Some(p) = prev {
        let u = &tokens[p];
        let pt = file.text(u);
        if u.kind == TokenKind::Punct && matches!(pt, "." | "::" | "&" | "&&" | "*") {
            return None; // field/path segment, borrow, or deref
        }
        if u.kind == TokenKind::Ident && pt == "mut" {
            // `&mut name` is a borrow.
            let pp = tokens[..p].iter().rposition(|v| !v.is_comment());
            if let Some(pp) = pp {
                let v = &tokens[pp];
                if v.kind == TokenKind::Punct && matches!(file.text(v), "&" | "&&") {
                    return None;
                }
            }
        }
    }
    let next = (k + 1..tokens.len()).find(|&j| !tokens[j].is_comment());
    if let Some(nx) = next {
        let u = &tokens[nx];
        if u.kind == TokenKind::Punct && matches!(file.text(u), "." | "[") {
            return None; // method call or index through the guard
        }
    }
    // Anything else — passed to a function, matched on, reassigned,
    // returned, shadowed — may consume the guard: kill (bias toward
    // "released", never accusing a path that let go).
    Some(Ev::Kill)
}

/// Per-block gen/kill sets for the guard facts, by linear replay of
/// each block's token segments.
fn block_sets(file: &SourceFile, graph: &Cfg, facts: &[GuardFact]) -> (Vec<BitSet>, Vec<BitSet>) {
    let nb = graph.blocks.len();
    let mut gen = vec![BitSet::new(facts.len()); nb];
    let mut kill = vec![BitSet::new(facts.len()); nb];
    for b in 0..nb {
        for k in graph.tokens_of(b) {
            for (fi, f) in facts.iter().enumerate() {
                match event_at(file, k, f) {
                    Some(Ev::Gen) => {
                        gen[b].insert(fi);
                        kill[b].remove(fi);
                    }
                    Some(Ev::Kill) => {
                        kill[b].insert(fi);
                        gen[b].remove(fi);
                    }
                    None => {}
                }
            }
        }
    }
    (gen, kill)
}

/// For each queried token index, the fact indices live immediately
/// before that token (dataflow live-in plus in-block replay). Shared
/// with the `lock-order-cycle` rule, which asks at acquisition and
/// call sites.
pub(crate) fn live_facts_at(
    file: &SourceFile,
    graph: &Cfg,
    facts: &[GuardFact],
    sites: &[usize],
) -> std::collections::HashMap<usize, Vec<usize>> {
    let (gen, kill) = block_sets(file, graph, facts);
    let ins = cfg::forward(graph, &gen, &kill);
    let mut out = std::collections::HashMap::new();
    for b in 0..graph.blocks.len() {
        let mut live = ins[b].clone();
        for k in graph.tokens_of(b) {
            if sites.contains(&k) {
                out.insert(k, live.ones());
            }
            for (fi, f) in facts.iter().enumerate() {
                match event_at(file, k, f) {
                    Some(Ev::Gen) => live.insert(fi),
                    Some(Ev::Kill) => live.remove(fi),
                    None => {}
                }
            }
        }
    }
    out
}

/// Runs the gen/kill dataflow over the CFG and reports guards live at
/// blocking call sites (one finding per guard, deterministic order).
fn check_liveness(file: &SourceFile, graph: &Cfg, facts: &[GuardFact], out: &mut Vec<Violation>) {
    let tokens = file.tokens();
    let nb = graph.blocks.len();
    let (gen, kill) = block_sets(file, graph, facts);
    let ins = cfg::forward(graph, &gen, &kill);
    let mut reported: HashSet<usize> = HashSet::new();
    for b in 0..nb {
        let mut live = ins[b].clone();
        for k in graph.tokens_of(b) {
            for (fi, f) in facts.iter().enumerate() {
                match event_at(file, k, f) {
                    Some(Ev::Gen) => live.insert(fi),
                    Some(Ev::Kill) => live.remove(fi),
                    None => {}
                }
            }
            let t = &tokens[k];
            if t.kind != TokenKind::Ident || file.in_test_block(t.line) {
                continue;
            }
            let text = file.text(t);
            if !BLOCKING.contains(&text) {
                continue;
            }
            let is_call = tokens[k + 1..]
                .iter()
                .find(|v| !v.is_comment())
                .map(|v| v.kind == TokenKind::Punct && file.text(v) == "(")
                .unwrap_or(false);
            if !is_call {
                continue;
            }
            for (fi, f) in facts.iter().enumerate() {
                if live.contains(fi) && reported.insert(fi) {
                    out.push(Violation {
                        file: file.path.clone(),
                        line: t.line,
                        rule: "lock-hygiene",
                        resolution: "cfg",
                        message: format!(
                            "guard `{}` (acquired on line {}) is still live \
                             across this `{text}` call; other threads serialize \
                             behind unbounded latency — drop the guard first",
                            f.name, f.let_line
                        ),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/lib.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        LockHygiene.check(&file, &mut out);
        out
    }

    #[test]
    fn unwrapped_lock_acquisition_fires() {
        let out = run("fn f(m: &Mutex<T>) { let g = m.lock().unwrap(); }\n");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("poisoned lock"));
        assert_eq!(out[0].resolution, "token");
        assert_eq!(run("fn f(l: &RwLock<T>) { let g = l.read().unwrap(); }\n").len(), 1);
        assert_eq!(run("fn f(l: &RwLock<T>) { let g = l.write().unwrap(); }\n").len(), 1);
    }

    #[test]
    fn poison_recovering_acquisition_passes() {
        let src = "fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {\n\
                   \x20   m.lock().unwrap_or_else(|e| e.into_inner())\n}\n";
        assert!(run(src).is_empty(), "unwrap_or_else is the sanctioned idiom");
    }

    #[test]
    fn io_read_write_calls_are_not_lock_acquisitions() {
        // Buffer-taking `read`/`write` are socket/file I/O, not RwLock.
        let src = "\
fn f(s: &mut TcpStream, buf: &mut [u8]) {
    let n = s.read(buf).unwrap_or(0);
    s.write_all(buf).ok();
    s.flush().ok();
}
";
        assert!(run(src).is_empty(), "got: {:?}", run(src));
    }

    #[test]
    fn cfg_test_blocks_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    fn t(m: &Mutex<T>) { let g = m.lock().unwrap(); }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_live_across_sleep_fires() {
        let src = "\
fn f(m: &Mutex<T>) {
    let g = m.lock().unwrap_or_else(|e| e.into_inner());
    std::thread::sleep(Duration::from_millis(5));
    g.push(1);
}
";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`g`"));
        assert!(out[0].message.contains("sleep"));
        assert_eq!(out[0].line, 3, "reported at the blocking call");
        assert_eq!(out[0].resolution, "cfg", "liveness findings are CFG-resolved");
    }

    #[test]
    fn free_lock_helper_counts_as_acquisition() {
        let src = "\
fn f(m: &Mutex<T>, rx: &Receiver<T>) {
    let g = lock(m);
    let item = rx.recv().unwrap_or_default();
    g.push(item);
}
";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("recv"));
    }

    #[test]
    fn guard_dropped_before_blocking_passes() {
        // Scope end releases the guard.
        let scoped = "\
fn f(m: &Mutex<T>) {
    {
        let g = lock(m);
        g.push(1);
    }
    std::thread::sleep(D);
}
";
        assert!(run(scoped).is_empty(), "got: {:?}", run(scoped));
        // Explicit drop releases it too.
        let dropped = "\
fn f(m: &Mutex<T>, h: JoinHandle<()>) {
    let g = lock(m);
    g.push(1);
    drop(g);
    h.join().ok();
}
";
        assert!(run(dropped).is_empty(), "got: {:?}", run(dropped));
    }

    #[test]
    fn condvar_wait_with_a_held_guard_is_the_correct_idiom() {
        let src = "\
fn worker(m: &Mutex<State>, cv: &Condvar) {
    let mut g = lock(m);
    while g.queue.is_empty() {
        g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
    }
}
";
        assert!(run(src).is_empty(), "got: {:?}", run(src));
    }

    #[test]
    fn statement_temporary_guards_do_not_bind_liveness() {
        // The guard is a temporary inside one statement, dropped at the
        // semicolon — the later join is safe.
        let src = "\
fn shutdown(m: &Mutex<Vec<JoinHandle<()>>>) {
    let handles: Vec<JoinHandle<()>> = lock(m).drain(..).collect();
    for h in handles {
        h.join().ok();
    }
}
";
        let out = run(src);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn guard_moved_before_blocking_passes_without_a_literal_drop() {
        // The regression the CFG rebuild exists for: the guard is moved
        // into `finish` on the fallthrough path (no `drop()` call
        // anywhere), and the early-return path never reaches the join.
        // The statement-linear scan flagged this; path-accurate
        // liveness must not.
        let src = "\
fn f(m: &Mutex<VecDeque<u32>>, h: JoinHandle<()>) -> u32 {
    let g = lock(m);
    if let Some(v) = g.front() {
        return *v;
    }
    finish(g);
    h.join().ok();
    0
}
";
        let out = run(src);
        assert!(out.is_empty(), "moved guard is not live at join: {out:?}");
    }

    #[test]
    fn guard_live_on_only_one_path_still_fires() {
        // The else path carries the guard to the join — one live path
        // is enough.
        let src = "\
fn f(m: &Mutex<T>, h: JoinHandle<()>) {
    let g = lock(m);
    if cheap() {
        drop(g);
    } else {
        g.push(1);
    }
    h.join().ok();
}
";
        let out = run(src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].resolution, "cfg");
    }

    #[test]
    fn closure_bodies_are_not_charged_to_the_enclosing_fn() {
        // The guard lives only inside the spawned closure's body, which
        // runs on another thread's schedule — the enclosing fn's CFG
        // excises it, so the enclosing `join` is not a finding.
        let src = "\
fn f(m: &'static Mutex<T>) {
    let h = spawn(move || {
        let g = lock(m);
        g.push(1);
    });
    h.join().ok();
}
";
        let out = run(src);
        assert!(out.is_empty(), "got: {out:?}");
    }
}
