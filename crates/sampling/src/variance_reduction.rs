//! Variance-reduction techniques: antithetic variates and control
//! variates for Monte Carlo propagation.

use crate::error::{Result, SamplingError};
use crate::propagate::{Model, PropagationResult};
use sysunc_prob::rng::Rng as _;
use sysunc_prob::rng::RngCore;
use sysunc_prob::dist::Continuous;
use sysunc_prob::stats::RunningStats;

/// Antithetic-variates estimate of `E[f(X)]`: pairs `(u, 1-u)` in the unit
/// hypercube are mapped through the input quantiles, and the pair averages
/// are the (negatively correlated) observations.
///
/// For models monotone in each input this cannot increase and usually
/// halves-or-better the variance per model evaluation.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidDesign`] for `pairs == 0`.
///
/// # Examples
///
/// ```
/// use sysunc_prob::rng::SeedableRng;
/// use sysunc_prob::dist::{Continuous, Normal};
/// use sysunc_sampling::propagate_antithetic;
///
/// let x = Normal::new(0.0, 1.0)?;
/// let inputs: Vec<&dyn Continuous> = vec![&x];
/// let mut rng = sysunc_prob::rng::StdRng::seed_from_u64(3);
/// let res = propagate_antithetic(&inputs, &|x: &[f64]| x[0].exp(), 20_000, &mut rng)?;
/// assert!((res.mean() - 0.5f64.exp()).abs() < 0.02);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn propagate_antithetic<M: Model>(
    inputs: &[&dyn Continuous],
    model: &M,
    pairs: usize,
    rng: &mut dyn RngCore,
) -> Result<PropagationResult> {
    if pairs == 0 {
        return Err(SamplingError::InvalidDesign("antithetic needs pairs > 0".into()));
    }
    let dim = inputs.len();
    let mut outputs = Vec::with_capacity(pairs);
    let mut stats = RunningStats::new();
    let mut u = vec![0.0f64; dim];
    for _ in 0..pairs {
        for ui in u.iter_mut() {
            *ui = rng.random::<f64>().clamp(1e-15, 1.0 - 1e-15);
        }
        let x: Vec<f64> = u.iter().zip(inputs).map(|(&ui, d)| d.quantile(ui)).collect();
        let x_anti: Vec<f64> =
            u.iter().zip(inputs).map(|(&ui, d)| d.quantile(1.0 - ui)).collect();
        let y = 0.5 * (model.eval(&x) + model.eval(&x_anti));
        stats.push(y);
        outputs.push(y);
    }
    Ok(PropagationResult { outputs, stats })
}

/// Control-variate estimate of `E[f(X)]` using a helper `g` with known
/// mean `g_mean`: returns the corrected estimate
/// `mean(f) - c (mean(g) - g_mean)` with the optimal `c` estimated from
/// the sample covariance.
///
/// # Errors
///
/// Returns [`SamplingError::InvalidDesign`] for `n < 2`.
pub fn control_variate_estimate<M: Model, G: Model>(
    inputs: &[&dyn Continuous],
    model: &M,
    control: &G,
    control_mean: f64,
    n: usize,
    rng: &mut dyn RngCore,
) -> Result<f64> {
    if n < 2 {
        return Err(SamplingError::InvalidDesign("control variates need n >= 2".into()));
    }
    let mut fs = Vec::with_capacity(n);
    let mut gs = Vec::with_capacity(n);
    for _ in 0..n {
        let x: Vec<f64> = inputs
            .iter()
            .map(|d| d.quantile(rng.random::<f64>().clamp(1e-15, 1.0 - 1e-15)))
            .collect();
        fs.push(model.eval(&x));
        gs.push(control.eval(&x));
    }
    let mean_f: f64 = fs.iter().sum::<f64>() / n as f64;
    let mean_g: f64 = gs.iter().sum::<f64>() / n as f64;
    let mut cov = 0.0;
    let mut var_g = 0.0;
    for (f, g) in fs.iter().zip(&gs) {
        cov += (f - mean_f) * (g - mean_g);
        var_g += (g - mean_g) * (g - mean_g);
    }
    let c = if var_g > 0.0 { cov / var_g } else { 0.0 };
    Ok(mean_f - c * (mean_g - control_mean))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::propagate;
    use crate::RandomDesign;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;
    use sysunc_prob::dist::Normal;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn antithetic_reduces_variance_for_monotone_model() {
        let x = Normal::new(0.0, 1.0).unwrap();
        let inputs: Vec<&dyn Continuous> = vec![&x];
        let model = |v: &[f64]| v[0].exp();
        let truth = 0.5f64.exp();
        // Repeated small runs: antithetic errors should beat plain MC on
        // the same evaluation budget. Enough reps that the MSE comparison
        // is statistically stable across RNG choices.
        let reps = 200;
        let mut err_anti = 0.0;
        let mut err_plain = 0.0;
        for r in 0..reps {
            let a = propagate_antithetic(&inputs, &model, 500, &mut rng(r)).unwrap();
            err_anti += (a.mean() - truth).powi(2);
            let p = propagate(&inputs, &RandomDesign, &model, 1_000, &mut rng(r + 1000))
                .unwrap();
            err_plain += (p.mean() - truth).powi(2);
        }
        assert!(
            err_anti < err_plain,
            "antithetic MSE {err_anti} should beat plain {err_plain}"
        );
        assert!(propagate_antithetic(&inputs, &model, 0, &mut rng(0)).is_err());
    }

    #[test]
    fn antithetic_exact_for_linear_models() {
        // For a linear model the pair average is constant = the mean.
        let x = Normal::new(3.0, 2.0).unwrap();
        let inputs: Vec<&dyn Continuous> = vec![&x];
        let res =
            propagate_antithetic(&inputs, &|v: &[f64]| 2.0 * v[0] + 1.0, 100, &mut rng(5))
                .unwrap();
        assert!((res.mean() - 7.0).abs() < 1e-9);
        assert!(res.variance() < 1e-18);
    }

    #[test]
    fn control_variate_beats_plain_for_correlated_control() {
        let x = Normal::new(0.0, 1.0).unwrap();
        let inputs: Vec<&dyn Continuous> = vec![&x];
        let model = |v: &[f64]| v[0].exp();
        // Control: g(x) = x with known mean 0; strongly correlated.
        let control = |v: &[f64]| v[0];
        let truth = 0.5f64.exp();
        let reps = 40;
        let mut err_cv = 0.0;
        let mut err_plain = 0.0;
        for r in 0..reps {
            let est = control_variate_estimate(&inputs, &model, &control, 0.0, 1_000, &mut rng(r))
                .unwrap();
            err_cv += (est - truth).powi(2);
            let p = propagate(&inputs, &RandomDesign, &model, 1_000, &mut rng(r + 500)).unwrap();
            err_plain += (p.mean() - truth).powi(2);
        }
        assert!(err_cv < err_plain, "CV MSE {err_cv} should beat plain {err_plain}");
        assert!(control_variate_estimate(&inputs, &model, &control, 0.0, 1, &mut rng(0))
            .is_err());
    }
}
