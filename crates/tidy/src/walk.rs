//! Workspace file discovery: finds every `Cargo.toml` and `.rs` file
//! under the root and classifies each into a [`FileKind`].

use std::fs;
use std::io;
use std::path::{Component, Path, PathBuf};

use crate::{FileKind, SourceFile};

/// Directory names that are never part of the source tree.
const SKIP_DIRS: &[&str] = &["target", ".git", "node_modules"];

/// Path components that mark Rust code as harness-only (tests, benches,
/// examples and binaries are exempt from library-code rules).
const TEST_COMPONENTS: &[&str] = &["tests", "benches", "examples", "bin"];

/// Recursively collects the lintable files under `root`, with paths
/// stored relative to it.
pub fn collect(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    visit(root, root, &mut files)?;
    files.sort_by(|a, b| a.path.cmp(&b.path));
    Ok(files)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            visit(root, &path, out)?;
        } else if let Some(kind) = classify(root, &path) {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            let content = fs::read_to_string(&path)?;
            out.push(SourceFile::new(rel, content, kind));
        }
    }
    Ok(())
}

/// Decides whether a path is lintable and, if so, what kind it is.
pub fn classify(root: &Path, path: &Path) -> Option<FileKind> {
    let name = path.file_name()?.to_string_lossy();
    if name == "Cargo.toml" {
        return Some(FileKind::Manifest);
    }
    if path.extension()?.to_string_lossy() != "rs" {
        return None;
    }
    if name == "build.rs" {
        return Some(FileKind::RustTest);
    }
    let rel = path.strip_prefix(root).unwrap_or(path);
    let harness_only = rel.components().any(|c| match c {
        Component::Normal(os) => TEST_COMPONENTS.contains(&os.to_string_lossy().as_ref()),
        _ => false,
    });
    Some(if harness_only { FileKind::RustTest } else { FileKind::RustLibrary })
}

/// Finds the workspace root: the nearest ancestor of `start` whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_distinguishes_library_from_harness_code() {
        let root = Path::new("/ws");
        let lib = |p: &str| classify(root, &root.join(p));
        assert_eq!(lib("crates/prob/src/lib.rs"), Some(FileKind::RustLibrary));
        assert_eq!(lib("crates/prob/src/dist.rs"), Some(FileKind::RustLibrary));
        assert_eq!(lib("crates/bench/src/bin/exp_x.rs"), Some(FileKind::RustTest));
        assert_eq!(lib("crates/bench/benches/a.rs"), Some(FileKind::RustTest));
        assert_eq!(lib("tests/properties.rs"), Some(FileKind::RustTest));
        assert_eq!(lib("examples/demo.rs"), Some(FileKind::RustTest));
        assert_eq!(lib("Cargo.toml"), Some(FileKind::Manifest));
        assert_eq!(lib("README.md"), None);
    }
}
