//! Fleet-semantics tests: the multi-process sharded serving layer must
//! tolerate a SIGKILLed shard under load with zero failed client
//! requests, complete in-flight work across a drain-on-shutdown, and
//! route repeated requests so shard caches answer bit-identically to a
//! single-process server.
//!
//! These tests spawn real `sysunc-serve` child processes, so they need
//! the serve binary on disk. It is discovered via `SYSUNC_SERVE_BIN`
//! or the build tree (`target/{release,debug}/sysunc-serve` — tier-1's
//! `cargo build --release` provides it); when absent the tests skip
//! loudly instead of failing, so a bare `cargo test` on a fresh
//! checkout stays green.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sysunc::prob::json;
use sysunc::{ModelRegistry, UncertainInput, WireRequest};
use sysunc_fleet::{locate_serve_bin, Fleet, FleetConfig};
use sysunc_serve::{HttpClient, RetryPolicy, Server, ServerConfig};

/// The serve binary to spawn shards from, or a loud skip.
fn serve_bin() -> Option<std::path::PathBuf> {
    let found = locate_serve_bin();
    if found.is_none() {
        eprintln!(
            "SKIP fleet test: sysunc-serve binary not found — run \
             `cargo build --release -p sysunc-serve` (or set SYSUNC_SERVE_BIN)"
        );
    }
    found
}

/// A fleet config tuned for test latency: fast probes, fast restarts.
fn test_config(shards: usize, serve_bin: std::path::PathBuf) -> FleetConfig {
    FleetConfig {
        shards,
        serve_bin: Some(serve_bin),
        child_workers: 1,
        child_queue: 64,
        probe_interval: Duration::from_millis(25),
        restart_backoff: Duration::from_millis(25),
        request_timeout: Duration::from_secs(30),
        handshake_timeout: Duration::from_secs(30),
        ..FleetConfig::default()
    }
}

fn wire(seed: u64) -> WireRequest {
    let mut wire = WireRequest::new(
        "monte-carlo",
        "linear-2x3y",
        vec![
            UncertainInput::Normal { mu: 1.0, sigma: 0.5 },
            UncertainInput::Uniform { a: 0.0, b: 2.0 },
        ],
    );
    wire.budget = 256;
    wire.seed = seed;
    wire
}

/// Crash tolerance end to end: clients hammer a 2-shard fleet while
/// one shard is SIGKILLed mid-run. Every client request must succeed —
/// the router rides the ring walk and the restart — and the supervisor
/// must record the respawn.
#[test]
fn killing_a_shard_under_load_loses_no_client_requests() {
    let Some(bin) = serve_bin() else { return };
    let fleet = Fleet::start(test_config(2, bin)).expect("fleet starts");
    assert!(fleet.await_healthy(2, Duration::from_secs(10)), "both shards come up");
    let addr = fleet.addr();

    let completed = Arc::new(AtomicUsize::new(0));
    let clients = 4;
    let calls = 12;
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                let mut client = HttpClient::connect_with_retry(
                    addr,
                    Duration::from_secs(30),
                    &RetryPolicy::default(),
                )
                .expect("connects to the fleet front");
                for call in 0..calls {
                    // Seeds spread across both shards; no per-call
                    // retry here — the *front* must absorb the crash.
                    let body = json::to_string(&wire((t * 1000 + call) as u64));
                    let response = client
                        .request("POST", "/v1/propagate", Some(&body))
                        .expect("fleet answers despite the crash");
                    assert_eq!(
                        response.status,
                        200,
                        "client {t} call {call} failed: {}",
                        response.body_text()
                    );
                    completed.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Let the load get going, then SIGKILL shard 0 under it.
    while completed.load(Ordering::Relaxed) < clients {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(fleet.kill_shard(0), "crash injection reaches the child");

    for t in threads {
        t.join().expect("client thread saw zero failed requests");
    }
    assert_eq!(completed.load(Ordering::Relaxed), clients * calls);
    assert!(
        fleet.await_healthy(2, Duration::from_secs(10)),
        "the killed shard is respawned"
    );
    assert!(fleet.metrics().total_restarts() >= 1, "the restart was recorded");

    // The fleet healthz reflects the recovered state.
    let mut client = HttpClient::connect(addr).expect("connects");
    let health = client.get("/healthz").expect("healthz answers");
    assert_eq!(health.status, 200);
    let text = health.body_text();
    assert!(text.contains("\"status\":\"ok\""), "recovered fleet is ok: {text}");
    assert!(text.contains("\"healthy\":2"), "{text}");
    fleet.shutdown();
}

/// Drain on shutdown: a batch in flight when `shutdown` is called must
/// complete — the front stops accepting but finishes started work
/// against still-running children before they are drained.
#[test]
fn drain_on_shutdown_completes_the_in_flight_batch() {
    let Some(bin) = serve_bin() else { return };
    let fleet = Fleet::start(test_config(2, bin)).expect("fleet starts");
    assert!(fleet.await_healthy(2, Duration::from_secs(10)), "both shards come up");
    let addr = fleet.addr();

    let worker = std::thread::spawn(move || {
        let mut client = HttpClient::connect(addr).expect("connects");
        let jobs: Vec<String> =
            (0..24).map(|i| json::to_string(&wire(40_000 + i))).collect();
        let body = format!("{{\"jobs\":[{}]}}", jobs.join(","));
        client
            .request("POST", "/v1/propagate/batch", Some(&body))
            .expect("in-flight batch survives the shutdown")
    });
    // Give the batch time to reach a shard, then shut the fleet down
    // while it is (very likely) still being computed.
    std::thread::sleep(Duration::from_millis(30));
    fleet.shutdown();

    let response = worker.join().expect("batch client thread succeeds");
    assert_eq!(response.status, 200, "drained batch: {}", response.body_text());
    // The batch body is the bare array of per-job reports.
    let doc = json::parse(&response.body_text()).expect("batch body is JSON");
    let results = doc.as_arr();
    assert_eq!(results.map(<[_]>::len), Some(24), "all jobs completed");
}

/// Cache locality through the router: the same request sent twice to
/// the fleet lands on the same shard (content-hash placement), the
/// second answer is a cache hit, and both bodies are bit-identical to
/// what a single-process server returns.
#[test]
fn routed_cache_hits_are_bit_identical_to_single_process() {
    let Some(bin) = serve_bin() else { return };
    let fleet = Fleet::start(test_config(2, bin)).expect("fleet starts");
    assert!(fleet.await_healthy(2, Duration::from_secs(10)), "both shards come up");

    let single = Server::start(
        ServerConfig { workers: 1, ..ServerConfig::default() },
        ModelRegistry::standard().expect("registry builds"),
    )
    .expect("single-process server starts");

    let mut fleet_client = HttpClient::connect(fleet.addr()).expect("connects");
    let mut single_client = HttpClient::connect(single.addr()).expect("connects");

    // Propcheck drives the request seeds; both clients and the fleet
    // are reused across cases. `assume` rejects a seed already sent
    // (including during shrinking), so the miss/hit protocol holds for
    // every evaluated case.
    use std::cell::RefCell;
    use sysunc::prob::propcheck::{self, u64_range};
    let fleet_client = RefCell::new(fleet_client);
    let single_client = RefCell::new(single_client);
    let seen = RefCell::new(std::collections::HashSet::new());
    propcheck::check(
        "routed_cache_hits_are_bit_identical_to_single_process",
        6,
        u64_range(0..1_000_000),
        |&seed| {
            propcheck::assume(seen.borrow_mut().insert(seed));
            let body = json::to_string(&wire(seed));
            let mut fleet_client = fleet_client.borrow_mut();
            let first = fleet_client
                .request("POST", "/v1/propagate", Some(&body))
                .expect("first fleet answer");
            assert_eq!(first.status, 200, "{}", first.body_text());
            assert_eq!(first.header("X-Sysunc-Cache"), Some("miss"), "cold shard cache");
            let second = fleet_client
                .request("POST", "/v1/propagate", Some(&body))
                .expect("second fleet answer");
            assert_eq!(
                second.header("X-Sysunc-Cache"),
                Some("hit"),
                "hash placement sends the repeat to the shard that cached it"
            );
            assert_eq!(first.body, second.body, "cache hit is bit-identical");

            let direct = single_client
                .borrow_mut()
                .request("POST", "/v1/propagate", Some(&body))
                .expect("single-process answer");
            assert_eq!(direct.status, 200);
            assert_eq!(
                first.body, direct.body,
                "routed answer matches the single-process bytes (seed {seed})"
            );
        },
    );
    let mut fleet_client = fleet_client.into_inner();

    // The aggregated exposition shows fleet series plus summed child
    // series, and routing placed requests on the shards.
    let metrics = fleet_client.get("/metrics").expect("front metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_text();
    assert!(text.contains("sysunc_fleet_requests_routed_total"), "{text}");
    assert!(
        text.contains("sysunc_http_requests_total"),
        "child series are merged into the front exposition"
    );
    single.shutdown();
    fleet.shutdown();
}
