//! Rule `suite-error`: integration-suite code (the root package's
//! `src/`, `tests/` and `examples/` — everything outside `crates/`) must
//! not name per-crate error enums. The suite wires substrates together,
//! and the whole point of the unified `sysunc::Error` is that cross-crate
//! code composes with one error type; a `SamplingError` leaking into a
//! suite signature re-fragments the API the engine layer unified.
//!
//! Substrate crates under `crates/` keep using their own enums — that is
//! the correct boundary for stand-alone libraries and out of scope here.

use crate::lexer::TokenKind;
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct SuiteError;

/// The per-crate error enums that must not appear in suite code.
const FORBIDDEN: &[&str] = &[
    "ProbError",
    "AlgebraError",
    "SamplingError",
    "PceError",
    "EvidenceError",
    "BnError",
    "FtaError",
    "OrbitalError",
    "PerceptionError",
];

impl Lint for SuiteError {
    fn name(&self) -> &'static str {
        "suite-error"
    }

    fn explain(&self) -> &'static str {
        "Integration-suite code (everything outside `crates/`) must not name \
         per-crate error enums like `SamplingError` or `ProbError`. The suite \
         wires substrate crates together, and the point of the unified \
         `sysunc::Error` is that cross-crate code composes with one error \
         type; a per-crate enum leaking into a suite signature re-fragments \
         the API the engine layer unified. Substrate crates keep their own \
         enums — that boundary is correct and out of scope."
    }

    fn applies(&self, kind: FileKind) -> bool {
        matches!(kind, FileKind::RustLibrary | FileKind::RustTest)
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        // Only the integration suite is in scope: files outside crates/.
        if file.path.components().next().map(|c| c.as_os_str() == "crates").unwrap_or(false) {
            return;
        }
        for t in file.tokens() {
            // Identifier tokens only: a name quoted in a string or
            // mentioned in a comment is prose, not a use of the type.
            if t.kind != TokenKind::Ident {
                continue;
            }
            let text = file.text(t);
            if FORBIDDEN.contains(&text) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    resolution: "token",
                    message: format!(
                        "suite code names per-crate error `{text}`; \
                         use the unified `sysunc::Error` instead"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, kind: FileKind, src: &str) -> Vec<Violation> {
        let file = SourceFile::new(path, src, kind);
        let mut out = Vec::new();
        SuiteError.check(&file, &mut out);
        out
    }

    #[test]
    fn per_crate_errors_in_suite_code_fire() {
        let bad = "fn f() -> Result<(), SamplingError> { Ok(()) }\n";
        assert_eq!(run("tests/cross_crate.rs", FileKind::RustTest, bad).len(), 1);
        assert_eq!(run("examples/demo.rs", FileKind::RustTest, bad).len(), 1);
        assert_eq!(run("src/lib.rs", FileKind::RustLibrary, bad).len(), 1);
    }

    #[test]
    fn substrate_crates_are_out_of_scope() {
        let src = "pub enum SamplingError { X }\n";
        assert!(run("crates/sampling/src/error.rs", FileKind::RustLibrary, src).is_empty());
        assert!(run("crates/sampling/tests/t.rs", FileKind::RustTest, src).is_empty());
    }

    #[test]
    fn unified_error_comments_and_longer_names_pass() {
        assert!(run("tests/t.rs", FileKind::RustTest, "fn f() -> sysunc::Result<()> {}\n")
            .is_empty());
        assert!(run("tests/t.rs", FileKind::RustTest, "// mentions SamplingError in prose\n")
            .is_empty());
        assert!(run("tests/t.rs", FileKind::RustTest, "struct MyPceErrorLike;\n").is_empty());
    }

    #[test]
    fn names_in_string_literals_pass() {
        let src = "fn f() { log(\"got a ProbError from the substrate\"); }\n";
        assert!(run("tests/t.rs", FileKind::RustTest, src).is_empty());
    }
}
