//! Error types for the top-level `sysunc` crate.

use std::fmt;

/// Errors from the taxonomy, modeling-relation and case-study layers.
#[derive(Debug, Clone, PartialEq)]
pub enum SysuncError {
    /// An input slice or parameter was invalid.
    InvalidInput(String),
    /// Construction of the built-in paper case study failed (only possible
    /// if a substrate invariant is violated).
    CaseStudy(String),
}

impl fmt::Display for SysuncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SysuncError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            SysuncError::CaseStudy(msg) => write!(f, "case study construction failed: {msg}"),
        }
    }
}

impl std::error::Error for SysuncError {}

/// Convenience result alias for the `sysunc` crate.
pub type Result<T> = std::result::Result<T, SysuncError>;
