//! A navigation cursor over a lexed token stream.
//!
//! Rules express their patterns as short token walks ("`pub` then `fn`
//! then a name", "`.` then `unwrap` then `(`"), so the cursor's job is
//! to make those walks readable: peeking with comments skipped,
//! matching identifier/punctuation text, and exact brace matching for
//! body extents. It never allocates; everything is an index into the
//! token slice owned by the [`crate::SourceFile`].

use crate::lexer::{Token, TokenKind};

/// A read cursor over `tokens`, with `src` on hand to resolve text.
#[derive(Clone, Copy)]
pub struct Cursor<'a> {
    src: &'a str,
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of the stream.
    pub fn new(src: &'a str, tokens: &'a [Token]) -> Self {
        Self { src, tokens, pos: 0 }
    }

    /// Current index into the token slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Jumps to an absolute token index.
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos.min(self.tokens.len());
    }

    /// The token at the cursor, if any (comments included).
    pub fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    /// The text of the token at the cursor.
    pub fn peek_text(&self) -> Option<&'a str> {
        self.peek().map(|t| t.text(self.src))
    }

    /// Advances one token (comments included) and returns it.
    pub fn bump(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos)?;
        self.pos += 1;
        Some(t)
    }

    /// Skips any comment tokens at the cursor.
    pub fn skip_comments(&mut self) {
        while self.peek().map(Token::is_comment).unwrap_or(false) {
            self.pos += 1;
        }
    }

    /// The next non-comment token at or after the cursor, without
    /// moving.
    pub fn peek_significant(&self) -> Option<&'a Token> {
        self.tokens[self.pos..].iter().find(|t| !t.is_comment())
    }

    /// Advances past comments, returns the first significant token and
    /// steps over it.
    pub fn bump_significant(&mut self) -> Option<&'a Token> {
        self.skip_comments();
        self.bump()
    }

    /// True when the token at the cursor is an identifier with exactly
    /// this text.
    pub fn at_ident(&self, text: &str) -> bool {
        self.peek()
            .map(|t| t.kind == TokenKind::Ident && t.text(self.src) == text)
            .unwrap_or(false)
    }

    /// True when the token at the cursor is punctuation with exactly
    /// this text.
    pub fn at_punct(&self, text: &str) -> bool {
        self.peek()
            .map(|t| t.kind == TokenKind::Punct && t.text(self.src) == text)
            .unwrap_or(false)
    }

    /// Consumes an identifier with this exact text; returns whether it
    /// was there (comments before it are skipped either way).
    pub fn eat_ident(&mut self, text: &str) -> bool {
        self.skip_comments();
        if self.at_ident(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes punctuation with this exact text; returns whether it
    /// was there (comments before it are skipped either way).
    pub fn eat_punct(&mut self, text: &str) -> bool {
        self.skip_comments();
        if self.at_punct(text) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Consumes any identifier and returns its text.
    pub fn eat_any_ident(&mut self) -> Option<&'a str> {
        self.skip_comments();
        match self.peek() {
            Some(t) if t.kind == TokenKind::Ident => {
                self.pos += 1;
                Some(t.text(self.src))
            }
            _ => None,
        }
    }

    /// From the cursor, advances to just past the matching `close` for
    /// the next `open` punctuation (exact: strings and comments are
    /// opaque tokens). Returns the index one past the closing token, or
    /// `None` if the stream ends first.
    ///
    /// The cursor must be at or before the opening token; anything
    /// before it is skipped without affecting the depth count.
    pub fn skip_balanced(&mut self, open: &str, close: &str) -> Option<usize> {
        // Find the opening token first.
        while let Some(t) = self.peek() {
            if t.kind == TokenKind::Punct && t.text(self.src) == open {
                break;
            }
            self.pos += 1;
        }
        let mut depth = 0usize;
        while let Some(t) = self.bump() {
            if t.kind != TokenKind::Punct {
                continue;
            }
            let text = t.text(self.src);
            if text == open {
                depth += 1;
            } else if text == close {
                depth -= 1;
                if depth == 0 {
                    return Some(self.pos);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn cursor(src: &str) -> (Vec<Token>, String) {
        (lex(src), src.to_string())
    }

    #[test]
    fn eat_and_peek_walk_a_signature() {
        let src = "pub fn f(x: u32) {}";
        let toks = lex(src);
        let mut c = Cursor::new(src, &toks);
        assert!(c.eat_ident("pub"));
        assert!(c.eat_ident("fn"));
        assert_eq!(c.eat_any_ident(), Some("f"));
        assert!(c.at_punct("("));
    }

    #[test]
    fn significant_navigation_skips_comments() {
        let src = "a /* mid */ b // tail\nc";
        let toks = lex(src);
        let mut c = Cursor::new(src, &toks);
        assert_eq!(c.bump_significant().map(|t| t.text(src)), Some("a"));
        assert_eq!(c.peek_significant().map(|t| t.text(src)), Some("b"));
        assert_eq!(c.bump_significant().map(|t| t.text(src)), Some("b"));
        assert_eq!(c.bump_significant().map(|t| t.text(src)), Some("c"));
        assert!(c.bump_significant().is_none());
    }

    #[test]
    fn skip_balanced_is_exact_across_strings_and_comments() {
        // The `}` inside the string and the `{` inside the comment must
        // not perturb the depth count.
        let src = "fn f() { let s = \"}}}\"; /* { */ inner(); } after";
        let toks = lex(src);
        let mut c = Cursor::new(src, &toks);
        let end = c.skip_balanced("{", "}").expect("balanced");
        assert_eq!(toks[end].text(src), "after");
    }

    #[test]
    fn skip_balanced_handles_nesting_and_eof() {
        let src = "{ a { b } c } d";
        let toks = lex(src);
        let mut c = Cursor::new(src, &toks);
        let end = c.skip_balanced("{", "}").expect("balanced");
        assert_eq!(toks[end].text(src), "d");

        let src2 = "{ never closed";
        let toks2 = lex(src2);
        let mut c2 = Cursor::new(src2, &toks2);
        assert!(c2.skip_balanced("{", "}").is_none());
    }

    #[test]
    fn cursor_is_cheap_to_fork() {
        let (toks, src) = cursor("a b c");
        let mut c = Cursor::new(&src, &toks);
        c.bump();
        let fork = c; // Copy
        let mut c2 = fork;
        assert_eq!(c2.bump().map(|t| t.text(&src)), Some("b"));
        assert_eq!(c.pos(), 1, "fork does not advance the original");
    }
}
