//! Rule `float-eq`: library code must not compare float-typed
//! expressions with `==` or `!=`. Exact float equality silently encodes
//! a zero-tolerance assumption; numerical code should compare against
//! an explicit tolerance (or use `total_cmp` for ordering).
//!
//! Detection is textual and type-blind: a comparison is flagged when
//! either adjacent operand *looks* float — a float literal (`0.5`,
//! `1e-3` written with a dot), an `f64`/`f32` suffix, or an
//! `f64::`/`f32::` associated constant. Comparisons of two bare
//! identifiers are not flagged (no type information in a line-based
//! lint), so the rule catches the common literal-comparison case, not
//! every possible one. Intentional exact comparisons (e.g. checking a
//! CDF saturates at exactly 0 or 1) take `// tidy: allow(float-eq)`.

use crate::{is_comment_line, test_block_lines, FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct FloatEq;

/// True when a token plausibly denotes a float value.
fn looks_float(tok: &str) -> bool {
    let bytes = tok.as_bytes();
    for i in 1..bytes.len().saturating_sub(1) {
        if bytes[i] == b'.' && bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit() {
            return true;
        }
    }
    // `1.` style literals and suffixed/associated forms.
    (tok.len() >= 2 && tok.ends_with('.') && bytes[bytes.len() - 2].is_ascii_digit())
        || tok.ends_with("f64")
        || tok.ends_with("f32")
        || tok.contains("f64::")
        || tok.contains("f32::")
}

/// Extracts the operand token immediately left of byte index `at`.
fn left_token(line: &str, at: usize) -> String {
    let s = &line[..at];
    let trimmed = s.trim_end();
    let token: String = trimmed
        .chars()
        .rev()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':' | ')' | '(' | '-'))
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    token
}

/// Extracts the operand token immediately right of byte index `after`.
fn right_token(line: &str, after: usize) -> String {
    let s = line[after..].trim_start();
    s.chars()
        .take_while(|c| c.is_alphanumeric() || matches!(c, '_' | '.' | ':' | '-'))
        .collect()
}

/// True when byte index `at` sits inside a string literal, judged by
/// quote parity on the line prefix (a heuristic, like the whole rule).
fn inside_string(line: &str, at: usize) -> bool {
    let mut quotes = 0usize;
    let mut prev = '\0';
    for (i, c) in line.char_indices() {
        if i >= at {
            break;
        }
        if c == '"' && prev != '\\' {
            quotes += 1;
        }
        prev = c;
    }
    quotes % 2 == 1
}

impl Lint for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        let in_test = test_block_lines(&file.content);
        for (no, line) in file.lines() {
            if in_test[no - 1] || is_comment_line(line) {
                continue;
            }
            for op in ["==", "!="] {
                let mut from = 0;
                while let Some(pos) = line[from..].find(op) {
                    let at = from + pos;
                    from = at + op.len();
                    if inside_string(line, at) {
                        continue;
                    }
                    // Skip `===`-like runs and pattern-arm `=>` never matches.
                    let lhs = left_token(line, at);
                    let rhs = right_token(line, at + op.len());
                    if looks_float(&lhs) || looks_float(&rhs) {
                        out.push(Violation {
                            file: file.path.clone(),
                            line: no,
                            rule: self.name(),
                            message: format!(
                                "float compared with `{op}` (`{lhs} {op} {rhs}`); \
                                 compare against a tolerance instead"
                            ),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/lib.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        FloatEq.check(&file, &mut out);
        out
    }

    #[test]
    fn literal_comparisons_fire() {
        assert_eq!(run("fn f(x: f64) -> bool { x == 0.5 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { 1.0 != x }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == f64::INFINITY }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == 1f64 }").len(), 1);
    }

    #[test]
    fn integer_and_identifier_comparisons_pass() {
        assert!(run("fn f(x: usize) -> bool { x == 5 }").is_empty());
        assert!(run("fn f(a: T, b: T) -> bool { a == b }").is_empty());
        assert!(run("fn f(s: &str) -> bool { s == \"0.5\" }").is_empty());
    }

    #[test]
    fn tests_and_comments_are_exempt() {
        let src = "\
// exact: x == 0.5 is fine to mention
#[cfg(test)]
mod tests {
    fn t(x: f64) -> bool { x == 0.5 }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn float_token_recognizer() {
        assert!(looks_float("0.5"));
        assert!(looks_float("-3.25"));
        assert!(looks_float("f64::NAN"));
        assert!(looks_float("1f64"));
        assert!(!looks_float("x"));
        assert!(!looks_float("5"));
        assert!(!looks_float("len"));
    }
}
