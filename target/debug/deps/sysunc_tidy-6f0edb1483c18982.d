/root/repo/target/debug/deps/sysunc_tidy-6f0edb1483c18982.d: crates/tidy/src/lib.rs crates/tidy/src/rules/mod.rs crates/tidy/src/rules/doc.rs crates/tidy/src/rules/error_impl.rs crates/tidy/src/rules/float_eq.rs crates/tidy/src/rules/manifest.rs crates/tidy/src/rules/panic.rs crates/tidy/src/rules/prob_contract.rs crates/tidy/src/walk.rs

/root/repo/target/debug/deps/libsysunc_tidy-6f0edb1483c18982.rlib: crates/tidy/src/lib.rs crates/tidy/src/rules/mod.rs crates/tidy/src/rules/doc.rs crates/tidy/src/rules/error_impl.rs crates/tidy/src/rules/float_eq.rs crates/tidy/src/rules/manifest.rs crates/tidy/src/rules/panic.rs crates/tidy/src/rules/prob_contract.rs crates/tidy/src/walk.rs

/root/repo/target/debug/deps/libsysunc_tidy-6f0edb1483c18982.rmeta: crates/tidy/src/lib.rs crates/tidy/src/rules/mod.rs crates/tidy/src/rules/doc.rs crates/tidy/src/rules/error_impl.rs crates/tidy/src/rules/float_eq.rs crates/tidy/src/rules/manifest.rs crates/tidy/src/rules/panic.rs crates/tidy/src/rules/prob_contract.rs crates/tidy/src/walk.rs

crates/tidy/src/lib.rs:
crates/tidy/src/rules/mod.rs:
crates/tidy/src/rules/doc.rs:
crates/tidy/src/rules/error_impl.rs:
crates/tidy/src/rules/float_eq.rs:
crates/tidy/src/rules/manifest.rs:
crates/tidy/src/rules/panic.rs:
crates/tidy/src/rules/prob_contract.rs:
crates/tidy/src/walk.rs:
