//! Normal (Gaussian) distribution.

use super::{Continuous, Support};
use crate::error::{ProbError, Result};
use crate::special::{
    inverse_standard_normal_cdf, standard_normal_cdf, LN_SQRT_2PI,
};
use crate::rng::RngCore;

/// Normal distribution `N(mu, sigma^2)` parameterized by mean and *standard
/// deviation*.
///
/// # Examples
///
/// ```
/// use sysunc_prob::dist::{Continuous, Normal};
/// let n = Normal::new(10.0, 2.0)?;
/// assert!((n.quantile(0.5) - 10.0).abs() < 1e-12);
/// assert!((n.variance() - 4.0).abs() < 1e-15);
/// # Ok::<(), sysunc_prob::ProbError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard deviation
    /// `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`ProbError::InvalidParameter`] if `sigma <= 0` or either
    /// parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
            return Err(ProbError::InvalidParameter(format!(
                "Normal requires finite mu and sigma > 0, got mu={mu}, sigma={sigma}"
            )));
        }
        Ok(Self { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mu: 0.0, sigma: 1.0 }
    }

    /// The mean parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The standard-deviation parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Continuous for Normal {
    fn pdf(&self, x: f64) -> f64 {
        self.ln_pdf(x).exp()
    }

    fn ln_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        -0.5 * z * z - self.sigma.ln() - LN_SQRT_2PI
    }

    fn cdf(&self, x: f64) -> f64 {
        standard_normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * inverse_standard_normal_cdf(p)
    }

    fn quantile_fill(&self, ps: &[f64], out: &mut [f64]) {
        assert_eq!(ps.len(), out.len(), "quantile_fill: slice lengths differ");
        // The rational approximation in `inverse_standard_normal_cdf`
        // stays scalar, but hoisting the dispatch and parameters out of
        // the loop still amortizes the per-element cost; same expression
        // as `quantile`, so results are bit-identical.
        let (mu, sigma) = (self.mu, self.sigma);
        for (y, &p) in out.iter_mut().zip(ps) {
            *y = mu + sigma * inverse_standard_normal_cdf(p);
        }
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }

    fn support(&self) -> Support {
        Support::real_line()
    }

    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Marsaglia polar method: exact, no trig, two uniforms per pair.
        use crate::rng::Rng as _;
        loop {
            let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let factor = (-2.0 * s.ln() / s).sqrt();
                return self.mu + self.sigma * u * factor;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil;
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn pdf_peak_and_symmetry() {
        let n = Normal::new(3.0, 2.0).unwrap();
        assert!((n.pdf(3.0) - 1.0 / (2.0 * (2.0 * std::f64::consts::PI).sqrt())).abs() < 1e-15);
        assert!((n.pdf(1.0) - n.pdf(5.0)).abs() < 1e-15);
    }

    #[test]
    fn cdf_known_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 1e-15);
        assert!((n.cdf(1.959_963_984_540_054) - 0.975).abs() < 1e-12);
    }

    #[test]
    fn quantile_cdf_round_trip() {
        let n = Normal::new(-1.0, 0.5).unwrap();
        testutil::check_quantile_cdf_round_trip(&n, &[-3.0, -1.5, -1.0, 0.0, 1.0], 1e-9);
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let n = Normal::new(0.0, 1.0).unwrap();
        testutil::check_pdf_integrates_to_cdf(&n, -2.0, 2.0, 1e-10);
    }

    #[test]
    fn sampling_moments() {
        let n = Normal::new(5.0, 3.0).unwrap();
        testutil::check_sample_moments(&n, 42, 200_000, 4.0);
    }

    #[test]
    fn chunked_fills_match_scalar_calls() {
        testutil::check_fills_match_scalar(&Normal::new(-2.0, 0.7).unwrap(), 34);
    }
}
