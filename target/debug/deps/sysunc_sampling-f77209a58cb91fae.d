/root/repo/target/debug/deps/sysunc_sampling-f77209a58cb91fae.d: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

/root/repo/target/debug/deps/libsysunc_sampling-f77209a58cb91fae.rmeta: crates/sampling/src/lib.rs crates/sampling/src/design.rs crates/sampling/src/error.rs crates/sampling/src/propagate.rs crates/sampling/src/variance_reduction.rs

crates/sampling/src/lib.rs:
crates/sampling/src/design.rs:
crates/sampling/src/error.rs:
crates/sampling/src/propagate.rs:
crates/sampling/src/variance_reduction.rs:
