//! Appends one lint-suppression trend record to the bench trajectory.
//!
//! ```text
//! sysunc-tidy --json | tidy_trend [--in FILE] [--out FILE] [--fail-on-regression]
//! ```
//!
//! Reads a `sysunc-tidy/3` findings document from stdin (or `--in
//! FILE`; the legacy `/1` and `/2` schemas are accepted too), folds it into a
//! `sysunc-bench-trend/1` record with per-rule allowed/baselined
//! exception counts, and appends it as one JSON line to `--out`
//! (default `BENCH_tidy_trend.json`) — printing it to stdout as well.
//!
//! With `--fail-on-regression` the new record is compared against the
//! last line already in the trajectory: any rule whose suppression
//! count rose, or a rise in standing violations, exits nonzero after
//! the record is appended (the trajectory records reality either way).

use std::io::Read;
use std::process::ExitCode;
use sysunc::prob::json::parse;
use sysunc_bench::trend::{suppression_regressions, trend_record};

fn main() -> ExitCode {
    let mut input_path: Option<String> = None;
    let mut out_path = String::from("BENCH_tidy_trend.json");
    let mut fail_on_regression = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--in" => match it.next() {
                Some(v) => input_path = Some(v.clone()),
                None => {
                    eprintln!("tidy_trend: --in needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--out" => match it.next() {
                Some(v) => out_path = v.clone(),
                None => {
                    eprintln!("tidy_trend: --out needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "--fail-on-regression" => fail_on_regression = true,
            other => {
                eprintln!("tidy_trend: bad or incomplete flag '{other}'");
                return ExitCode::FAILURE;
            }
        }
    }

    let text = match input_path {
        Some(path) => match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("tidy_trend: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let mut buffer = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut buffer) {
                eprintln!("tidy_trend: cannot read stdin: {e}");
                return ExitCode::FAILURE;
            }
            buffer
        }
    };

    let report = match parse(&text) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("tidy_trend: input is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let record = match trend_record(&report) {
        Ok(record) => record,
        Err(e) => {
            eprintln!("tidy_trend: input is not a sysunc-tidy findings document: {e}");
            return ExitCode::FAILURE;
        }
    };

    // The previous record is the last non-empty line of the existing
    // trajectory, read before this run appends to it.
    let existing = std::fs::read_to_string(&out_path).unwrap_or_default();
    let previous = existing.lines().rev().find(|l| !l.trim().is_empty()).map(str::to_string);

    println!("{record}");
    let mut appended = existing;
    if !appended.is_empty() && !appended.ends_with('\n') {
        appended.push('\n');
    }
    appended.push_str(&record);
    appended.push('\n');
    if let Err(e) = std::fs::write(&out_path, appended) {
        eprintln!("tidy_trend: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }

    if fail_on_regression {
        if let Some(prev_line) = previous {
            let prev = match parse(&prev_line) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("tidy_trend: last trajectory line is not valid JSON: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let current = parse(&record).expect("own record is valid JSON");
            match suppression_regressions(&current, &prev) {
                Ok(findings) if findings.is_empty() => {}
                Ok(findings) => {
                    for f in &findings {
                        eprintln!("tidy_trend: REGRESSION: {f}");
                    }
                    return ExitCode::FAILURE;
                }
                Err(e) => {
                    eprintln!("tidy_trend: cannot compare against last record: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        // No previous record: this run becomes the baseline.
    }
    ExitCode::SUCCESS
}
