/root/repo/target/debug/deps/sampling_throughput-38e4718d9d4547bf.d: crates/bench/benches/sampling_throughput.rs

/root/repo/target/debug/deps/sampling_throughput-38e4718d9d4547bf: crates/bench/benches/sampling_throughput.rs

crates/bench/benches/sampling_throughput.rs:
