//! # sysunc-fta — fault tree analysis with uncertainty
//!
//! The safety-analysis substrate of the `sysunc` toolkit (reproduction of
//! Gansch & Adee, *System Theoretic View on Uncertainties*, DATE 2020).
//! The paper's Sec. V discusses FTA, its shortcomings for uncertain
//! relations, and its extensions; this crate implements the whole family
//! from scratch:
//!
//! - [`FaultTree`] — static trees (AND/OR/K-of-N), exact top-event
//!   probability by enumeration, structure function, coherence check.
//! - [`minimal_cut_sets`] — MOCUS with subsumption;
//!   [`rare_event_approximation`] / [`esary_proschan`] bounds;
//!   [`importance`] measures (Birnbaum, Fussell–Vesely, RAW, RRW).
//! - [`quantify_with`] — structure-recursive quantification generic over a
//!   [`ProbabilityAlgebra`]: crisp `f64`, epistemic
//!   [`sysunc_evidence::Interval`]s (interval FTA), or
//!   [`sysunc_evidence::FuzzyNumber`]s (fuzzy FTA, Tanaka — paper
//!   reference \[34\]).
//! - [`DynamicFaultTree`] — dynamic gates (PAND, cold SPARE, FDEP — Dugan,
//!   reference \[33\]) quantified by Monte Carlo on failure timelines.
//! - [`fault_tree_to_bayes_net`] — the FTA→BN embedding the paper's
//!   Sec. V-B builds on.
//!
//! ```
//! use sysunc_fta::{minimal_cut_sets, FaultTree, GateKind};
//!
//! // Redundant perception: camera AND radar must fail together,
//! // OR the shared power supply fails (common cause).
//! let mut ft = FaultTree::new();
//! let cam = ft.add_basic_event("camera fails", 1e-3)?;
//! let radar = ft.add_basic_event("radar fails", 2e-3)?;
//! let psu = ft.add_basic_event("power supply fails", 1e-5)?;
//! let pair = ft.add_gate("both sensors", GateKind::And, vec![cam, radar])?;
//! let top = ft.add_gate("perception lost", GateKind::Or, vec![pair, psu])?;
//! ft.set_top(top)?;
//! let cuts = minimal_cut_sets(&ft)?;
//! assert_eq!(cuts.len(), 2); // {cam, radar} and {psu}
//! assert!(ft.top_probability_exact()? < 2e-5);
//! # Ok::<(), sysunc_fta::FtaError>(())
//! ```

mod common_cause;
mod convert;
mod epistemic_importance;
mod cutset;
mod dynamic;
mod error;
mod tree;
mod uncertain;

pub use common_cause::{install_common_cause_group, CommonCauseGroup};
pub use epistemic_importance::{epistemic_importance, EpistemicImportance};
pub use convert::{fault_tree_to_bayes_net, ConvertedTree};
pub use cutset::{
    esary_proschan, importance, minimal_cut_sets, rare_event_approximation, CutSet,
    ImportanceMeasures,
};
pub use dynamic::{DynGate, DynGateKind, DynRef, DynamicFaultTree, TimedEvent};
pub use error::{FtaError, Result};
pub use tree::{BasicEvent, FaultTree, Gate, GateKind, NodeRef};
pub use uncertain::{quantify_with, ProbabilityAlgebra};
