//! # sysunc — a system-theoretic uncertainty engineering toolkit
//!
//! Rust reproduction of **"System Theoretic View on Uncertainties"**
//! (R. Gansch and A. Adee, DATE 2020). The paper proposes a taxonomy of
//! uncertainty — **aleatory** (model-inherent randomness), **epistemic**
//! (reducible lack of knowledge) and **ontological** (model
//! incompleteness, the unknown-unknown) — and a taxonomy of means to cope
//! with them (**prevention, removal, tolerance, forecasting**), mirroring
//! Laprie's dependability framework. This crate turns that framework into
//! an executable library, with every substrate built from scratch in the
//! workspace:
//!
//! | module | contents | paper anchor |
//! |---|---|---|
//! | [`taxonomy`] | [`taxonomy::UncertaintyKind`], [`taxonomy::Means`], the classified method catalog and strategy recommendation | Secs. III-IV, Fig. 3 |
//! | [`modeling`] | the modeling relation, adequacy assessment and the conditional-entropy surprise factor | Sec. II-A, Fig. 2, Sec. III-C |
//! | [`propagator`] | the unified propagation engine layer: one [`Propagator`] trait over Monte Carlo, LHS, Sobol', spectral and evidential engines, plus the parallel batch driver | Secs. III-IV |
//! | [`casestudy`] | Fig. 4 / Table I verbatim, in Bayesian and evidential form | Sec. V |
//! | [`budget`] | quantified per-kind uncertainty budgets and the release gate | Secs. IV, VI |
//!
//! The substrate crates are re-exported for one-stop access: [`prob`],
//! [`algebra`], [`sampling`], [`pce`], [`evidence`], [`bayesnet`],
//! [`fta`], [`orbital`], [`perception`].
//!
//! ## Quickstart
//!
//! ```
//! use sysunc::casestudy::paper_bayes_net;
//! use sysunc::taxonomy::{recommend, UncertaintyKind};
//!
//! // The paper's Table I network, ready to query:
//! let bn = paper_bayes_net()?;
//! let posterior = bn.marginal("ground_truth", &[("perception", "none")])
//!     .expect("valid query");
//! assert!(posterior[2] > 0.5); // "none" outputs are mostly unknown objects
//!
//! // What does the paper recommend against ontological uncertainty?
//! let methods = recommend(UncertaintyKind::Ontological);
//! assert!(methods[0].name.contains("operational design domain")
//!     || methods[0].name.contains("field observation"));
//! # Ok::<(), sysunc::SysuncError>(())
//! ```

pub mod budget;
pub mod casestudy;
mod error;
pub mod modeling;
pub mod propagator;
pub mod register;
pub mod taxonomy;
pub mod wire;

pub use error::{Error, Result, SysuncError};
pub use propagator::{
    dedup_by_key, propagate_chunked, run_all, run_batch, run_batch_serial, standard_engines,
    BatchJob, ChunkOptions, ChunkedRun, EvidentialEngine, LatinHypercubeEngine, Model,
    MonteCarloEngine, PropagationReport, PropagationRequest, Propagator, SobolEngine,
    SpectralEngine, UncertainInput, CHUNK_WIDTH,
};
pub use wire::{
    engine_by_name, fnv1a64, CanonicalRequest, ModelRegistry, WireRequest, ENGINE_NAMES,
};

pub use sysunc_algebra as algebra;
pub use sysunc_bayesnet as bayesnet;
pub use sysunc_evidence as evidence;
pub use sysunc_fta as fta;
pub use sysunc_orbital as orbital;
pub use sysunc_pce as pce;
pub use sysunc_perception as perception;
pub use sysunc_prob as prob;
pub use sysunc_sampling as sampling;
