//! Hypothesis tests used for model validation (uncertainty *removal* during
//! design, paper Sec. IV): Kolmogorov–Smirnov and chi-square
//! goodness-of-fit.

use crate::dist::Continuous;
use crate::empirical::Ecdf;
use crate::error::{ProbError, Result};
use crate::special::reg_upper_gamma;

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TestResult {
    /// Test statistic value.
    pub statistic: f64,
    /// Asymptotic p-value (probability of a statistic at least this extreme
    /// under the null).
    pub p_value: f64,
}

impl TestResult {
    /// Whether the null hypothesis is rejected at significance `alpha`.
    pub fn rejects_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Asymptotic Kolmogorov distribution survival function
/// `Q(x) = 2 Σ (-1)^{k-1} exp(-2 k² x²)`.
pub fn kolmogorov_survival(x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    let mut acc = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * x * x).exp();
        if term < 1e-18 {
            break;
        }
        acc += if k % 2 == 1 { term } else { -term };
    }
    (2.0 * acc).clamp(0.0, 1.0)
}

/// One-sample Kolmogorov–Smirnov test of `sample` against a continuous
/// reference distribution.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] for empty samples.
pub fn ks_test_one_sample<D: Continuous + ?Sized>(sample: &[f64], dist: &D) -> Result<TestResult> {
    let ecdf = Ecdf::new(sample.to_vec())?;
    let d = ecdf.ks_distance(|x| dist.cdf(x));
    let n = sample.len() as f64;
    let arg = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    Ok(TestResult { statistic: d, p_value: kolmogorov_survival(arg) })
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// # Errors
///
/// Returns [`ProbError::EmptyData`] when either sample is empty.
pub fn ks_test_two_sample(a: &[f64], b: &[f64]) -> Result<TestResult> {
    let ea = Ecdf::new(a.to_vec())?;
    let eb = Ecdf::new(b.to_vec())?;
    let mut d: f64 = 0.0;
    for &x in ea.sorted_values().iter().chain(eb.sorted_values()) {
        d = d.max((ea.cdf(x) - eb.cdf(x)).abs());
    }
    let na = a.len() as f64;
    let nb = b.len() as f64;
    let ne = na * nb / (na + nb);
    let arg = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    Ok(TestResult { statistic: d, p_value: kolmogorov_survival(arg) })
}

/// Chi-square survival function `P(X² > x)` with `k` degrees of freedom.
pub fn chi_square_survival(x: f64, k: usize) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    reg_upper_gamma(k as f64 / 2.0, x / 2.0)
}

/// Pearson chi-square goodness-of-fit test of observed counts against
/// expected probabilities.
///
/// Degrees of freedom are `k - 1 - params_fitted`.
///
/// # Errors
///
/// Returns an error for mismatched lengths, empty inputs, expected
/// probabilities that are not a distribution, or zero expected counts.
pub fn chi_square_gof(
    observed_counts: &[u64],
    expected_probs: &[f64],
    params_fitted: usize,
) -> Result<TestResult> {
    if observed_counts.is_empty() {
        return Err(ProbError::EmptyData);
    }
    if observed_counts.len() != expected_probs.len() {
        return Err(ProbError::DimensionMismatch {
            expected: observed_counts.len(),
            actual: expected_probs.len(),
        });
    }
    let total: u64 = observed_counts.iter().sum();
    if total == 0 {
        return Err(ProbError::EmptyData);
    }
    let psum: f64 = expected_probs.iter().sum();
    if (psum - 1.0).abs() > 1e-6 || expected_probs.iter().any(|&p| p < 0.0) {
        return Err(ProbError::InvalidProbabilities(format!(
            "expected probabilities must sum to 1, got {psum}"
        )));
    }
    let mut stat = 0.0;
    for (&o, &p) in observed_counts.iter().zip(expected_probs) {
        let e = p * total as f64;
        if e <= 0.0 {
            if o > 0 {
                // Observation in an impossible cell: infinite statistic —
                // the chi-square view of an ontological event.
                return Ok(TestResult { statistic: f64::INFINITY, p_value: 0.0 });
            }
            continue;
        }
        stat += (o as f64 - e) * (o as f64 - e) / e;
    }
    let dof = observed_counts.len().saturating_sub(1 + params_fitted).max(1);
    Ok(TestResult { statistic: stat, p_value: chi_square_survival(stat, dof) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Continuous, Normal, Uniform};
    use crate::rng::StdRng;
    use crate::rng::SeedableRng;

    #[test]
    fn kolmogorov_survival_endpoints() {
        assert_eq!(kolmogorov_survival(0.0), 1.0);
        assert!(kolmogorov_survival(3.0) < 1e-6);
        // Known value: Q(1.0) ≈ 0.26999967...
        assert!((kolmogorov_survival(1.0) - 0.27) < 1e-3);
    }

    #[test]
    fn ks_accepts_correct_model() {
        let d = Normal::standard();
        let mut rng = StdRng::seed_from_u64(12);
        let xs = d.sample_n(&mut rng, 2_000);
        let res = ks_test_one_sample(&xs, &d).unwrap();
        assert!(!res.rejects_at(0.01), "p={}", res.p_value);
    }

    #[test]
    fn ks_rejects_wrong_model() {
        let d = Normal::standard();
        let wrong = Uniform::new(-3.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let xs = d.sample_n(&mut rng, 2_000);
        let res = ks_test_one_sample(&xs, &wrong).unwrap();
        assert!(res.rejects_at(0.001), "p={}", res.p_value);
    }

    #[test]
    fn ks_two_sample_same_vs_different() {
        let d = Normal::standard();
        let shifted = Normal::new(1.0, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let a = d.sample_n(&mut rng, 1_500);
        let b = d.sample_n(&mut rng, 1_500);
        let c = shifted.sample_n(&mut rng, 1_500);
        assert!(!ks_test_two_sample(&a, &b).unwrap().rejects_at(0.01));
        assert!(ks_test_two_sample(&a, &c).unwrap().rejects_at(0.001));
    }

    #[test]
    fn chi_square_survival_known_values() {
        // P(X²_1 > 3.841) ≈ 0.05
        assert!((chi_square_survival(3.841, 1) - 0.05).abs() < 1e-3);
        // P(X²_2 > 5.991) ≈ 0.05
        assert!((chi_square_survival(5.991, 2) - 0.05).abs() < 1e-3);
    }

    #[test]
    fn chi_square_gof_fair_die() {
        let observed = [166u64, 170, 162, 168, 166, 168];
        let expected = [1.0 / 6.0; 6];
        let res = chi_square_gof(&observed, &expected, 0).unwrap();
        assert!(!res.rejects_at(0.05), "p={}", res.p_value);
    }

    #[test]
    fn chi_square_gof_biased_die() {
        let observed = [300u64, 140, 140, 140, 140, 140];
        let expected = [1.0 / 6.0; 6];
        let res = chi_square_gof(&observed, &expected, 0).unwrap();
        assert!(res.rejects_at(0.001));
    }

    #[test]
    fn chi_square_impossible_cell_is_ontological() {
        // Model says category 2 is impossible, but we observed it.
        let res = chi_square_gof(&[10, 10, 1], &[0.5, 0.5, 0.0], 0).unwrap();
        assert_eq!(res.statistic, f64::INFINITY);
        assert_eq!(res.p_value, 0.0);
    }

    #[test]
    fn chi_square_rejects_bad_inputs() {
        assert!(chi_square_gof(&[], &[], 0).is_err());
        assert!(chi_square_gof(&[1, 2], &[0.5], 0).is_err());
        assert!(chi_square_gof(&[1, 2], &[0.7, 0.7], 0).is_err());
    }
}
