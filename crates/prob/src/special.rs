//! Special mathematical functions used throughout the probability substrate.
//!
//! Everything here is implemented from scratch (no external math crates are
//! available in this workspace): log-gamma via the Lanczos approximation,
//! regularized incomplete gamma/beta functions via series and continued
//! fractions (modified Lentz algorithm), the error function derived from the
//! incomplete gamma function, and high-accuracy inverse CDF helpers.
//!
//! Accuracy targets: ~1e-13 relative error for `ln_gamma`, ~1e-12 for the
//! regularized incomplete functions over their well-conditioned domains, and
//! full `f64` accuracy for `inverse_standard_normal_cdf` (Acklam initial
//! estimate plus one Halley refinement step).

/// Natural logarithm of `sqrt(2 * pi)`.
pub const LN_SQRT_2PI: f64 = 0.918_938_533_204_672_74;

/// `sqrt(2)`.
pub const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Machine epsilon based convergence tolerance for iterative schemes.
const EPS: f64 = 1e-15;

/// Iteration cap for series/continued-fraction evaluation.
const MAX_ITER: usize = 500;

/// Lanczos coefficients (g = 7, n = 9), giving ~15 significant digits.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with reflection for `x < 0.5`.
///
/// # Panics
///
/// Panics if `x` is NaN.
///
/// # Examples
///
/// ```
/// use sysunc_prob::special::ln_gamma;
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(!x.is_nan(), "ln_gamma: x must not be NaN");
    if x < 0.5 {
        // Reflection formula: Γ(x) Γ(1-x) = π / sin(πx).
        let s = (std::f64::consts::PI * x).sin();
        if s == 0.0 { // tidy: allow(float-eq)
            return f64::INFINITY; // poles at non-positive integers
        }
        std::f64::consts::PI.ln() - s.abs().ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        let mut acc = LANCZOS_COEF[0];
        for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
            acc += c / (x + i as f64);
        }
        let t = x + LANCZOS_G + 0.5;
        LN_SQRT_2PI + (x + 0.5) * t.ln() - t + acc.ln()
    }
}

/// The gamma function `Γ(x)`.
///
/// Computed as `exp(ln_gamma(x))` with sign handling for negative arguments.
///
/// # Examples
///
/// ```
/// use sysunc_prob::special::gamma;
/// assert!((gamma(6.0) - 120.0).abs() < 1e-9);
/// ```
pub fn gamma(x: f64) -> f64 {
    if x > 0.0 {
        ln_gamma(x).exp()
    // Poles sit at exactly the nonpositive integers; the exact
    // comparison is the definition, not an accident.
    } else if x == x.floor() { // tidy: allow(float-eq)
        f64::NAN
    } else {
        // Reflection: Γ(x) = π / (sin(πx) Γ(1-x))
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * ln_gamma(1.0 - x).exp())
    }
}

/// Digamma function `ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses upward recurrence to shift the argument above 6 and an asymptotic
/// series with Bernoulli-number coefficients.
pub fn digamma(x: f64) -> f64 {
    assert!(x > 0.0, "digamma: requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln() - 0.5 * inv
        - inv2
            * (1.0 / 12.0
                - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0 - inv2 / 132.0))))
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// Uses the power series for `x < a + 1` and the continued fraction of the
/// upper function otherwise.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_lower_gamma: requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_lower_gamma: requires x >= 0, got {x}");
    if x == 0.0 { // tidy: allow(float-eq)
        0.0
    } else if x < a + 1.0 {
        lower_gamma_series(a, x)
    } else {
        1.0 - upper_gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "reg_upper_gamma: requires a > 0, got {a}");
    assert!(x >= 0.0, "reg_upper_gamma: requires x >= 0, got {x}");
    if x == 0.0 { // tidy: allow(float-eq)
        1.0
    } else if x < a + 1.0 {
        1.0 - lower_gamma_series(a, x)
    } else {
        upper_gamma_cf(a, x)
    }
}

/// Power-series evaluation of `P(a, x)`; converges fast for `x < a + 1`.
fn lower_gamma_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut n = a;
    for _ in 0..MAX_ITER {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (a * x.ln() - x - ln_gamma(a)).exp()
}

/// Continued-fraction evaluation of `Q(a, x)` (modified Lentz algorithm);
/// converges fast for `x >= a + 1`.
fn upper_gamma_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h * (a * x.ln() - x - ln_gamma(a)).exp()
}

/// Inverse of the regularized lower incomplete gamma: finds `x` such that
/// `P(a, x) = p`.
///
/// Uses a starting estimate (Wilson–Hilferty for moderate `a`) refined by
/// safeguarded Newton iteration.
///
/// # Panics
///
/// Panics if `a <= 0` or `p` is outside `[0, 1]`.
pub fn inv_reg_lower_gamma(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inv_reg_lower_gamma: requires a > 0, got {a}");
    assert!((0.0..=1.0).contains(&p), "inv_reg_lower_gamma: p in [0,1], got {p}");
    if p == 0.0 { // tidy: allow(float-eq)
        return 0.0;
    }
    if p == 1.0 { // tidy: allow(float-eq)
        return f64::INFINITY;
    }
    // Wilson-Hilferty initial approximation.
    let z = inverse_standard_normal_cdf(p);
    let t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * a.sqrt());
    let mut x = (a * t * t * t).max(1e-8 * a.min(1.0));
    // Safeguarded Newton: P(a, x) is increasing in x; derivative is the pdf.
    let mut lo = 0.0_f64;
    let mut hi = f64::INFINITY;
    for _ in 0..100 {
        let f = reg_lower_gamma(a, x) - p;
        if f > 0.0 {
            hi = hi.min(x);
        } else {
            lo = lo.max(x);
        }
        // pdf of Gamma(a, 1) at x:
        let ln_pdf = (a - 1.0) * x.ln() - x - ln_gamma(a);
        let dfdx = ln_pdf.exp();
        let mut x_new = if dfdx > 0.0 { x - f / dfdx } else { x };
        if !(x_new > lo && (hi.is_infinite() || x_new < hi)) || !x_new.is_finite() {
            // Bisection fallback.
            x_new = if hi.is_finite() { 0.5 * (lo + hi) } else { (lo.max(x)) * 2.0 + 1.0 };
        }
        if (x_new - x).abs() <= 1e-14 * x.abs().max(1e-300) {
            x = x_new;
            break;
        }
        x = x_new;
    }
    x
}

/// Natural logarithm of the beta function `ln B(a, b)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `b <= 0`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "ln_beta: requires a, b > 0, got ({a}, {b})");
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Regularized incomplete beta function `I_x(a, b)`.
///
/// Continued fraction (modified Lentz), using the symmetry
/// `I_x(a, b) = 1 - I_{1-x}(b, a)` for convergence.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0` or `x` is outside `[0, 1]`.
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "reg_inc_beta: requires a, b > 0, got ({a}, {b})");
    assert!((0.0..=1.0).contains(&x), "reg_inc_beta: x in [0,1], got {x}");
    if x == 0.0 { // tidy: allow(float-eq)
        return 0.0;
    }
    if x == 1.0 { // tidy: allow(float-eq)
        return 1.0;
    }
    let front = (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - (a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b)).exp() * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Inverse of the regularized incomplete beta: finds `x` with `I_x(a, b) = p`.
///
/// Safeguarded Newton iteration bracketed by bisection.
///
/// # Panics
///
/// Panics if `a <= 0`, `b <= 0` or `p` is outside `[0, 1]`.
pub fn inv_reg_inc_beta(a: f64, b: f64, p: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inv_reg_inc_beta: requires a, b > 0, got ({a}, {b})");
    assert!((0.0..=1.0).contains(&p), "inv_reg_inc_beta: p in [0,1], got {p}");
    if p == 0.0 { // tidy: allow(float-eq)
        return 0.0;
    }
    if p == 1.0 { // tidy: allow(float-eq)
        return 1.0;
    }
    let mut lo = 0.0_f64;
    let mut hi = 1.0_f64;
    let mut x = a / (a + b); // mean as starting point
    let ln_b = ln_beta(a, b);
    for _ in 0..200 {
        let f = reg_inc_beta(a, b, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let ln_pdf = (a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_b;
        let dfdx = ln_pdf.exp();
        let mut x_new = if dfdx > 0.0 { x - f / dfdx } else { 0.5 * (lo + hi) };
        if !(x_new > lo && x_new < hi) || !x_new.is_finite() {
            x_new = 0.5 * (lo + hi);
        }
        if (x_new - x).abs() <= 1e-15 * x.abs().max(1e-300) {
            x = x_new;
            break;
        }
        x = x_new;
    }
    x
}

/// The error function `erf(x)`, computed from the regularized incomplete
/// gamma function: `erf(x) = sign(x) * P(1/2, x^2)`.
///
/// # Examples
///
/// ```
/// use sysunc_prob::special::erf;
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 { // tidy: allow(float-eq)
        0.0
    } else if x > 0.0 {
        reg_lower_gamma(0.5, x * x)
    } else {
        -reg_lower_gamma(0.5, x * x)
    }
}

/// The complementary error function `erfc(x) = 1 - erf(x)`, accurate for
/// large `x` (no cancellation).
pub fn erfc(x: f64) -> f64 {
    if x >= 0.0 {
        reg_upper_gamma(0.5, x * x)
    } else {
        1.0 + reg_lower_gamma(0.5, x * x)
    }
}

/// Standard normal cumulative distribution function `Φ(x)`.
/// Range: `[0, 1]`, monotone in `x`, `Phi(0) = 1/2`.
pub fn standard_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Standard normal probability density function `φ(x)`.
pub fn standard_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Inverse standard normal CDF (probit function) `Φ⁻¹(p)`.
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9) refined
/// by a single Halley step against [`standard_normal_cdf`], giving accuracy
/// at the level of `f64` round-off.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use sysunc_prob::special::inverse_standard_normal_cdf;
/// assert!((inverse_standard_normal_cdf(0.975) - 1.959963984540054).abs() < 1e-12);
/// ```
/// Range: `p` must lie in `(0, 1)` for a finite result; infinities at the ends.
pub fn inverse_standard_normal_cdf(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "inverse_standard_normal_cdf: p in [0,1], got {p}");
    if p == 0.0 { // tidy: allow(float-eq)
        return f64::NEG_INFINITY;
    }
    if p == 1.0 { // tidy: allow(float-eq)
        return f64::INFINITY;
    }
    // Acklam coefficients.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };
    // One Halley refinement step.
    let e = standard_normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (0.5 * x * x).exp();
    x - u / (1.0 + 0.5 * x * u)
}

/// Inverse error function `erf⁻¹(y)` for `y` in `(-1, 1)`.
pub fn inv_erf(y: f64) -> f64 {
    assert!((-1.0..=1.0).contains(&y), "inv_erf: y in [-1,1], got {y}");
    inverse_standard_normal_cdf(0.5 * (y + 1.0)) / SQRT_2
}

/// Natural logarithm of `n!`.
pub fn ln_factorial(n: u64) -> f64 {
    // Exact table for small n keeps binomial pmfs crisp.
    const TABLE: [f64; 21] = [
        1.0,
        1.0,
        2.0,
        6.0,
        24.0,
        120.0,
        720.0,
        5040.0,
        40320.0,
        362880.0,
        3628800.0,
        39916800.0,
        479001600.0,
        6227020800.0,
        87178291200.0,
        1307674368000.0,
        20922789888000.0,
        355687428096000.0,
        6402373705728000.0,
        121645100408832000.0,
        2432902008176640000.0,
    ];
    if n <= 20 {
        TABLE[n as usize].ln()
    } else {
        ln_gamma(n as f64 + 1.0)
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Returns negative infinity when `k > n`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        f64::NEG_INFINITY
    } else {
        ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "expected {b}, got {a}");
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        for n in 1..20u64 {
            let expect = ln_factorial(n - 1);
            close(ln_gamma(n as f64), expect, 1e-13);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π)
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-13);
        // Γ(3/2) = sqrt(π)/2
        close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-13);
    }

    #[test]
    fn ln_gamma_reflection_region() {
        // Γ(0.25) = 3.625609908221908...
        close(ln_gamma(0.25), 3.625_609_908_221_908_3_f64.ln(), 1e-12);
    }

    #[test]
    fn gamma_negative_non_integer() {
        // Γ(-0.5) = -2 sqrt(π)
        close(gamma(-0.5), -2.0 * std::f64::consts::PI.sqrt(), 1e-11);
    }

    #[test]
    fn digamma_known_values() {
        const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
        close(digamma(1.0), -EULER_MASCHERONI, 1e-12);
        close(digamma(2.0), 1.0 - EULER_MASCHERONI, 1e-12);
        close(digamma(0.5), -EULER_MASCHERONI - 2.0 * 2.0_f64.ln(), 1e-12);
    }

    #[test]
    fn incomplete_gamma_complementarity() {
        for &(a, x) in &[(0.5, 0.3), (1.0, 1.0), (2.5, 4.0), (10.0, 3.0), (10.0, 20.0)] {
            close(reg_lower_gamma(a, x) + reg_upper_gamma(a, x), 1.0, 1e-14);
        }
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}
        for &x in &[0.1, 0.5, 1.0, 3.0, 10.0] {
            close(reg_lower_gamma(1.0, x), 1.0 - (-x).exp(), 1e-13);
        }
    }

    #[test]
    fn inverse_incomplete_gamma_round_trip() {
        for &a in &[0.3, 1.0, 2.5, 17.0] {
            for &p in &[1e-6, 0.01, 0.3, 0.5, 0.9, 0.999] {
                let x = inv_reg_lower_gamma(a, p);
                close(reg_lower_gamma(a, x), p, 1e-10);
            }
        }
    }

    #[test]
    fn incomplete_beta_uniform_special_case() {
        // I_x(1, 1) = x
        for &x in &[0.0, 0.1, 0.5, 0.9, 1.0] {
            close(reg_inc_beta(1.0, 1.0, x), x, 1e-14);
        }
    }

    #[test]
    fn incomplete_beta_symmetry() {
        for &(a, b, x) in &[(2.0, 3.0, 0.4), (0.5, 0.5, 0.25), (5.0, 1.5, 0.8)] {
            close(reg_inc_beta(a, b, x), 1.0 - reg_inc_beta(b, a, 1.0 - x), 1e-13);
        }
    }

    #[test]
    fn incomplete_beta_known_value() {
        // I_{0.5}(2, 2) = 0.5 by symmetry; I_{0.25}(2, 2) = 3x² - 2x³ at 0.25
        close(reg_inc_beta(2.0, 2.0, 0.5), 0.5, 1e-14);
        let x: f64 = 0.25;
        close(reg_inc_beta(2.0, 2.0, x), 3.0 * x * x - 2.0 * x * x * x, 1e-13);
    }

    #[test]
    fn inverse_incomplete_beta_round_trip() {
        for &(a, b) in &[(2.0, 3.0), (0.5, 0.5), (8.0, 2.0)] {
            for &p in &[1e-5, 0.1, 0.5, 0.9, 0.99999] {
                let x = inv_reg_inc_beta(a, b, p);
                close(reg_inc_beta(a, b, x), p, 1e-10);
            }
        }
    }

    #[test]
    fn erf_known_values() {
        close(erf(0.0), 0.0, 1e-15);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
    }

    #[test]
    fn erfc_large_argument_no_underflow_to_garbage() {
        // erfc(5) = 1.5374597944280349e-12
        close(erfc(5.0), 1.537_459_794_428_034_9e-12, 1e-9);
        assert!(erfc(10.0) > 0.0 && erfc(10.0) < 1e-40);
    }

    #[test]
    fn normal_cdf_symmetry() {
        for &x in &[0.0, 0.5, 1.0, 2.5, 6.0] {
            close(standard_normal_cdf(x) + standard_normal_cdf(-x), 1.0, 1e-14);
        }
    }

    #[test]
    fn probit_round_trip_and_known_quantiles() {
        close(inverse_standard_normal_cdf(0.5), 0.0, 1e-15);
        close(inverse_standard_normal_cdf(0.975), 1.959_963_984_540_054, 1e-12);
        close(inverse_standard_normal_cdf(0.025), -1.959_963_984_540_054, 1e-12);
        for &p in &[1e-10, 1e-4, 0.2, 0.5, 0.7, 0.9999, 1.0 - 1e-10] {
            let x = inverse_standard_normal_cdf(p);
            close(standard_normal_cdf(x), p, 1e-12);
        }
    }

    #[test]
    fn inv_erf_round_trip() {
        for &y in &[-0.9, -0.3, 0.0, 0.3, 0.99] {
            close(erf(inv_erf(y)), y, 1e-12);
        }
    }

    #[test]
    fn ln_choose_small_cases() {
        close(ln_choose(5, 2), 10.0_f64.ln(), 1e-14);
        close(ln_choose(10, 0), 0.0, 1e-15);
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
        close(ln_choose(52, 5), 2_598_960.0_f64.ln(), 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires a > 0")]
    fn reg_lower_gamma_rejects_nonpositive_a() {
        reg_lower_gamma(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "p in [0,1]")]
    fn probit_rejects_out_of_range() {
        inverse_standard_normal_cdf(1.5);
    }
}
