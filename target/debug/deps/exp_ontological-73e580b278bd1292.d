/root/repo/target/debug/deps/exp_ontological-73e580b278bd1292.d: crates/bench/src/bin/exp_ontological.rs

/root/repo/target/debug/deps/libexp_ontological-73e580b278bd1292.rmeta: crates/bench/src/bin/exp_ontological.rs

crates/bench/src/bin/exp_ontological.rs:
