//! Integration tests spanning multiple workspace crates: each test wires
//! at least two substrates together and checks a quantitative agreement.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::budget::UncertaintyBudget;
use sysunc::evidence::Interval;
use sysunc::fta::{fault_tree_to_bayes_net, quantify_with, FaultTree, GateKind};
use sysunc::modeling::assess_adequacy;
use sysunc::pce::{ChaosExpansion, PceInput};
use sysunc::perception::{ClassifierModel, FieldCampaign, ReleaseForecast, Truth, WorldModel};
use sysunc::prob::dist::{Continuous, Normal};
use sysunc::prob::htest::ks_test_one_sample;
use sysunc::sampling::{propagate, LatinHypercubeDesign};
use sysunc::taxonomy::{Means, UncertaintyKind};
use sysunc::{
    run_batch, run_batch_serial, standard_engines, BatchJob, EvidentialEngine,
    LatinHypercubeEngine, MonteCarloEngine, Propagator, PropagationRequest, SpectralEngine,
    UncertainInput,
};

#[test]
fn pce_and_sampling_agree_on_nonlinear_model() {
    // Same model, two independent propagation stacks.
    let model = |x: &[f64]| (0.5 * x[0]).exp() + x[1] * x[1];
    let pce_inputs =
        [PceInput::Normal { mu: 0.0, sigma: 1.0 }, PceInput::Uniform { a: -1.0, b: 1.0 }];
    let pce = ChaosExpansion::fit_projection(&pce_inputs, 8, model).expect("pce fits");

    let n_dist = Normal::new(0.0, 1.0).expect("valid");
    let u_dist = sysunc::prob::dist::Uniform::new(-1.0, 1.0).expect("valid");
    let inputs: Vec<&dyn Continuous> = vec![&n_dist, &u_dist];
    let mut rng = StdRng::seed_from_u64(5);
    let mc =
        propagate(&inputs, &LatinHypercubeDesign, &model, 200_000, &mut rng).expect("mc runs");

    // Analytic: E = exp(1/8) + 1/3.
    let truth = (0.125f64).exp() + 1.0 / 3.0;
    assert!((pce.mean() - truth).abs() < 1e-6, "pce mean {}", pce.mean());
    assert!((mc.mean() - truth).abs() < 5e-3, "mc mean {}", mc.mean());
    assert!((pce.variance() - mc.variance()).abs() < 0.05 * mc.variance());
}

#[test]
fn pce_surrogate_sample_matches_input_distribution() {
    // Sampling the degree-1 surrogate of the identity model reproduces
    // the input distribution (KS test, prob + pce + sampling crates).
    let inputs = [PceInput::Normal { mu: 2.0, sigma: 0.5 }];
    let pce = ChaosExpansion::fit_projection(&inputs, 3, |x| x[0]).expect("fits");
    let germ = Normal::new(0.0, 1.0).expect("valid");
    let mut rng = StdRng::seed_from_u64(17);
    let sample: Vec<f64> =
        (0..5_000).map(|_| pce.eval_germ(&[germ.sample(&mut rng)])).collect();
    let target = Normal::new(2.0, 0.5).expect("valid");
    let res = ks_test_one_sample(&sample, &target).expect("test runs");
    assert!(!res.rejects_at(0.01), "surrogate sample should look like N(2, 0.5): p = {}", res.p_value);
}

#[test]
fn fta_bn_and_interval_views_are_consistent() {
    // One safety model, three analysis backends.
    let mut ft = FaultTree::new();
    let a = ft.add_basic_event("a", 0.02).expect("valid");
    let b = ft.add_basic_event("b", 0.03).expect("valid");
    let c = ft.add_basic_event("c", 0.001).expect("valid");
    let g = ft.add_gate("ab", GateKind::And, vec![a, b]).expect("valid");
    let top = ft.add_gate("top", GateKind::Or, vec![g, c]).expect("valid");
    ft.set_top(top).expect("valid");

    let exact = ft.top_probability_exact().expect("small tree");
    // BN view agrees exactly.
    let conv = fault_tree_to_bayes_net(&ft).expect("converts");
    let p_bn = conv.network.marginal("top", &[]).expect("query")[1];
    assert!((p_bn - exact).abs() < 1e-12);
    // Interval view with degenerate intervals recovers the same number.
    let degenerate: Vec<Interval> =
        ft.basic_events().iter().map(|e| Interval::degenerate(e.probability)).collect();
    let iv = quantify_with(&ft, &degenerate).expect("quantifies");
    assert!((iv.midpoint() - exact).abs() < 1e-12);
    // Widening the inputs must enclose the exact value.
    let wide: Vec<Interval> = ft
        .basic_events()
        .iter()
        .map(|e| Interval::new(e.probability * 0.5, e.probability * 2.0).expect("ordered"))
        .collect();
    let bounds = quantify_with(&ft, &wide).expect("quantifies");
    assert!(bounds.contains(exact));
}

#[test]
fn world_classifier_statistics_match_paper_bn() {
    // Simulating the perception chain end-to-end reproduces the marginal
    // output distribution predicted by the Fig. 4 Bayesian network (with
    // the simulator's label conventions mapped onto Table I).
    let world = WorldModel::paper_example().expect("builds");
    let camera = ClassifierModel::paper_camera().expect("builds");
    let mut rng = StdRng::seed_from_u64(23);
    let n = 400_000;
    let mut counts = [0u64; 3];
    for truth in world.sample_n(n, &mut rng) {
        counts[camera.classify(truth, &mut rng).label] += 1;
    }
    // Simulator P(car label) = 0.6*0.925 + 0.3*0.03 + 0.1*0.1 = 0.574;
    // this equals the BN's P(car) + half the car_pedestrian state plus the
    // novel row's car share.
    let p_car = counts[0] as f64 / n as f64;
    let expect_car = 0.6 * 0.925 + 0.3 * 0.03 + 0.1 * 0.1;
    assert!((p_car - expect_car).abs() < 0.005, "{p_car} vs {expect_car}");
    let p_none = counts[2] as f64 / n as f64;
    let expect_none = 0.6 * 0.045 + 0.3 * 0.045 + 0.1 * 0.8;
    assert!((p_none - expect_none).abs() < 0.005);
}

#[test]
fn adequacy_assessment_flags_simulated_ontological_events() {
    // modeling (core) + perception (substrate): a classifier that has no
    // notion of novel objects shows impossible mass once the world sends
    // them.
    let world = WorldModel::paper_example().expect("builds");
    let mut rng = StdRng::seed_from_u64(41);
    let mut system_states = Vec::new();
    let mut model_predictions = Vec::new();
    for truth in world.sample_n(5_000, &mut rng) {
        // System state: 0 = car, 1 = pedestrian, 2 = novel.
        let s = match truth {
            Truth::Known(i) => i,
            Truth::Novel(_) => 2,
        };
        // The naive model never predicts state 2.
        let m = match truth {
            Truth::Known(i) => i,
            Truth::Novel(_) => 0,
        };
        system_states.push(s);
        model_predictions.push(m);
    }
    let report = assess_adequacy(&system_states, &model_predictions, 3).expect("assesses");
    assert!(report.impossible_mass > 0.05, "novel mass must be visible");
    assert_eq!(report.dominant_kind(0.5), UncertaintyKind::Ontological);
}

#[test]
fn budget_assembly_from_three_substrates() {
    // Aleatory level from a PCE variance, epistemic from a Beta credible
    // width, ontological from a Good-Turing forecast — assembled into the
    // release gate.
    let pce = ChaosExpansion::fit_projection(
        &[PceInput::Uniform { a: -1.0, b: 1.0 }],
        3,
        |x| 0.1 * x[0],
    )
    .expect("fits");
    let aleatory = pce.std_dev();

    let posterior = sysunc::prob::dist::Beta::new(1.0, 1.0).expect("valid").updated(980, 20);
    let epistemic = posterior.credible_width(0.95);

    let world = WorldModel::paper_example().expect("builds");
    let mut rng = StdRng::seed_from_u64(9);
    let mut campaign = FieldCampaign::new(2);
    campaign.observe_world(&world, 200_000, &mut rng);
    let ontological = ReleaseForecast::from_campaign(&campaign).residual_novelty_rate;

    let measured = UncertaintyBudget::new(aleatory, epistemic, ontological).expect("valid");
    let limits = UncertaintyBudget::new(0.1, 0.05, 0.005).expect("valid");
    assert!(
        measured.acceptable(&limits),
        "budget {measured} should pass limits {limits}"
    );
    // Tightening the ontological limit below the achievable rate blocks
    // release — the long-tail validation challenge in one assertion.
    let strict = UncertaintyBudget::new(0.1, 0.05, 1e-7).expect("valid");
    assert!(!measured.acceptable(&strict));
    assert_eq!(measured.violations(&strict), vec![UncertaintyKind::Ontological]);
}

#[test]
fn engines_cross_validate_on_linear_model() {
    // The cross-engine equivalence contract: Monte Carlo, Latin hypercube
    // and spectral PCE — three unrelated propagation stacks behind one
    // trait — must agree on the moments of a linear model. Seeded, so the
    // tolerances are deterministic.
    // Y = 1 + 2 X1 - 0.5 X2, X1 ~ N(0.5, 1), X2 ~ U(-1, 1):
    // E = 1 + 2*0.5 - 0 = 2, Var = 4*1 + 0.25/3.
    let model = |x: &[f64]| 1.0 + 2.0 * x[0] - 0.5 * x[1];
    let request = PropagationRequest::new(
        vec![
            UncertainInput::Normal { mu: 0.5, sigma: 1.0 },
            UncertainInput::Uniform { a: -1.0, b: 1.0 },
        ],
        &model,
    )
    .expect("valid request")
    .with_budget(50_000)
    .with_seed(42);
    let mean_true = 2.0;
    let var_true = 4.0 + 0.25 / 3.0;
    let engines: Vec<Box<dyn Propagator>> = vec![
        Box::new(MonteCarloEngine),
        Box::new(LatinHypercubeEngine),
        Box::new(SpectralEngine::default()),
    ];
    let mut means = Vec::new();
    for engine in &engines {
        let rep = engine.propagate(&request).expect("propagates");
        assert!(
            (rep.mean_estimate() - mean_true).abs() < 0.05,
            "{}: mean {}",
            rep.engine,
            rep.mean_estimate()
        );
        assert!(
            (rep.variance_estimate() - var_true).abs() < 0.1,
            "{}: var {}",
            rep.engine,
            rep.variance_estimate()
        );
        assert_eq!(rep.kind, UncertaintyKind::Aleatory);
        means.push(rep.mean_estimate());
    }
    // Pairwise agreement between the engines themselves.
    for w in means.windows(2) {
        assert!((w[0] - w[1]).abs() < 0.1, "engines disagree: {means:?}");
    }
}

#[test]
fn parallel_batch_driver_matches_serial_execution() {
    // Acceptance criterion of the engine layer: the scoped-thread batch
    // driver is bit-identical to sequential execution on fixed seeds.
    let m1 = |x: &[f64]| x[0].sin() + x[1];
    let m2 = |x: &[f64]| x[0] * x[0];
    let r1 = PropagationRequest::new(
        vec![
            UncertainInput::Uniform { a: 0.0, b: 1.0 },
            UncertainInput::Normal { mu: 0.0, sigma: 0.5 },
        ],
        &m1,
    )
    .expect("valid")
    .with_seed(7)
    .with_budget(4_096)
    .with_threshold(0.8);
    let r2 = PropagationRequest::new(
        vec![UncertainInput::Exponential { rate: 2.0 }],
        &m2,
    )
    .expect("valid")
    .with_seed(9);
    let engines = standard_engines();
    let mut jobs: Vec<BatchJob<'_, '_>> = Vec::new();
    for e in &engines {
        jobs.push((e.as_ref(), &r1));
        jobs.push((e.as_ref(), &r2));
    }
    let serial = run_batch_serial(&jobs);
    let parallel = run_batch(&jobs, 4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(&parallel) {
        match (s, p) {
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (Err(_), Err(_)) => {}
            _ => panic!("serial and parallel disagree on success"),
        }
    }
}

#[test]
fn perception_adapter_propagates_through_engines() {
    // perception (case-study substrate) + core engine layer: the Table I
    // missed-hazard model under world-mix uncertainty. With the novel
    // share a pure interval, the evidential envelope must bracket the
    // analytic rate; with both shares point-like Betas, Monte Carlo must
    // recover it.
    let hazard = sysunc::perception::MissedHazardModel::paper_camera().expect("builds");
    // Analytic at the paper mix (0.3, 0.1): 0.3*0.075 + 0.1*0.2 = 0.0425.
    let analytic = 0.3 * 0.075 + 0.1 * 0.2;

    let mc_request = PropagationRequest::new(
        vec![
            UncertainInput::Beta { alpha: 300.0, beta: 700.0 },
            UncertainInput::Beta { alpha: 100.0, beta: 900.0 },
        ],
        &hazard,
    )
    .expect("valid")
    .with_budget(20_000)
    .with_seed(2020);
    let mc = MonteCarloEngine.propagate(&mc_request).expect("propagates");
    assert!((mc.mean_estimate() - analytic).abs() < 2e-3, "mc mean {}", mc.mean_estimate());
    assert_eq!(mc.means, Means::Removal);

    let ev_request = PropagationRequest::new(
        vec![
            UncertainInput::Beta { alpha: 300.0, beta: 700.0 },
            UncertainInput::Interval { lo: 0.05, hi: 0.15 },
        ],
        &hazard,
    )
    .expect("valid")
    .with_budget(2_048)
    .with_seed(2020);
    let ev = EvidentialEngine::default().propagate(&ev_request).expect("propagates");
    assert_eq!(ev.means, Means::Tolerance);
    assert_eq!(ev.kind, UncertaintyKind::Epistemic);
    assert!(ev.mean.contains(analytic), "envelope {:?} vs {analytic}", ev.mean);
    assert!(ev.epistemic_width() > 0.015, "interval input must widen the mean");
}

#[test]
fn orbital_adapter_agrees_between_sampling_and_spectral() {
    // orbital (case-study substrate) + core engine layer: Kepler period
    // of a two-body system under mass and distance uncertainty, Monte
    // Carlo vs spectral PCE.
    let period = sysunc::orbital::TwoBodyPeriodModel;
    let request = PropagationRequest::new(
        vec![
            UncertainInput::Normal { mu: 1.0, sigma: 0.02 },
            UncertainInput::Normal { mu: 3.0e-6, sigma: 1.0e-7 },
            UncertainInput::Normal { mu: 1.0, sigma: 0.01 },
        ],
        &period,
    )
    .expect("valid")
    .with_budget(30_000)
    .with_seed(11);
    let mc = MonteCarloEngine.propagate(&request).expect("mc");
    let pce = SpectralEngine::new(3).propagate(&request).expect("pce");
    assert!(
        (mc.mean_estimate() - pce.mean_estimate()).abs() < 0.01 * mc.mean_estimate().abs(),
        "mc {} vs pce {}",
        mc.mean_estimate(),
        pce.mean_estimate()
    );
    let ratio = pce.std_dev_estimate() / mc.std_dev_estimate();
    assert!((0.9..1.1).contains(&ratio), "std-dev ratio {ratio}");
    // Spectral projection spends a fixed Gauss grid, far below the
    // sampling budget — the forecasting economy the paper argues for.
    assert!(pce.evaluations < mc.evaluations);
}
