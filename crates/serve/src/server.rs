//! The server proper: listener, acceptor thread, per-connection
//! threads, and the propagate path through the worker pool.
//!
//! Threading model:
//!
//! - One **acceptor** thread owns the `TcpListener` and spawns a
//!   thread per connection.
//! - **Connection** threads parse HTTP, serve the cheap discovery
//!   routes inline, and hand `POST /v1/propagate` jobs to the shared
//!   [`WorkerPool`], waiting on a channel with the request deadline.
//! - **Worker** threads run the actual propagations.
//!
//! Backpressure: when the pool queue is full, the connection thread
//! answers `503` with `Retry-After` immediately. Deadlines: when the
//! worker misses the request deadline the connection thread answers
//! `408` and cancels the in-flight job's [`CancelToken`], turning the
//! rest of its budget into fast no-ops. Shutdown: the
//! [`ShutdownSignal`] stops the acceptor, connection read loops notice
//! via their polling timeout and finish their current request, and the
//! pool drains every accepted job before the handle's `shutdown`
//! returns.

use crate::error::{Result, ServeError};
use crate::http::{HttpConn, Limits, Request, Response};
use crate::metrics::{route_label, ServerMetrics};
use crate::pool::WorkerPool;
use crate::router::{
    decode_propagate_body, engines_response, error_response, metrics_response,
    models_response, propagate_response, read_error_response, route, CancelToken, Route,
};
use crate::shutdown::ShutdownSignal;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sysunc::ModelRegistry;

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing propagations.
    pub workers: usize,
    /// Propagate jobs allowed to wait in the queue before `503`.
    pub queue_capacity: usize,
    /// Deadline per propagate request before `408`.
    pub request_timeout: Duration,
    /// Socket read poll interval; bounds shutdown latency.
    pub poll_interval: Duration,
    /// HTTP message size limits.
    pub limits: Limits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
            limits: Limits::default(),
        }
    }
}

/// Everything a connection thread needs, shared behind an `Arc`.
struct Ctx {
    registry: ModelRegistry,
    metrics: Arc<ServerMetrics>,
    pool: WorkerPool,
    signal: ShutdownSignal,
    config: ServerConfig,
}

/// The propagation server. Construct with [`Server::start`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds, spawns the acceptor and worker threads, and returns a
    /// handle. The server runs until [`ServerHandle::shutdown`] (or
    /// the handle's drop).
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures as [`ServeError::Io`].
    pub fn start(config: ServerConfig, registry: ModelRegistry) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::new());
        let signal = ShutdownSignal::new();
        let ctx = Arc::new(Ctx {
            registry,
            metrics: Arc::clone(&metrics),
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            signal: signal.clone(),
            config,
        });
        let acceptor_ctx = Arc::clone(&ctx);
        let acceptor = std::thread::Builder::new()
            .name("sysunc-serve-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &acceptor_ctx))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(ServerHandle { addr, metrics, signal, acceptor: Some(acceptor) })
    }
}

/// A running server: its address, metrics, and shutdown control.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    signal: ShutdownSignal,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry backing `GET /metrics`.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    fn shutdown_inner(&mut self) {
        self.signal.trigger_and_wake(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    /// Gracefully stops the server: no new connections, in-flight
    /// requests drain, workers and connection threads join.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn acceptor_loop(listener: &TcpListener, ctx: &Arc<Ctx>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if ctx.signal.is_triggered() {
            break;
        }
        let Ok(stream) = stream else { continue };
        ctx.metrics.connection_opened();
        connections.retain(|h| !h.is_finished());
        let conn_ctx = Arc::clone(ctx);
        let spawned = std::thread::Builder::new()
            .name("sysunc-serve-conn".into())
            .spawn(move || handle_connection(stream, &conn_ctx));
        match spawned {
            Ok(handle) => connections.push(handle),
            Err(_) => ctx.metrics.connection_closed(),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
    ctx.pool.shutdown();
}

fn handle_connection(stream: TcpStream, ctx: &Arc<Ctx>) {
    let _ = stream.set_read_timeout(Some(ctx.config.poll_interval));
    let _ = stream.set_nodelay(true);
    let mut conn = HttpConn::new(stream);
    loop {
        let mut should_abort = || ctx.signal.is_triggered();
        match conn.read_request(&ctx.config.limits, &mut should_abort) {
            Ok(Some(request)) => {
                let started = Instant::now();
                let response = handle_request(&request, ctx);
                let keep_alive = request.wants_keep_alive() && !ctx.signal.is_triggered();
                let status = response.status;
                let wrote = response.write_to(conn.stream_mut(), keep_alive).is_ok();
                ctx.metrics.record_request(
                    route_label(&request.target),
                    status,
                    started.elapsed(),
                );
                if !keep_alive || !wrote {
                    break;
                }
            }
            // Peer hung up between requests.
            Ok(None) => break,
            // Shutdown while idle or mid-read.
            Err(ServeError::Timeout) => break,
            Err(e) => {
                ctx.metrics.protocol_error();
                if let Some(response) = read_error_response(&e) {
                    let status = response.status;
                    let _ = response.write_to(conn.stream_mut(), false);
                    ctx.metrics.record_request("other", status, Duration::ZERO);
                }
                break;
            }
        }
    }
    ctx.metrics.connection_closed();
}

fn handle_request(request: &Request, ctx: &Arc<Ctx>) -> Response {
    match route(&request.method, &request.target) {
        Route::Propagate => propagate_via_pool(request, ctx),
        Route::Engines => engines_response(),
        Route::Models => models_response(&ctx.registry),
        Route::Metrics => metrics_response(&ctx.metrics),
        Route::MethodNotAllowed => {
            let allow = if route_label(&request.target) == "/v1/propagate" {
                "POST"
            } else {
                "GET"
            };
            error_response(405, &format!("method {} not allowed here", request.method))
                .with_header("Allow", allow)
        }
        Route::NotFound => {
            error_response(404, &format!("no route for '{}'", request.target))
        }
    }
}

/// The full propagate path: decode on this thread, execute on the
/// pool, enforce backpressure and the deadline.
fn propagate_via_pool(request: &Request, ctx: &Arc<Ctx>) -> Response {
    let wire = match decode_propagate_body(&ctx.registry, &request.body) {
        Ok(wire) => wire,
        Err(response) => return *response,
    };
    let deadline = Instant::now() + ctx.config.request_timeout;
    let token = CancelToken::with_deadline(deadline);
    let (tx, rx) = mpsc::channel();
    let job_ctx = Arc::clone(ctx);
    let job_token = token.clone();
    let submitted = ctx.pool.try_submit(Box::new(move || {
        let response =
            propagate_response(&job_ctx.registry, &wire, &job_token, &job_ctx.metrics);
        let _ = tx.send(response);
    }));
    if submitted.is_err() {
        return error_response(503, "server is at capacity; retry shortly")
            .with_header("Retry-After", "1");
    }
    let budget = deadline.saturating_duration_since(Instant::now());
    match rx.recv_timeout(budget) {
        Ok(response) => response,
        Err(mpsc::RecvTimeoutError::Timeout) => {
            token.cancel();
            error_response(408, "request deadline exceeded")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            error_response(500, "propagation worker failed")
        }
    }
}
