/root/repo/target/debug/deps/exp_tolerance-7699b395e96f60b3.d: crates/bench/src/bin/exp_tolerance.rs

/root/repo/target/debug/deps/exp_tolerance-7699b395e96f60b3: crates/bench/src/bin/exp_tolerance.rs

crates/bench/src/bin/exp_tolerance.rs:
