//! The server proper: listener, acceptor thread, per-connection
//! threads, and the propagate path through the worker pool.
//!
//! Threading model:
//!
//! - One **acceptor** thread owns the `TcpListener` and spawns a
//!   thread per connection — up to the hard connection cap
//!   ([`ConnectionLimiter`]); beyond it the acceptor answers `503 +
//!   Retry-After` inline and closes, so load cannot grow the thread
//!   count without bound.
//! - **Connection** threads parse HTTP, serve the cheap discovery
//!   routes inline, look repeated propagate requests up in the
//!   content-addressed [`ResponseCache`] (a hit answers without
//!   touching the pool), and hand cache misses to the shared
//!   [`WorkerPool`], waiting on a channel with the request deadline.
//! - **Worker** threads run the actual propagations; a batch request
//!   occupies one worker slot and fans its deduplicated jobs across
//!   `core::run_batch` scoped threads.
//!
//! Backpressure: when the pool queue is full, the connection thread
//! answers `503` with `Retry-After` immediately. Deadlines: when the
//! worker misses the request deadline the connection thread answers
//! `408` and cancels the in-flight job's [`CancelToken`], turning the
//! rest of its budget into fast no-ops. Shutdown: the
//! [`ShutdownSignal`] stops the acceptor, connection read loops notice
//! via their polling timeout and finish their current request, and the
//! pool drains every accepted job before the handle's `shutdown`
//! returns.

use crate::cache::ResponseCache;
use crate::error::{Result, ServeError};
use crate::http::{HttpConn, Limits, Request, Response};
use crate::metrics::{route_label, ServerMetrics};
use crate::pool::{ConnectionLimiter, WorkerPool};
use crate::router::{
    decode_batch_body, decode_propagate_body, engines_response, error_response,
    healthz_response, metrics_response, models_response, propagate_response,
    read_error_response, route, run_batch_jobs, CancelToken, Route,
};
use crate::shutdown::ShutdownSignal;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use sysunc::{dedup_by_key, Error as SysuncError, ModelRegistry};

/// Tunables of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads executing propagations.
    pub workers: usize,
    /// Propagate jobs allowed to wait in the queue before `503`.
    pub queue_capacity: usize,
    /// Deadline per propagate request before `408`.
    pub request_timeout: Duration,
    /// Socket read poll interval; bounds shutdown latency.
    pub poll_interval: Duration,
    /// HTTP message size limits.
    pub limits: Limits,
    /// Concurrent connections served before the acceptor answers
    /// `503 + Retry-After` inline (accept-side backpressure).
    pub max_connections: usize,
    /// Response-cache entries across all shards; 0 disables caching.
    pub cache_capacity: usize,
    /// Response-cache shards (rounded up to a power of two).
    pub cache_shards: usize,
    /// Response-cache entry lifetime; `None` means entries never
    /// expire. Bounds staleness when the model registry is mutable.
    pub cache_ttl: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_capacity: 64,
            request_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
            limits: Limits::default(),
            max_connections: 128,
            cache_capacity: 1024,
            cache_shards: 8,
            cache_ttl: None,
        }
    }
}

/// Everything a connection thread needs, shared behind an `Arc`.
struct Ctx {
    registry: ModelRegistry,
    metrics: Arc<ServerMetrics>,
    pool: WorkerPool,
    cache: ResponseCache,
    signal: ShutdownSignal,
    config: ServerConfig,
    /// When the server started, backing the `/healthz` uptime report.
    started: Instant,
}

/// The propagation server. Construct with [`Server::start`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds, spawns the acceptor and worker threads, and returns a
    /// handle. The server runs until [`ServerHandle::shutdown`] (or
    /// the handle's drop).
    ///
    /// # Errors
    ///
    /// Propagates bind/spawn failures as [`ServeError::Io`].
    pub fn start(config: ServerConfig, registry: ModelRegistry) -> Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(ServerMetrics::new());
        let signal = ShutdownSignal::new();
        let ctx = Arc::new(Ctx {
            registry,
            metrics: Arc::clone(&metrics),
            pool: WorkerPool::new(config.workers, config.queue_capacity),
            cache: ResponseCache::with_ttl(
                config.cache_capacity,
                config.cache_shards,
                config.cache_ttl,
            ),
            signal: signal.clone(),
            config,
            started: Instant::now(),
        });
        let acceptor_ctx = Arc::clone(&ctx);
        let acceptor = std::thread::Builder::new()
            .name("sysunc-serve-acceptor".into())
            .spawn(move || acceptor_loop(&listener, &acceptor_ctx))
            .map_err(|e| ServeError::Io(e.to_string()))?;
        Ok(ServerHandle { addr, metrics, signal, acceptor: Some(acceptor) })
    }
}

/// A running server: its address, metrics, and shutdown control.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    signal: ShutdownSignal,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the resolved ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The live metrics registry backing `GET /metrics`.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    fn shutdown_inner(&mut self) {
        self.signal.trigger_and_wake(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }

    /// Gracefully stops the server: no new connections, in-flight
    /// requests drain, workers and connection threads join.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn acceptor_loop(listener: &TcpListener, ctx: &Arc<Ctx>) {
    let limiter = ConnectionLimiter::new(ctx.config.max_connections);
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if ctx.signal.is_triggered() {
            break;
        }
        let Ok(stream) = stream else { continue };
        connections.retain(|h| !h.is_finished());
        // Accept-side backpressure: at the connection cap the acceptor
        // answers 503 inline and closes, instead of growing the
        // thread-per-connection count without bound.
        let Some(permit) = limiter.try_acquire() else {
            ctx.metrics.connection_rejected();
            reject_connection(stream);
            continue;
        };
        ctx.metrics.connection_opened();
        let conn_ctx = Arc::clone(ctx);
        let spawned = std::thread::Builder::new()
            .name("sysunc-serve-conn".into())
            .spawn(move || {
                // The permit rides with the thread; dropping it on any
                // exit path (including panic) frees the slot.
                let _permit = permit;
                handle_connection(stream, &conn_ctx);
            });
        match spawned {
            Ok(handle) => connections.push(handle),
            Err(_) => ctx.metrics.connection_closed(),
        }
    }
    for handle in connections {
        let _ = handle.join();
    }
    ctx.pool.shutdown();
}

/// Answers a connection refused at the cap: an immediate `503 +
/// Retry-After` and close, bounded by a short write timeout so a slow
/// peer cannot stall the acceptor.
fn reject_connection(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let response = error_response(503, "server connection limit reached; retry shortly")
        .with_header("Retry-After", "1");
    let _ = response.write_to(&mut stream, false);
    let _ = stream.flush();
}

fn handle_connection(stream: TcpStream, ctx: &Arc<Ctx>) {
    let _ = stream.set_read_timeout(Some(ctx.config.poll_interval));
    let _ = stream.set_nodelay(true);
    let mut conn = HttpConn::new(stream);
    loop {
        let mut should_abort = || ctx.signal.is_triggered();
        match conn.read_request(&ctx.config.limits, &mut should_abort) {
            Ok(Some(request)) => {
                let started = Instant::now();
                let response = handle_request(&request, ctx);
                let keep_alive = request.wants_keep_alive() && !ctx.signal.is_triggered();
                let status = response.status;
                let wrote = response.write_to(conn.stream_mut(), keep_alive).is_ok();
                ctx.metrics.record_request(
                    route_label(&request.target),
                    status,
                    started.elapsed(),
                );
                if !keep_alive || !wrote {
                    break;
                }
            }
            // Peer hung up between requests.
            Ok(None) => break,
            // Shutdown while idle or mid-read.
            Err(ServeError::Timeout) => break,
            Err(e) => {
                ctx.metrics.protocol_error();
                if let Some(response) = read_error_response(&e) {
                    let status = response.status;
                    let _ = response.write_to(conn.stream_mut(), false);
                    ctx.metrics.record_request("other", status, Duration::ZERO);
                }
                break;
            }
        }
    }
    ctx.metrics.connection_closed();
}

fn handle_request(request: &Request, ctx: &Arc<Ctx>) -> Response {
    match route(&request.method, &request.target) {
        Route::Propagate => propagate_via_pool(request, ctx),
        Route::PropagateBatch => propagate_batch_via_pool(request, ctx),
        Route::Engines => engines_response(),
        Route::Models => models_response(&ctx.registry),
        Route::Metrics => metrics_response(&ctx.metrics),
        // Answered inline — a supervisor probe must succeed even when
        // every worker is busy and the queue is at capacity.
        Route::Healthz => healthz_response(
            ctx.pool.queue_len(),
            ctx.config.workers,
            ctx.pool.panic_count(),
            ctx.started.elapsed(),
        ),
        Route::MethodNotAllowed => {
            let allow = if route_label(&request.target).starts_with("/v1/propagate") {
                "POST"
            } else {
                "GET"
            };
            error_response(405, &format!("method {} not allowed here", request.method))
                .with_header("Allow", allow)
        }
        Route::NotFound => {
            error_response(404, &format!("no route for '{}'", request.target))
        }
    }
}

/// The full propagate path: decode and canonicalize on this thread,
/// serve cache hits without touching the pool, otherwise execute on
/// the pool, enforce backpressure and the deadline, and populate the
/// cache from successful responses.
fn propagate_via_pool(request: &Request, ctx: &Arc<Ctx>) -> Response {
    let (wire, canonical) = match decode_propagate_body(&ctx.registry, &request.body) {
        Ok(decoded) => decoded,
        Err(response) => return *response,
    };
    if let Some(body) = ctx.cache.get(canonical.content_hash(), canonical.bytes()) {
        ctx.metrics.cache_hit();
        return Response::new(200)
            .with_json(body.as_str().to_string())
            .with_header("X-Sysunc-Cache", "hit");
    }
    ctx.metrics.cache_miss();
    let deadline = Instant::now() + ctx.config.request_timeout;
    let token = CancelToken::with_deadline(deadline);
    let (tx, rx) = mpsc::channel();
    let job_ctx = Arc::clone(ctx);
    let job_token = token.clone();
    let submitted = ctx.pool.try_submit(Box::new(move || {
        let response =
            propagate_response(&job_ctx.registry, &wire, &job_token, &job_ctx.metrics);
        let _ = tx.send(response);
    }));
    if submitted.is_err() {
        return error_response(503, "server is at capacity; retry shortly")
            .with_header("Retry-After", "1");
    }
    let budget = deadline.saturating_duration_since(Instant::now());
    match rx.recv_timeout(budget) {
        Ok(response) => {
            // Only complete reports are cacheable: errors and timeouts
            // are circumstantial, not a function of the request.
            if response.status == 200 {
                let body = String::from_utf8_lossy(&response.body).into_owned();
                let evicted = ctx.cache.insert(
                    canonical.content_hash(),
                    canonical.bytes().to_string(),
                    Arc::new(body),
                );
                ctx.metrics.cache_evicted(evicted);
            }
            response.with_header("X-Sysunc-Cache", "miss")
        }
        Err(mpsc::RecvTimeoutError::Timeout) => {
            token.cancel();
            error_response(408, "request deadline exceeded")
        }
        Err(mpsc::RecvTimeoutError::Disconnected) => {
            error_response(500, "propagation worker failed")
        }
    }
}

/// The batch propagate path: decode all jobs on this thread, collapse
/// them onto distinct canonical requests, serve what the cache
/// already holds, run the rest as **one** pool job through
/// `core::run_batch`, and assemble the report array in job order from
/// the per-unique bodies — each body the exact bytes single-request
/// serving produces.
fn propagate_batch_via_pool(request: &Request, ctx: &Arc<Ctx>) -> Response {
    let jobs = match decode_batch_body(&ctx.registry, &request.body) {
        Ok(jobs) => jobs,
        Err(response) => return *response,
    };
    ctx.metrics.batch_jobs(jobs.len() as u64);

    // Identical canonical requests are the same job: run once, answer
    // many times (engines are deterministic by seed).
    let keys: Vec<&str> = jobs.iter().map(|(_, c)| c.bytes()).collect();
    let (uniques, assignment) = dedup_by_key(&keys);

    let mut bodies: Vec<Option<Arc<String>>> = uniques
        .iter()
        .map(|&j| {
            jobs.get(j).and_then(|(_, canonical)| {
                ctx.cache.get(canonical.content_hash(), canonical.bytes())
            })
        })
        .collect();
    let hits = bodies.iter().filter(|b| b.is_some()).count();
    let misses = bodies.len() - hits;
    for _ in 0..hits {
        ctx.metrics.cache_hit();
    }
    for _ in 0..misses {
        ctx.metrics.cache_miss();
    }

    if misses > 0 {
        let missing: Vec<usize> = bodies
            .iter()
            .enumerate()
            .filter(|(_, b)| b.is_none())
            .map(|(u, _)| u)
            .collect();
        let wires: Vec<_> = missing
            .iter()
            .filter_map(|&u| uniques.get(u))
            .filter_map(|&j| jobs.get(j))
            .map(|(wire, _)| wire.clone())
            .collect();
        if wires.len() != missing.len() {
            return error_response(500, "batch bookkeeping lost a unique slot");
        }
        let deadline = Instant::now() + ctx.config.request_timeout;
        let token = CancelToken::with_deadline(deadline);
        let (tx, rx) = mpsc::channel();
        let job_ctx = Arc::clone(ctx);
        let job_token = token.clone();
        let threads = ctx.config.workers;
        let submitted = ctx.pool.try_submit(Box::new(move || {
            let results = run_batch_jobs(
                &job_ctx.registry,
                &wires,
                &job_token,
                &job_ctx.metrics,
                threads,
            );
            let _ = tx.send(results);
        }));
        if submitted.is_err() {
            return error_response(503, "server is at capacity; retry shortly")
                .with_header("Retry-After", "1");
        }
        let budget = deadline.saturating_duration_since(Instant::now());
        let results = match rx.recv_timeout(budget) {
            Ok(results) => results,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                token.cancel();
                return error_response(408, "request deadline exceeded");
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return error_response(500, "propagation worker failed");
            }
        };
        let results = match results {
            Ok(results) => results,
            // A bind failure names the unique slot; translate back to
            // the original job index for the caller.
            Err((slot, e)) => {
                let job =
                    missing.get(slot).and_then(|&u| uniques.get(u)).copied().unwrap_or(0);
                return error_response(400, &format!("job {job}: {e}"));
            }
        };
        if token.expired() {
            return error_response(408, "request deadline exceeded during execution");
        }
        for (&u, outcome) in missing.iter().zip(results) {
            let job = match uniques.get(u) {
                Some(&j) => j,
                None => return error_response(500, "batch bookkeeping lost a unique slot"),
            };
            match outcome {
                Ok(report) => {
                    let body = Arc::new(sysunc::prob::json::to_string(&report));
                    let canonical = match jobs.get(job) {
                        Some((_, c)) => c,
                        None => {
                            return error_response(500, "batch bookkeeping lost a job");
                        }
                    };
                    let evicted = ctx.cache.insert(
                        canonical.content_hash(),
                        canonical.bytes().to_string(),
                        Arc::clone(&body),
                    );
                    ctx.metrics.cache_evicted(evicted);
                    if let Some(slot) = bodies.get_mut(u) {
                        *slot = Some(body);
                    }
                }
                Err(SysuncError::InvalidInput(msg)) => {
                    return error_response(400, &format!("job {job}: invalid input: {msg}"));
                }
                Err(SysuncError::Unsupported(msg)) => {
                    return error_response(
                        400,
                        &format!("job {job}: unsupported propagation request: {msg}"),
                    );
                }
                Err(e) => {
                    return error_response(
                        500,
                        &format!("job {job}: propagation failed: {e}"),
                    );
                }
            }
        }
    }

    // Fan the unique bodies back out in job order. Bodies are the
    // exact single-request encodings, so concatenation preserves
    // bit-identity per element.
    let mut out = String::with_capacity(bodies.iter().flatten().map(|b| b.len() + 1).sum());
    out.push('[');
    for (i, &slot) in assignment.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match bodies.get(slot).and_then(|b| b.as_deref()) {
            Some(body) => out.push_str(body),
            // Unreachable: every miss was either filled or returned
            // an error above — but never panic in the serving path.
            None => {
                return error_response(500, "batch assembly lost a job body");
            }
        }
    }
    out.push(']');
    Response::new(200)
        .with_json(out)
        .with_header("X-Sysunc-Cache", &format!("hits={hits} misses={misses}"))
}
