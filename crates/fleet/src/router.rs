//! The fleet front: terminates client connections and places every
//! request on a shard by content hash.
//!
//! Placement preserves the per-shard response-cache locality that
//! makes sharding pay: a propagate body reduces to its
//! [`CanonicalRequest`] FNV-1a/64 content hash — the same identity the
//! child keys its LRU cache on — and `hash % shards` picks the shard,
//! so a repeated request always lands where its answer is already
//! cached. Batches fold every job's canonical bytes into one hash so
//! the whole batch (and its intra-batch dedup) stays on one shard.
//! Bodies that do not canonicalize are placed round-robin and the
//! shard renders the `400` — error rendering stays single-sourced in
//! serve.
//!
//! Forwarding is retried until the request deadline: a transport error
//! invalidates the pooled backend connection, and the shard table is
//! re-resolved each attempt, so a request that arrives while its
//! primary shard is mid-restart simply waits out the respawn or rides
//! the ring walk to a fallback shard. Retrying a propagate is safe —
//! propagations are deterministic by seed, so a duplicate execution
//! produces identical bytes.
//!
//! The front answers two routes itself: `GET /healthz` (fleet summary,
//! no child touched) and `GET /metrics` (the `sysunc_fleet_*` series
//! plus every child exposition summed shard-wise).

use std::collections::HashMap;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sysunc::prob::json::{self, FromJson, Json};
use sysunc::wire::fnv1a64;
use sysunc::{CanonicalRequest, WireRequest};
use sysunc_serve::http::HttpConn;
use sysunc_serve::router::{error_response, read_error_response};
use sysunc_serve::{ConnectionLimiter, HttpClient, Request, Response, ServeError};

use crate::metrics::merge_expositions;
use crate::supervisor::Shared;

/// How long one backend connect may take; routing retries (bounded by
/// the request deadline) absorb failures.
const BACKEND_CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Pause between routing attempts while a shard restarts.
const RETRY_PAUSE: Duration = Duration::from_millis(10);

/// A pooled connection to one shard, valid for one process generation.
struct Backend {
    generation: u64,
    client: HttpClient,
}

/// The front accept loop: thread-per-connection behind a connection
/// cap, exactly like the serve acceptor, shutting down when the fleet
/// signal trips.
pub(crate) fn acceptor_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    let limiter = ConnectionLimiter::new(shared.config.max_connections);
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if shared.signal.is_triggered() {
            break;
        }
        let Ok(stream) = stream else { continue };
        connections.retain(|h| !h.is_finished());
        let Some(permit) = limiter.try_acquire() else {
            reject_connection(stream);
            continue;
        };
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("sysunc-fleet-conn".into())
            .spawn(move || {
                let _permit = permit;
                handle_connection(stream, &conn_shared);
            });
        if let Ok(handle) = spawned {
            connections.push(handle);
        }
    }
    // In-flight requests finish against still-running children before
    // the supervisor starts draining them.
    for handle in connections {
        let _ = handle.join();
    }
}

/// Answers a connection refused at the cap: `503 + Retry-After`, then
/// close, bounded by a short write timeout.
fn reject_connection(stream: TcpStream) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let response = error_response(503, "fleet connection limit reached; retry shortly")
        .with_header("Retry-After", "1");
    let _ = response.write_to(&mut stream, false);
}

/// One client connection: keep-alive request loop, each request routed
/// to a shard over this connection's pooled backend clients.
fn handle_connection(stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
    let _ = stream.set_nodelay(true);
    let mut conn = HttpConn::new(stream);
    let mut backends: HashMap<usize, Backend> = HashMap::new();
    loop {
        let mut should_abort = || shared.signal.is_triggered();
        match conn.read_request(&shared.config.limits, &mut should_abort) {
            Ok(Some(request)) => {
                let response = dispatch(&request, shared, &mut backends);
                let keep_alive =
                    request.wants_keep_alive() && !shared.signal.is_triggered();
                let wrote = response.write_to(conn.stream_mut(), keep_alive).is_ok();
                if !keep_alive || !wrote {
                    break;
                }
            }
            // Peer hung up between requests.
            Ok(None) => break,
            // Shutdown while idle or mid-read.
            Err(ServeError::Timeout) => break,
            Err(e) => {
                if let Some(response) = read_error_response(&e) {
                    let _ = response.write_to(conn.stream_mut(), false);
                }
                break;
            }
        }
    }
}

/// Routes one request: the two fleet-answered routes, then hash
/// placement and forwarding for everything else.
fn dispatch(
    request: &Request,
    shared: &Arc<Shared>,
    backends: &mut HashMap<usize, Backend>,
) -> Response {
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => fleet_healthz(shared),
        ("GET", "/metrics") => aggregate_metrics(shared),
        _ => {
            let hash = placement_hash(request, shared);
            forward(hash, request, shared, backends)
        }
    }
}

/// The placement key for a request: the canonical content hash for
/// propagate bodies (cache locality), a folded per-job hash for
/// batches, and a rotating counter for everything else — discovery
/// routes any shard can answer, and bodies that fail to canonicalize
/// (the shard renders the 400).
fn placement_hash(request: &Request, shared: &Arc<Shared>) -> u64 {
    let hashed = match (request.method.as_str(), request.target.as_str()) {
        ("POST", "/v1/propagate") => propagate_hash(&request.body),
        ("POST", "/v1/propagate/batch") => batch_hash(&request.body),
        _ => None,
    };
    hashed.unwrap_or_else(|| shared.rotor.fetch_add(1, Ordering::Relaxed))
}

/// The canonical content hash of one propagate body, when it parses.
fn propagate_hash(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let wire: WireRequest = json::from_str(text).ok()?;
    Some(CanonicalRequest::from_wire(&wire).ok()?.content_hash())
}

/// One hash for a whole batch: every job's canonical bytes folded
/// through FNV-1a/64, so identical batches land on the same shard and
/// intra-batch dedup stays intact.
fn batch_hash(body: &[u8]) -> Option<u64> {
    let text = std::str::from_utf8(body).ok()?;
    let doc = json::parse(text).ok()?;
    let jobs = doc.get("jobs").and_then(Json::as_arr)?;
    if jobs.is_empty() {
        return None;
    }
    let mut folded = String::new();
    for job in jobs {
        let wire = WireRequest::from_json(job).ok()?;
        let canonical = CanonicalRequest::from_wire(&wire).ok()?;
        folded.push_str(canonical.bytes());
        folded.push('\n');
    }
    Some(fnv1a64(folded.as_bytes()))
}

/// Forwards a request to the shard owning `hash`, retrying across
/// shard restarts until the request deadline. A pooled backend
/// connection is reused only while its process generation matches the
/// shard table — a restart bumps the generation, which retires
/// connections into the dead process.
fn forward(
    hash: u64,
    request: &Request,
    shared: &Arc<Shared>,
    backends: &mut HashMap<usize, Backend>,
) -> Response {
    let deadline = Instant::now() + shared.config.request_timeout;
    let body = if request.body.is_empty() {
        None
    } else {
        Some(String::from_utf8_lossy(&request.body).into_owned())
    };
    loop {
        let Some((slot, view)) = shared.table.healthy_slot_for(hash) else {
            // No healthy shard: wait out a restart, give up at the
            // deadline (or immediately during shutdown).
            if Instant::now() >= deadline || shared.signal.is_triggered() {
                shared.metrics.unroutable();
                return error_response(503, "no healthy shard; retry shortly")
                    .with_header("Retry-After", "1");
            }
            std::thread::sleep(RETRY_PAUSE);
            continue;
        };
        let Some(addr) = view.addr else { continue };
        let pooled_current = backends
            .get(&slot)
            .map(|b| b.generation == view.generation)
            .unwrap_or(false);
        if !pooled_current {
            backends.remove(&slot);
            match HttpClient::connect_with_timeout(addr, BACKEND_CONNECT_TIMEOUT) {
                Ok(mut client) => {
                    client.set_timeout(shared.config.request_timeout);
                    backends.insert(slot, Backend { generation: view.generation, client });
                }
                Err(_) => {
                    shared.metrics.forward_retried();
                    if Instant::now() >= deadline {
                        shared.metrics.unroutable();
                        return error_response(503, "shard unreachable; retry shortly")
                            .with_header("Retry-After", "1");
                    }
                    std::thread::sleep(RETRY_PAUSE);
                    continue;
                }
            }
        }
        let Some(backend) = backends.get_mut(&slot) else { continue };
        match backend.client.request(&request.method, &request.target, body.as_deref()) {
            Ok(response) => {
                shared.metrics.routed(slot);
                return relay(response);
            }
            Err(_) => {
                // The child died (or the response timed out) mid-flight:
                // drop the connection and re-resolve. Retrying is safe —
                // propagations are deterministic by seed.
                backends.remove(&slot);
                shared.metrics.forward_retried();
                if Instant::now() >= deadline {
                    shared.metrics.unroutable();
                    return error_response(503, "shard request failed; retry shortly")
                        .with_header("Retry-After", "1");
                }
                std::thread::sleep(RETRY_PAUSE);
            }
        }
    }
}

/// Prepares a shard response for re-serialization to the client:
/// `write_to` appends its own `Content-Length` and `Connection`
/// headers, so the parsed copies must go; everything else
/// (`Content-Type`, `X-Sysunc-Cache`, `Retry-After`, `Allow`, …)
/// relays untouched.
fn relay(mut response: Response) -> Response {
    response.headers.retain(|(name, _)| {
        !name.eq_ignore_ascii_case("content-length")
            && !name.eq_ignore_ascii_case("connection")
    });
    response
}

/// The fleet's own health summary — answered entirely at the front, no
/// child is touched, so it stays honest even mid-restart.
fn fleet_healthz(shared: &Arc<Shared>) -> Response {
    let views = shared.table.views();
    let healthy = views.iter().filter(|v| v.healthy && v.addr.is_some()).count();
    let status = if healthy == views.len() { "ok" } else { "degraded" };
    Response::new(200).with_json(format!(
        "{{\"status\":\"{status}\",\"shards\":{},\"healthy\":{healthy},\
         \"restarts\":{},\"uptime_micros\":{}}}",
        views.len(),
        shared.metrics.total_restarts(),
        shared.started.elapsed().as_micros(),
    ))
}

/// `GET /metrics` at the front: the `sysunc_fleet_*` series followed
/// by every reachable child's exposition summed shard-wise.
fn aggregate_metrics(shared: &Arc<Shared>) -> Response {
    let mut texts: Vec<String> = Vec::new();
    for view in shared.table.views() {
        let Some(addr) = view.addr else { continue };
        if !view.healthy {
            continue;
        }
        let scraped = HttpClient::connect_with_timeout(addr, BACKEND_CONNECT_TIMEOUT)
            .and_then(|mut client| client.get("/metrics"));
        if let Ok(response) = scraped {
            if response.status == 200 {
                texts.push(response.body_text());
            }
        }
    }
    let mut out = shared.metrics.render_text();
    out.push_str(&merge_expositions(&texts));
    Response::new(200).with_text(out)
}
