//! A sharded, capacity-bounded LRU cache of rendered propagation
//! responses, keyed on the canonical request.
//!
//! Every engine is deterministic by `seed`, so a response body is a
//! pure function of the canonical request bytes
//! (`sysunc::CanonicalRequest`): serving a cached body is bit-identical
//! to recomputing it. Entries are keyed on the **full canonical
//! bytes** — the FNV-1a/64 content hash only places a key in a shard,
//! so a hash collision costs a shard neighbour, never a wrong answer.
//!
//! Sharding bounds contention: each shard is an independent
//! `Mutex<HashMap>` with its own LRU clock, and a lookup touches
//! exactly one shard. Eviction is exact LRU per shard — on insert at
//! capacity, the entry with the oldest access tick is dropped.
//!
//! The cache is metrics-agnostic: `get`/`insert` report hit/miss and
//! eviction outcomes through their return values and the caller feeds
//! the server-wide counters, keeping this module unit-testable in
//! isolation.
//!
//! An optional TTL bounds staleness for deployments whose model
//! registry may change between restarts (mutable registries are loaded
//! per process): an entry older than the TTL is treated as a miss and
//! dropped on lookup, so expiry needs no sweeper thread.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One cached response body. `Arc` so a hit is a pointer clone, not a
/// body copy, even while another thread evicts the entry.
type Body = Arc<String>;

struct Entry {
    body: Body,
    /// Shard-clock value of the most recent access.
    last_used: u64,
    /// When the entry was inserted, for TTL expiry.
    created: Instant,
}

struct Shard {
    entries: HashMap<String, Entry>,
    /// Monotonic per-shard access clock backing exact LRU order.
    clock: u64,
}

impl Shard {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }
}

/// Locks a shard, recovering from a poisoned lock: cache state is
/// always internally consistent between mutations, so a panicking
/// sibling thread must not disable caching for everyone else.
fn lock(m: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A sharded LRU response cache keyed on canonical request bytes.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    /// Entries each shard holds before evicting; 0 disables the cache.
    shard_capacity: usize,
    /// Maximum entry age before a lookup treats it as a miss;
    /// `None` means entries never expire.
    ttl: Option<Duration>,
}

impl std::fmt::Debug for ResponseCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResponseCache")
            .field("shards", &self.shards.len())
            .field("shard_capacity", &self.shard_capacity)
            .field("ttl", &self.ttl)
            .field("len", &self.len())
            .finish()
    }
}

impl ResponseCache {
    /// A cache holding at most `capacity` entries split over `shards`
    /// shards (rounded up to the next power of two, clamped to at
    /// least 1, and to `capacity` so no shard has zero slots). A
    /// `capacity` of 0 disables caching entirely: every lookup misses
    /// and inserts are dropped. Entries never expire; see
    /// [`ResponseCache::with_ttl`] for bounded staleness.
    pub fn new(capacity: usize, shards: usize) -> Self {
        Self::with_ttl(capacity, shards, None)
    }

    /// As [`ResponseCache::new`], with entries additionally expiring
    /// `ttl` after insertion: an expired entry is dropped and reported
    /// as a miss by the lookup that finds it, so no sweeper thread is
    /// needed. `None` disables expiry.
    pub fn with_ttl(capacity: usize, shards: usize, ttl: Option<Duration>) -> Self {
        let shards = shards.clamp(1, capacity.max(1)).next_power_of_two();
        let shard_capacity = capacity.div_ceil(shards);
        let shards = (0..shards)
            .map(|_| Mutex::new(Shard { entries: HashMap::new(), clock: 0 }))
            .collect();
        Self { shards, shard_capacity, ttl }
    }

    /// Total entries the cache can hold.
    pub fn capacity(&self) -> usize {
        self.shard_capacity * self.shards.len()
    }

    /// Entries currently cached, across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).entries.len()).sum()
    }

    /// Whether the cache currently holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard(&self, hash: u64) -> Option<&Mutex<Shard>> {
        // Shard count is a power of two, so the mask keeps every
        // hash bit that matters for placement (and the masked index
        // is always in bounds; `get` still never panics if it isn't).
        self.shards.get((hash as usize) & (self.shards.len().wrapping_sub(1)))
    }

    /// Looks up the response cached for `key` (its content hash picks
    /// the shard), refreshing its LRU position on a hit. An entry past
    /// the cache's TTL is dropped and reported as a miss.
    pub fn get(&self, hash: u64, key: &str) -> Option<Body> {
        if self.shard_capacity == 0 {
            return None;
        }
        let mut shard = lock(self.shard(hash)?);
        let tick = shard.tick();
        if let (Some(ttl), Some(entry)) = (self.ttl, shard.entries.get(key)) {
            if entry.created.elapsed() > ttl {
                shard.entries.remove(key);
                return None;
            }
        }
        let entry = shard.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.body))
    }

    /// Caches `body` under `key`, evicting the least recently used
    /// entry of the target shard when it is at capacity. Returns the
    /// number of entries evicted (0 or 1; 0 also covers replacing an
    /// existing key and the disabled cache).
    pub fn insert(&self, hash: u64, key: String, body: Body) -> u64 {
        if self.shard_capacity == 0 {
            return 0;
        }
        let Some(shard) = self.shard(hash) else {
            return 0;
        };
        let mut shard = lock(shard);
        let tick = shard.tick();
        let mut evicted = 0;
        if !shard.entries.contains_key(&key) && shard.entries.len() >= self.shard_capacity {
            let oldest = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone());
            if let Some(oldest) = oldest {
                shard.entries.remove(&oldest);
                evicted = 1;
            }
        }
        shard.entries.insert(key, Entry { body, last_used: tick, created: Instant::now() });
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(s: &str) -> Body {
        Arc::new(s.to_string())
    }

    #[test]
    fn get_returns_exactly_what_was_inserted() {
        let cache = ResponseCache::new(8, 2);
        assert!(cache.get(1, "k1").is_none());
        cache.insert(1, "k1".into(), body("report-1"));
        assert_eq!(cache.get(1, "k1").as_deref().map(String::as_str), Some("report-1"));
        // A different key under the same hash is still a miss: the
        // hash only places, the bytes decide.
        assert!(cache.get(1, "k2").is_none());
    }

    #[test]
    fn lru_eviction_drops_the_least_recently_used_entry() {
        // One shard, two slots, so eviction order is deterministic.
        let cache = ResponseCache::new(2, 1);
        assert_eq!(cache.capacity(), 2);
        assert_eq!(cache.insert(0, "a".into(), body("A")), 0);
        assert_eq!(cache.insert(0, "b".into(), body("B")), 0);
        // Touch `a` so `b` becomes the LRU entry.
        assert!(cache.get(0, "a").is_some());
        assert_eq!(cache.insert(0, "c".into(), body("C")), 1);
        assert!(cache.get(0, "b").is_none(), "LRU entry evicted");
        assert!(cache.get(0, "a").is_some(), "recently used entry kept");
        assert!(cache.get(0, "c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn replacing_an_existing_key_does_not_evict() {
        let cache = ResponseCache::new(2, 1);
        cache.insert(0, "a".into(), body("A"));
        cache.insert(0, "b".into(), body("B"));
        assert_eq!(cache.insert(0, "a".into(), body("A2")), 0, "replacement, not eviction");
        assert_eq!(cache.get(0, "a").as_deref().map(String::as_str), Some("A2"));
        assert!(cache.get(0, "b").is_some());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = ResponseCache::new(0, 4);
        assert_eq!(cache.insert(7, "k".into(), body("x")), 0);
        assert!(cache.get(7, "k").is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 0);
    }

    #[test]
    fn shard_count_is_clamped_and_capacity_never_shrinks() {
        // More shards than capacity must not produce zero-slot shards.
        let cache = ResponseCache::new(3, 16);
        assert!(cache.capacity() >= 3);
        for i in 0..3u64 {
            cache.insert(i, format!("k{i}"), body("x"));
        }
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn expired_entries_miss_and_are_dropped() {
        let cache = ResponseCache::with_ttl(8, 1, Some(Duration::from_millis(30)));
        cache.insert(1, "k".into(), body("fresh"));
        assert!(cache.get(1, "k").is_some(), "young entry hits");
        std::thread::sleep(Duration::from_millis(60));
        assert!(cache.get(1, "k").is_none(), "expired entry misses");
        assert!(cache.is_empty(), "the expired entry was dropped, not kept");
        // Re-inserting after expiry starts a fresh lifetime.
        cache.insert(1, "k".into(), body("again"));
        assert_eq!(cache.get(1, "k").as_deref().map(String::as_str), Some("again"));
    }

    #[test]
    fn no_ttl_means_entries_never_expire() {
        let cache = ResponseCache::with_ttl(8, 1, None);
        cache.insert(1, "k".into(), body("stays"));
        std::thread::sleep(Duration::from_millis(20));
        assert!(cache.get(1, "k").is_some());
    }

    #[test]
    fn concurrent_readers_and_writers_keep_bodies_intact() {
        let cache = Arc::new(ResponseCache::new(64, 8));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let hash = t * 1000 + (i % 10);
                        let key = format!("key-{hash}");
                        let expected = format!("body-{hash}");
                        cache.insert(hash, key.clone(), Arc::new(expected.clone()));
                        if let Some(got) = cache.get(hash, &key) {
                            assert_eq!(*got, expected, "hit must be bit-identical");
                        }
                    }
                });
            }
        });
    }
}
