/root/repo/target/debug/deps/exp_evidential-2b2426f669e45610.d: crates/bench/src/bin/exp_evidential.rs

/root/repo/target/debug/deps/exp_evidential-2b2426f669e45610: crates/bench/src/bin/exp_evidential.rs

crates/bench/src/bin/exp_evidential.rs:
