/root/repo/target/debug/deps/sysunc_tidy-bae273d2d92e1dd8.d: crates/tidy/src/main.rs

/root/repo/target/debug/deps/sysunc_tidy-bae273d2d92e1dd8: crates/tidy/src/main.rs

crates/tidy/src/main.rs:
