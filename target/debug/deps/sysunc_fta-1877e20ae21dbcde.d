/root/repo/target/debug/deps/sysunc_fta-1877e20ae21dbcde.d: crates/fta/src/lib.rs crates/fta/src/common_cause.rs crates/fta/src/convert.rs crates/fta/src/epistemic_importance.rs crates/fta/src/cutset.rs crates/fta/src/dynamic.rs crates/fta/src/error.rs crates/fta/src/tree.rs crates/fta/src/uncertain.rs

/root/repo/target/debug/deps/libsysunc_fta-1877e20ae21dbcde.rmeta: crates/fta/src/lib.rs crates/fta/src/common_cause.rs crates/fta/src/convert.rs crates/fta/src/epistemic_importance.rs crates/fta/src/cutset.rs crates/fta/src/dynamic.rs crates/fta/src/error.rs crates/fta/src/tree.rs crates/fta/src/uncertain.rs

crates/fta/src/lib.rs:
crates/fta/src/common_cause.rs:
crates/fta/src/convert.rs:
crates/fta/src/epistemic_importance.rs:
crates/fta/src/cutset.rs:
crates/fta/src/dynamic.rs:
crates/fta/src/error.rs:
crates/fta/src/tree.rs:
crates/fta/src/uncertain.rs:
