//! Rule `pub-reexport`: every public item of a substrate crate must be
//! reachable from its crate root — and every substrate crate must be
//! re-exported from the `sysunc::` facade.
//!
//! A `pub` item inside a privately-declared module (`mod x;` without
//! `pub`, and no `pub use` pulling the name up) is dead public API:
//! visible in the source, promised by the keyword, unreachable by any
//! caller. That gap between what the code *says* it exports and what it
//! *actually* exports is exactly the kind of self-inflicted epistemic
//! uncertainty the gate exists to remove. The check is cross-file by
//! nature (the item lives in one file, the `mod`/`pub use` declarations
//! in another), so it runs on the [`crate::symbols::Workspace`] table.
//!
//! Reachability is over-approximated on purpose — a name re-exported
//! from *any* module counts, and a glob (`pub use m::*`) covers the
//! whole module — so the rule never accuses reachable code; it only
//! misses exotic dead API. Toolchain crates (`tidy`, `bench`) are not
//! part of the modeling surface and are exempt from the facade check.

use crate::symbols::Workspace;
use crate::{Violation, WorkspaceLint};

/// See the module docs.
pub struct PubReexport;

/// Crates that are not modeling substrate: workspace tooling (`tidy`,
/// `bench`) and layers that sit *above* the facade and depend on it
/// (`serve`), which a `core` re-export would turn into a dependency
/// cycle.
const FACADE_EXEMPT: &[&str] = &["core", "tidy", "bench", "serve"];

/// The facade crate's directory name.
const FACADE: &str = "core";

impl WorkspaceLint for PubReexport {
    fn name(&self) -> &'static str {
        "pub-reexport"
    }

    fn explain(&self) -> &'static str {
        "Every public item of a substrate crate must be reachable from its \
         crate root: through a chain of `pub mod` declarations, a `pub use` \
         re-export of its name, or a glob re-export of its module. A `pub` \
         item in a privately-declared module is dead public API — promised \
         by the keyword, unreachable by any caller — a gap between what the \
         code says it exports and what it actually exports. Additionally, \
         every substrate crate must be re-exported from the `sysunc::` \
         facade so one `use sysunc::…` reaches the whole workspace. \
         Deliberately internal items take `// tidy: allow(pub-reexport)`."
    }

    fn check(&self, ws: &Workspace<'_>, out: &mut Vec<Violation>) {
        for krate in &ws.crates {
            let reexported = krate.reexported_names();
            let globbed = krate.glob_modules();
            for module in &krate.modules {
                if module.path.is_empty() {
                    continue; // root items are reachable by definition
                }
                if krate.is_module_public(&module.path) {
                    continue; // reachable by full path
                }
                if module.path.last().map(|s| globbed.contains(s.as_str())).unwrap_or(false) {
                    continue; // a glob re-export covers the module
                }
                let file = &ws.files[module.file_idx];
                for item in &module.items {
                    if reexported.contains(item.name.as_str()) {
                        continue;
                    }
                    out.push(Violation {
                        file: file.path.clone(),
                        line: item.line,
                        rule: self.name(),
                        message: format!(
                            "public {} `{}` in private module `{}` of crate `{}` is \
                             unreachable from the crate root; re-export it, make \
                             the module `pub`, or drop the `pub`",
                            item.kind,
                            item.name,
                            module.path.join("::"),
                            krate.name
                        ),
                    });
                }
            }
        }

        // Facade coverage: every substrate crate surfaces as a
        // `pub use sysunc_<name> …` somewhere in the facade crate.
        let Some(facade) = ws.crate_named(FACADE) else { return };
        for krate in &ws.crates {
            if FACADE_EXEMPT.contains(&krate.name.as_str()) {
                continue;
            }
            let package = format!("sysunc_{}", krate.name.replace('-', "_"));
            let covered = facade.modules.iter().flat_map(|m| m.reexports.iter()).any(|r| {
                r.path.first().map(|s| s == &package).unwrap_or(false)
            });
            if !covered {
                let file = &ws.files[facade
                    .root()
                    .map(|m| m.file_idx)
                    .unwrap_or(facade.modules[0].file_idx)];
                out.push(Violation {
                    file: file.path.clone(),
                    line: 1,
                    rule: self.name(),
                    message: format!(
                        "substrate crate `{}` is not re-exported from the \
                         `sysunc` facade; add `pub use {package} as {};`",
                        krate.name,
                        krate.name.replace('-', "_")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Workspace;
    use crate::{FileKind, SourceFile};

    fn run(specs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = specs
            .iter()
            .map(|(p, s)| SourceFile::new(*p, *s, FileKind::RustLibrary))
            .collect();
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        PubReexport.check(&ws, &mut out);
        out
    }

    /// A facade fixture covering crate `x`, so only the finding under
    /// test appears.
    const FACADE_LIB: (&str, &str) = ("crates/core/src/lib.rs", "pub use sysunc_x as x;\n");

    #[test]
    fn item_in_private_module_without_reexport_fires() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "mod hidden;\n"),
            ("crates/x/src/hidden.rs", "pub fn lost() {}\n"),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "pub-reexport");
        assert!(out[0].message.contains("lost"));
        assert!(out[0].file.ends_with("hidden.rs"));
    }

    #[test]
    fn pub_mod_chain_reaches_the_item() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "pub mod open;\n"),
            ("crates/x/src/open.rs", "pub fn found() {}\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn name_reexport_reaches_the_item() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "mod hidden;\npub use hidden::Rescued;\n"),
            ("crates/x/src/hidden.rs", "pub struct Rescued;\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn glob_reexport_reaches_the_whole_module() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "mod hidden;\npub use hidden::*;\n"),
            ("crates/x/src/hidden.rs", "pub fn a() {}\npub fn b() {}\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn missing_facade_reexport_fires_on_the_facade() {
        let out = run(&[
            ("crates/core/src/lib.rs", "pub use sysunc_x as x;\n"),
            ("crates/x/src/lib.rs", "pub fn f() {}\n"),
            ("crates/y/src/lib.rs", "pub fn g() {}\n"),
        ]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`y`"));
        assert!(out[0].file.ends_with("crates/core/src/lib.rs"));
    }

    #[test]
    fn toolchain_crates_are_exempt_from_the_facade_check() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "pub fn f() {}\n"),
            ("crates/tidy/src/lib.rs", "pub fn lint() {}\n"),
            ("crates/bench/src/lib.rs", "pub fn measure() {}\n"),
            ("crates/serve/src/lib.rs", "pub fn listen() {}\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }
}
