/root/repo/target/debug/deps/sysunc_suite-5b2aec5f4ae8e7df.d: src/lib.rs

/root/repo/target/debug/deps/libsysunc_suite-5b2aec5f4ae8e7df.rmeta: src/lib.rs

src/lib.rs:
