//! Additional combination rules and conflict diagnostics for mass
//! functions: Murphy's averaging rule (robust under high conflict) and
//! scalar evidence metrics used by the fusion experiments.

use crate::error::{EvidenceError, Result};
use crate::mass::MassFunction;

/// Murphy's combination: average the mass functions, then apply Dempster's
/// rule `n - 1` times to the average. Converges toward the majority
/// opinion and, unlike raw Dempster, is robust to a single conflicting
/// source (Zadeh's paradox).
///
/// # Errors
///
/// Returns [`EvidenceError::InvalidMass`] for empty input,
/// [`EvidenceError::FrameMismatch`] for inconsistent frames, and
/// propagates [`EvidenceError::TotalConflict`] (unreachable for the
/// averaged input unless all masses were degenerate).
pub fn combine_murphy(sources: &[MassFunction]) -> Result<MassFunction> {
    let first = sources.first().ok_or_else(|| {
        EvidenceError::InvalidMass("Murphy combination needs at least one source".into())
    })?;
    if sources.iter().any(|m| m.frame() != first.frame()) {
        return Err(EvidenceError::FrameMismatch);
    }
    // Average the basic probability assignments.
    let n = sources.len() as f64;
    let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for m in sources {
        for (set, mass) in m.focal_elements() {
            *acc.entry(set).or_insert(0.0) += mass / n;
        }
    }
    let average = MassFunction::from_focal(first.frame(), acc.into_iter().collect())?;
    let mut combined = average.clone();
    for _ in 1..sources.len() {
        combined = combined.combine_dempster(&average)?;
    }
    Ok(combined)
}

/// Shannon entropy (nats) of the pignistic transform — a scalar summary of
/// the *decision-level* uncertainty left in the evidence.
pub fn pignistic_entropy(m: &MassFunction) -> f64 {
    sysunc_prob::info::entropy(&m.pignistic())
}

/// The weight of conflict `log(1 / (1 - K))` between two sources
/// (Shafer): zero for agreeing sources, infinite at total conflict.
///
/// # Errors
///
/// Returns [`EvidenceError::FrameMismatch`] for different frames.
pub fn weight_of_conflict(a: &MassFunction, b: &MassFunction) -> Result<f64> {
    let k = a.conflict(b)?;
    if (1.0 - k).abs() < 1e-15 {
        Ok(f64::INFINITY)
    } else {
        Ok(-(1.0 - k).ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mass::Frame;

    fn frame() -> Frame {
        Frame::new(vec!["a", "b", "c"]).unwrap()
    }

    #[test]
    fn murphy_resolves_zadeh_paradox() {
        // Two experts strongly favor a and c, both weakly allow b.
        let f = frame();
        let m1 = MassFunction::from_focal(&f, vec![(0b001, 0.99), (0b010, 0.01)]).unwrap();
        let m2 = MassFunction::from_focal(&f, vec![(0b100, 0.99), (0b010, 0.01)]).unwrap();
        // Dempster's pathological answer: all mass on b.
        let dempster = m1.combine_dempster(&m2).unwrap();
        assert!((dempster.mass(0b010) - 1.0).abs() < 1e-12);
        // Murphy keeps a and c as the leading hypotheses.
        let murphy = combine_murphy(&[m1, m2]).unwrap();
        assert!(murphy.mass(0b001) > 0.4);
        assert!(murphy.mass(0b100) > 0.4);
        assert!(murphy.mass(0b010) < 0.02);
    }

    #[test]
    fn murphy_agrees_with_dempster_for_consonant_sources() {
        let f = frame();
        let m = MassFunction::from_focal(&f, vec![(0b001, 0.6), (0b111, 0.4)]).unwrap();
        let murphy = combine_murphy(&[m.clone(), m.clone()]).unwrap();
        let dempster = m.combine_dempster(&m).unwrap();
        for set in 1u64..8 {
            assert!((murphy.mass(set) - dempster.mass(set)).abs() < 1e-12);
        }
    }

    #[test]
    fn murphy_single_source_is_identity() {
        let f = frame();
        let m = MassFunction::from_focal(&f, vec![(0b011, 0.5), (0b111, 0.5)]).unwrap();
        let out = combine_murphy(&[m.clone()]).unwrap();
        for set in 1u64..8 {
            assert!((out.mass(set) - m.mass(set)).abs() < 1e-12);
        }
        assert!(combine_murphy(&[]).is_err());
    }

    #[test]
    fn conflict_weight_scale() {
        let f = frame();
        let agree = MassFunction::from_focal(&f, vec![(0b001, 1.0)]).unwrap();
        assert_eq!(weight_of_conflict(&agree, &agree).unwrap(), 0.0);
        let disagree = MassFunction::from_focal(&f, vec![(0b010, 1.0)]).unwrap();
        assert_eq!(weight_of_conflict(&agree, &disagree).unwrap(), f64::INFINITY);
        let partial = MassFunction::from_focal(&f, vec![(0b001, 0.5), (0b010, 0.5)]).unwrap();
        let w = weight_of_conflict(&agree, &partial).unwrap();
        assert!(w > 0.0 && w.is_finite());
    }

    #[test]
    fn pignistic_entropy_orders_ignorance() {
        let f = frame();
        let sharp = MassFunction::from_focal(&f, vec![(0b001, 1.0)]).unwrap();
        let vague = MassFunction::vacuous(&f);
        assert!(pignistic_entropy(&sharp) < 1e-12);
        assert!((pignistic_entropy(&vague) - 3.0f64.ln()).abs() < 1e-12);
    }
}
