/root/repo/target/debug/examples/safety_analysis-ab418833c3ccb07c.d: examples/safety_analysis.rs

/root/repo/target/debug/examples/safety_analysis-ab418833c3ccb07c: examples/safety_analysis.rs

examples/safety_analysis.rs:
