/root/repo/target/debug/deps/exp_table1-84f983f44708880b.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-84f983f44708880b: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
