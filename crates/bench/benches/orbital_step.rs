//! Benchmark: N-body integration step cost vs body count,
//! mascon fidelity and integrator order; occupancy-grid ingestion rate.

use sysunc_bench::timing::{BenchmarkId, Criterion};
use sysunc_bench::{criterion_group, criterion_main};
use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::orbital::{
    Body, Integrator, NBodySystem, ObservationChannel, OccupancyGrid, Vec2,
};

fn ring_system(n: usize, mascons: usize) -> NBodySystem {
    let mut bodies = Vec::new();
    for i in 0..n {
        let angle = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
        let pos = Vec2::new(3.0 * angle.cos(), 3.0 * angle.sin());
        let vel = Vec2::new(-angle.sin(), angle.cos()) * 0.4;
        let mut body = Body::point_mass(format!("b{i}"), 1.0 / n as f64, pos, vel).expect("valid");
        if mascons > 0 {
            body = body.with_mascon_ring(mascons, 0.2, 0.3, 1.0).expect("valid");
        }
        bodies.push(body);
    }
    NBodySystem::new(bodies, 1.0).expect("valid")
}

fn bench_orbital(c: &mut Criterion) {
    let mut group = c.benchmark_group("nbody_step");
    for n in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("verlet_pointmass", n), &n, |b, &n| {
            let mut sys = ring_system(n, 0);
            b.iter(|| Integrator::VelocityVerlet.step(&mut sys, 1e-3));
        });
    }
    for mascons in [0usize, 4, 16] {
        group.bench_with_input(BenchmarkId::new("verlet_2body_mascons", mascons), &mascons, |b, &m| {
            let mut sys = ring_system(2, m);
            b.iter(|| Integrator::VelocityVerlet.step(&mut sys, 1e-3));
        });
    }
    for (name, integ) in [
        ("euler", Integrator::SymplecticEuler),
        ("verlet", Integrator::VelocityVerlet),
        ("rk4", Integrator::Rk4),
    ] {
        group.bench_with_input(BenchmarkId::new("integrator_4body", name), &integ, |b, integ| {
            let mut sys = ring_system(4, 0);
            b.iter(|| integ.step(&mut sys, 1e-3));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("observation");
    let channel = ObservationChannel::new(0.05).expect("valid");
    group.bench_function("observe_and_grid_1k", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut grid =
            OccupancyGrid::new(Vec2::new(-4.0, -4.0), Vec2::new(4.0, 4.0), 32, 32).expect("valid");
        b.iter(|| {
            for i in 0..1_000 {
                let p = Vec2::new((i as f64 * 0.01).sin(), (i as f64 * 0.01).cos());
                grid.add(channel.observe(p, &mut rng));
            }
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_orbital
}
criterion_main!(benches);
