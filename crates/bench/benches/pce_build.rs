//! Benchmark: polynomial-chaos construction cost vs dimension
//! and degree, projection vs regression vs sparse projection.

use sysunc_bench::timing::{BenchmarkId, Criterion};
use sysunc_bench::{criterion_group, criterion_main};
use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::pce::{ChaosExpansion, PceInput};

fn model(x: &[f64]) -> f64 {
    x.iter().map(|v| (0.3 * v).sin()).sum::<f64>() + x.iter().product::<f64>()
}

fn bench_pce(c: &mut Criterion) {
    let mut group = c.benchmark_group("pce_build");
        for dim in [2usize, 3, 4] {
        let inputs = vec![PceInput::Uniform { a: -1.0, b: 1.0 }; dim];
        group.bench_with_input(BenchmarkId::new("projection_deg4", dim), &inputs, |b, inp| {
            b.iter(|| ChaosExpansion::fit_projection(inp, 4, model).expect("fits"));
        });
        group.bench_with_input(BenchmarkId::new("sparse_l4_deg4", dim), &inputs, |b, inp| {
            b.iter(|| ChaosExpansion::fit_sparse_projection(inp, 4, 4, model).expect("fits"));
        });
        group.bench_with_input(BenchmarkId::new("regression_deg4", dim), &inputs, |b, inp| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(3);
                let basis = sysunc::pce::multiindex::total_degree_len(inp.len(), 4);
                ChaosExpansion::fit_regression(inp, 4, 3 * basis, &mut rng, model).expect("fits")
            });
        });
    }
    for degree in [2usize, 6, 10] {
        let inputs = vec![PceInput::Normal { mu: 0.0, sigma: 1.0 }; 2];
        group.bench_with_input(
            BenchmarkId::new("projection_dim2", degree),
            &degree,
            |b, &deg| {
                b.iter(|| ChaosExpansion::fit_projection(&inputs, deg, model).expect("fits"));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_pce
}
criterion_main!(benches);
