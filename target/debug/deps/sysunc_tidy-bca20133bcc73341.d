/root/repo/target/debug/deps/sysunc_tidy-bca20133bcc73341.d: crates/tidy/src/main.rs

/root/repo/target/debug/deps/libsysunc_tidy-bca20133bcc73341.rmeta: crates/tidy/src/main.rs

crates/tidy/src/main.rs:
