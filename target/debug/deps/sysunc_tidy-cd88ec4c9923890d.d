/root/repo/target/debug/deps/sysunc_tidy-cd88ec4c9923890d.d: crates/tidy/src/lib.rs crates/tidy/src/rules/mod.rs crates/tidy/src/rules/doc.rs crates/tidy/src/rules/error_impl.rs crates/tidy/src/rules/float_eq.rs crates/tidy/src/rules/manifest.rs crates/tidy/src/rules/panic.rs crates/tidy/src/rules/prob_contract.rs crates/tidy/src/walk.rs

/root/repo/target/debug/deps/libsysunc_tidy-cd88ec4c9923890d.rmeta: crates/tidy/src/lib.rs crates/tidy/src/rules/mod.rs crates/tidy/src/rules/doc.rs crates/tidy/src/rules/error_impl.rs crates/tidy/src/rules/float_eq.rs crates/tidy/src/rules/manifest.rs crates/tidy/src/rules/panic.rs crates/tidy/src/rules/prob_contract.rs crates/tidy/src/walk.rs

crates/tidy/src/lib.rs:
crates/tidy/src/rules/mod.rs:
crates/tidy/src/rules/doc.rs:
crates/tidy/src/rules/error_impl.rs:
crates/tidy/src/rules/float_eq.rs:
crates/tidy/src/rules/manifest.rs:
crates/tidy/src/rules/panic.rs:
crates/tidy/src/rules/prob_contract.rs:
crates/tidy/src/walk.rs:
