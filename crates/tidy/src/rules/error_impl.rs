//! Rule `error-impl`: every public enum declared in a file named
//! `error.rs` must implement both `Display` and `std::error::Error`.
//!
//! Error types that cannot be displayed or boxed as `dyn Error` leak a
//! half-finished failure vocabulary to callers; this rule keeps every
//! crate's error enum a first-class citizen of Rust's error-handling
//! ecosystem.

use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct ErrorImpl;

/// Extracts the enum name from a `pub enum` line, if any.
fn pub_enum_name(line: &str) -> Option<&str> {
    let rest = line.trim_start().strip_prefix("pub enum ")?;
    let end = rest.find(|c: char| !c.is_alphanumeric() && c != '_').unwrap_or(rest.len());
    (end > 0).then(|| &rest[..end])
}

impl Lint for ErrorImpl {
    fn name(&self) -> &'static str {
        "error-impl"
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.path.file_name().map(|n| n != "error.rs").unwrap_or(true) {
            return;
        }
        for (no, line) in file.lines() {
            let Some(name) = pub_enum_name(line) else { continue };
            let display = format!("Display for {name}");
            let error = format!("Error for {name}");
            if !file.content.contains(&display) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: no,
                    rule: self.name(),
                    message: format!("error enum `{name}` does not implement `Display`"),
                });
            }
            if !file.content.contains(&error) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: no,
                    rule: self.name(),
                    message: format!("error enum `{name}` does not implement `std::error::Error`"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::new(path, src, FileKind::RustLibrary);
        let mut out = Vec::new();
        ErrorImpl.check(&file, &mut out);
        out
    }

    #[test]
    fn enum_with_both_impls_passes() {
        let good = "\
pub enum ProbError { Bad }
impl std::fmt::Display for ProbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }
}
impl std::error::Error for ProbError {}
";
        assert!(run("crates/x/src/error.rs", good).is_empty());
    }

    #[test]
    fn missing_impls_fire_one_violation_each() {
        let out = run("crates/x/src/error.rs", "pub enum ProbError { Bad }\n");
        assert_eq!(out.len(), 2);
        assert!(out[0].message.contains("Display"));
        assert!(out[1].message.contains("std::error::Error"));
    }

    #[test]
    fn missing_only_error_impl_fires_once() {
        let partial = "\
pub enum E { X }
impl core::fmt::Display for E {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result { Ok(()) }
}
";
        let out = run("crates/x/src/error.rs", partial);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("std::error::Error"));
    }

    #[test]
    fn files_not_named_error_rs_are_ignored() {
        assert!(run("crates/x/src/lib.rs", "pub enum E { X }\n").is_empty());
    }
}
