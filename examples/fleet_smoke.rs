//! Fleet smoke test: boot a 2-shard process fleet, drive it with
//! concurrent clients, SIGKILL one shard mid-run, and verify the
//! paper's fault-tolerance loop end to end — zero failed requests, a
//! recorded restart, bit-identical routed cache hits, and an
//! aggregated metrics exposition. This is the multi-process path CI
//! exercises (see `ci.sh`); client, router, and supervisor are all
//! in-tree.
//!
//! Spawning shards needs the serve binary on disk: run
//! `cargo build --release -p sysunc-serve` first (CI's tier-1 build
//! provides it), then `cargo run --release --example fleet_smoke`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sysunc::prob::json;
use sysunc::{UncertainInput, WireRequest};
use sysunc_fleet::{Fleet, FleetConfig};
use sysunc_serve::{HttpClient, RetryPolicy};

fn wire(seed: u64) -> WireRequest {
    let mut wire = WireRequest::new(
        "monte-carlo",
        "linear-2x3y",
        vec![
            UncertainInput::Normal { mu: 1.0, sigma: 0.5 },
            UncertainInput::Uniform { a: 0.0, b: 2.0 },
        ],
    );
    wire.budget = 1024;
    wire.seed = seed;
    wire
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Boot: two shards, fast probes so recovery is visible quickly.
    // ------------------------------------------------------------------
    let fleet = Fleet::start(FleetConfig {
        shards: 2,
        probe_interval: Duration::from_millis(25),
        restart_backoff: Duration::from_millis(25),
        request_timeout: Duration::from_secs(30),
        ..FleetConfig::default()
    })?;
    if !fleet.await_healthy(2, Duration::from_secs(10)) {
        return Err("shards did not become healthy".into());
    }
    let addr = fleet.addr();
    println!("== 2-shard fleet on {addr}, shards {:?} ==", fleet.shard_addrs());

    // ------------------------------------------------------------------
    // 2. Load + crash: clients hammer the front while shard 0 dies.
    // ------------------------------------------------------------------
    let completed = Arc::new(AtomicUsize::new(0));
    let (clients, calls) = (4, 10);
    let threads: Vec<_> = (0..clients)
        .map(|t| {
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = HttpClient::connect_with_retry(
                    addr,
                    Duration::from_secs(30),
                    &RetryPolicy::default(),
                )
                .map_err(|e| e.to_string())?;
                for call in 0..calls {
                    let body = json::to_string(&wire((t * 1000 + call) as u64));
                    let response = client
                        .request("POST", "/v1/propagate", Some(&body))
                        .map_err(|e| format!("client {t} call {call}: {e}"))?;
                    if response.status != 200 {
                        return Err(format!(
                            "client {t} call {call}: status {}",
                            response.status
                        ));
                    }
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                Ok(())
            })
        })
        .collect();

    while completed.load(Ordering::Relaxed) < clients {
        std::thread::sleep(Duration::from_millis(5));
    }
    println!("== SIGKILL shard 0 under load ==");
    if !fleet.kill_shard(0) {
        return Err("crash injection found no child in slot 0".into());
    }

    for t in threads {
        t.join().expect("client thread")?;
    }
    let total = completed.load(Ordering::Relaxed);
    println!("clients done: {total}/{} requests ok, 0 failed", clients * calls);
    if total != clients * calls {
        return Err("lost client requests".into());
    }

    // ------------------------------------------------------------------
    // 3. Recovery: the supervisor restarts the shard and records it.
    // ------------------------------------------------------------------
    if !fleet.await_healthy(2, Duration::from_secs(10)) {
        return Err("killed shard was not restarted".into());
    }
    let restarts = fleet.metrics().total_restarts();
    println!("supervisor recorded {restarts} restart(s)");
    if restarts < 1 {
        return Err("restart not recorded".into());
    }

    // ------------------------------------------------------------------
    // 4. Cache locality: a repeated request lands on the same shard
    //    and the hit is bit-identical to the miss.
    // ------------------------------------------------------------------
    let mut client = HttpClient::connect(addr)?;
    let body = json::to_string(&wire(424242));
    let first = client.request("POST", "/v1/propagate", Some(&body))?;
    let second = client.request("POST", "/v1/propagate", Some(&body))?;
    println!(
        "repeat routing: first={} second={}",
        first.header("X-Sysunc-Cache").unwrap_or("?"),
        second.header("X-Sysunc-Cache").unwrap_or("?"),
    );
    if second.header("X-Sysunc-Cache") != Some("hit") || first.body != second.body {
        return Err("hash placement lost cache locality".into());
    }

    // ------------------------------------------------------------------
    // 5. Fleet-wide health and metrics.
    // ------------------------------------------------------------------
    let health = client.get("/healthz")?;
    println!("healthz: {}", health.body_text());
    if health.status != 200 || !health.body_text().contains("\"healthy\":2") {
        return Err("fleet healthz does not report a recovered fleet".into());
    }
    let metrics = client.get("/metrics")?;
    let text = metrics.body_text();
    for series in ["sysunc_fleet_requests_routed_total", "sysunc_http_requests_total"] {
        if !text.contains(series) {
            return Err(format!("aggregated exposition lacks {series}").into());
        }
    }
    println!(
        "metrics: {} fleet + merged child series lines",
        text.lines().filter(|l| !l.starts_with('#') && !l.is_empty()).count()
    );

    fleet.shutdown();
    println!("== fleet drained, smoke test ok ==");
    Ok(())
}
