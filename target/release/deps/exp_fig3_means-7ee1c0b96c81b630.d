/root/repo/target/release/deps/exp_fig3_means-7ee1c0b96c81b630.d: crates/bench/src/bin/exp_fig3_means.rs

/root/repo/target/release/deps/exp_fig3_means-7ee1c0b96c81b630: crates/bench/src/bin/exp_fig3_means.rs

crates/bench/src/bin/exp_fig3_means.rs:
