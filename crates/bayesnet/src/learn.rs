//! CPT learning from observation counts — the Bayesian-network face of
//! uncertainty *removal during use* (paper Sec. IV: "field observation,
//! continuous updates"): field counts sharpen the conditional probability
//! tables, with Dirichlet smoothing carrying the prior knowledge.

use crate::error::{BnError, Result};
use crate::network::BayesNet;

/// Maximum-a-posteriori CPT rows from observation counts with a symmetric
/// Dirichlet(alpha) prior: `p = (count + alpha) / (row_total + k alpha)`.
///
/// `counts[row][state]` are joint observation counts per parent
/// combination (same row ordering as [`BayesNet::add_node`]).
///
/// # Errors
///
/// Returns [`BnError::InvalidNode`] for empty/ragged counts or
/// non-positive `alpha`.
///
/// # Examples
///
/// ```
/// use sysunc_bayesnet::cpt_from_counts;
/// let cpt = cpt_from_counts(&[vec![90, 10], vec![20, 80]], 1.0)?;
/// assert!((cpt[0][0] - 91.0 / 102.0).abs() < 1e-12);
/// # Ok::<(), sysunc_bayesnet::BnError>(())
/// ```
pub fn cpt_from_counts(counts: &[Vec<u64>], alpha: f64) -> Result<Vec<Vec<f64>>> {
    if counts.is_empty() || counts[0].is_empty() {
        return Err(BnError::InvalidNode("cpt_from_counts: empty counts".into()));
    }
    if !(alpha > 0.0) || !alpha.is_finite() {
        return Err(BnError::InvalidNode(format!(
            "cpt_from_counts: alpha must be > 0, got {alpha}"
        )));
    }
    let k = counts[0].len();
    counts
        .iter()
        .map(|row| {
            if row.len() != k {
                return Err(BnError::InvalidNode("cpt_from_counts: ragged counts".into()));
            }
            let total: f64 = row.iter().map(|&c| c as f64).sum::<f64>() + k as f64 * alpha;
            Ok(row.iter().map(|&c| (c as f64 + alpha) / total).collect())
        })
        .collect()
}

impl BayesNet {
    /// Replaces a node's CPT (e.g. with a learned one), re-validating it.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::UnknownNode`] for bad ids and
    /// [`BnError::InvalidNode`] for malformed CPTs.
    pub fn set_cpt(&mut self, node: usize, cpt: Vec<Vec<f64>>) -> Result<()> {
        if node >= self.len() {
            return Err(BnError::UnknownNode(format!("id {node}")));
        }
        let rows = self.nodes()[node].cpt.len();
        let states = self.nodes()[node].states.len();
        if cpt.len() != rows {
            return Err(BnError::InvalidNode(format!(
                "set_cpt: expected {rows} rows, got {}",
                cpt.len()
            )));
        }
        for (i, row) in cpt.iter().enumerate() {
            if row.len() != states {
                return Err(BnError::InvalidNode(format!(
                    "set_cpt: row {i} has {} entries, expected {states}",
                    row.len()
                )));
            }
            if row.iter().any(|&p| p < 0.0 || !p.is_finite()) {
                return Err(BnError::InvalidNode(format!("set_cpt: row {i} has negatives")));
            }
            let total: f64 = row.iter().sum();
            if (total - 1.0).abs() > 1e-9 {
                return Err(BnError::InvalidNode(format!(
                    "set_cpt: row {i} sums to {total}"
                )));
            }
        }
        self.set_cpt_unchecked(node, cpt);
        Ok(())
    }

    /// Blends a node's current CPT (treated as a prior worth
    /// `equivalent_sample_size` observations per row) with new counts —
    /// the continuous-update cycle of the paper's cybernetic loop.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::UnknownNode`] / [`BnError::InvalidNode`] for bad
    /// ids, shapes, or non-positive sample size.
    pub fn update_cpt_with_counts(
        &mut self,
        node: usize,
        counts: &[Vec<u64>],
        equivalent_sample_size: f64,
    ) -> Result<()> {
        if node >= self.len() {
            return Err(BnError::UnknownNode(format!("id {node}")));
        }
        if !(equivalent_sample_size > 0.0) {
            return Err(BnError::InvalidNode(
                "update_cpt_with_counts: sample size must be > 0".into(),
            ));
        }
        let old = self.nodes()[node].cpt.clone();
        if counts.len() != old.len() {
            return Err(BnError::InvalidNode(format!(
                "update_cpt_with_counts: expected {} rows, got {}",
                old.len(),
                counts.len()
            )));
        }
        let mut new_cpt = Vec::with_capacity(old.len());
        for (old_row, count_row) in old.iter().zip(counts) {
            if count_row.len() != old_row.len() {
                return Err(BnError::InvalidNode("update_cpt_with_counts: ragged".into()));
            }
            let n: f64 = count_row.iter().map(|&c| c as f64).sum();
            let total = equivalent_sample_size + n;
            let row: Vec<f64> = old_row
                .iter()
                .zip(count_row)
                .map(|(&p, &c)| (p * equivalent_sample_size + c as f64) / total)
                .collect();
            new_cpt.push(row);
        }
        self.set_cpt_unchecked(node, new_cpt);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_validation() {
        assert!(cpt_from_counts(&[], 1.0).is_err());
        assert!(cpt_from_counts(&[vec![]], 1.0).is_err());
        assert!(cpt_from_counts(&[vec![1, 2], vec![3]], 1.0).is_err());
        assert!(cpt_from_counts(&[vec![1, 2]], 0.0).is_err());
    }

    #[test]
    fn laplace_smoothing() {
        let cpt = cpt_from_counts(&[vec![0, 0]], 1.0).unwrap();
        assert_eq!(cpt[0], vec![0.5, 0.5]);
        let cpt = cpt_from_counts(&[vec![99, 0]], 0.5).unwrap();
        assert!((cpt[0][0] - 99.5 / 100.0).abs() < 1e-12);
        assert!(cpt[0][1] > 0.0, "smoothing keeps impossible-looking states alive");
    }

    #[test]
    fn set_cpt_validation_and_effect() {
        let mut bn = BayesNet::new();
        let a = bn.add_root("a", vec!["x", "y"], vec![0.5, 0.5]).unwrap();
        bn.add_node("b", vec!["u", "v"], vec![a], vec![vec![0.9, 0.1], vec![0.2, 0.8]])
            .unwrap();
        assert!(bn.set_cpt(9, vec![]).is_err());
        assert!(bn.set_cpt(1, vec![vec![1.0, 0.0]]).is_err()); // wrong rows
        assert!(bn.set_cpt(1, vec![vec![0.6, 0.6], vec![0.2, 0.8]]).is_err());
        bn.set_cpt(1, vec![vec![0.7, 0.3], vec![0.3, 0.7]]).unwrap();
        let m = bn.marginal("b", &[]).unwrap();
        assert!((m[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn field_update_converges_to_truth() {
        // Start with a wrong CPT; feed counts drawn from the true one.
        let mut bn = BayesNet::new();
        let a = bn.add_root("a", vec!["x", "y"], vec![0.5, 0.5]).unwrap();
        let b = bn
            .add_node("b", vec!["u", "v"], vec![a], vec![vec![0.5, 0.5], vec![0.5, 0.5]])
            .unwrap();
        // True behavior: (0.9, 0.1) and (0.2, 0.8); 10k observations/row.
        let counts = vec![vec![9_000u64, 1_000], vec![2_000, 8_000]];
        bn.update_cpt_with_counts(b, &counts, 10.0).unwrap();
        let row0 = &bn.nodes()[b].cpt[0];
        assert!((row0[0] - 0.9).abs() < 0.01, "posterior {row0:?}");
        // The prior still matters for small counts.
        let mut bn2 = bn.clone();
        bn2.update_cpt_with_counts(b, &vec![vec![0, 1], vec![0, 0]], 1_000.0).unwrap();
        assert!(bn2.nodes()[b].cpt[0][0] > 0.85, "strong prior resists one observation");
        assert!(bn.update_cpt_with_counts(9, &counts, 1.0).is_err());
        assert!(bn.update_cpt_with_counts(b, &counts, 0.0).is_err());
        assert!(bn.update_cpt_with_counts(b, &vec![vec![1, 2]], 1.0).is_err());
    }

    #[test]
    fn learned_cpt_loads_directly() {
        let counts = vec![vec![80u64, 15, 5], vec![10, 70, 20], vec![5, 5, 90]];
        let cpt = cpt_from_counts(&counts, 1.0).unwrap();
        let mut bn = BayesNet::new();
        let a = bn.add_root("a", vec!["1", "2", "3"], vec![1.0 / 3.0; 3]).unwrap();
        bn.add_node("b", vec!["1", "2", "3"], vec![a], cpt).unwrap();
        let m = bn.marginal("b", &[]).unwrap();
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
