//! Benchmark: Dempster–Shafer operations vs frame size and
//! focal-element count, and p-box arithmetic vs discretization.

use sysunc_bench::timing::{BenchmarkId, Criterion};
use sysunc_bench::{criterion_group, criterion_main};
use sysunc::evidence::{DsStructure, Frame, Interval, MassFunction};
use sysunc::prob::dist::Normal;

fn random_ish_mass(frame: &Frame, focal_count: usize) -> MassFunction {
    // Deterministic pseudo-random focal structure.
    let theta = frame.theta();
    let mut focal = Vec::new();
    let mut total = 0.0;
    for i in 0..focal_count {
        let set = (0x9E3779B97F4A7C15u64.wrapping_mul(i as u64 + 1) & theta).max(1);
        let w = 1.0 / (i + 1) as f64;
        focal.push((set, w));
        total += w;
    }
    let focal = focal.into_iter().map(|(s, w)| (s, w / total)).collect();
    MassFunction::from_focal(frame, focal).expect("valid")
}

fn bench_evidence(c: &mut Criterion) {
    let mut group = c.benchmark_group("dempster_shafer");
    for n in [4usize, 8, 16] {
        let names: Vec<String> = (0..n).map(|i| format!("h{i}")).collect();
        let frame = Frame::new(names).expect("valid");
        let m1 = random_ish_mass(&frame, 12);
        let m2 = random_ish_mass(&frame, 12);
        group.bench_with_input(BenchmarkId::new("combine", n), &(m1.clone(), m2.clone()), |b, (a, bb)| {
            b.iter(|| a.combine_dempster(bb).expect("no total conflict"));
        });
        group.bench_with_input(BenchmarkId::new("belief_all_singletons", n), &m1, |b, m| {
            b.iter(|| {
                (0..n).map(|i| m.belief(1 << i)).sum::<f64>()
            });
        });
        group.bench_with_input(BenchmarkId::new("pignistic", n), &m1, |b, m| {
            b.iter(|| m.pignistic());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("pbox_arithmetic");
        let normal = Normal::new(0.0, 1.0).expect("valid");
    for cells in [20usize, 50, 100] {
        let ds = DsStructure::from_distribution(&normal, cells).expect("valid");
        let other = DsStructure::from_interval(Interval::new(-0.5, 0.5).expect("ordered"));
        group.bench_with_input(BenchmarkId::new("add_then_condense", cells), &ds, |b, ds| {
            b.iter(|| ds.add(&other).expect("valid").condensed(50));
        });
        group.bench_with_input(BenchmarkId::new("self_convolution", cells), &ds, |b, ds| {
            b.iter(|| ds.add(ds).expect("valid"));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(30);
    targets = bench_evidence
}
criterion_main!(benches);
