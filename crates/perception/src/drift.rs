//! Runtime drift monitoring of a deployed classifier — uncertainty
//! *removal during use* applied to the perception chain itself: compare
//! the recent labeled-output distribution against the design-time
//! reference with a chi-square test, and alarm when the deployed behaviour
//! has drifted (sensor aging, domain shift, silent degradation).

use crate::error::{PerceptionError, Result};
use sysunc_prob::htest::chi_square_gof;

/// A windowed drift monitor over a discrete output distribution.
///
/// # Examples
///
/// ```
/// use sysunc_perception::DriftMonitor;
/// let mut mon = DriftMonitor::new(vec![0.9, 0.05, 0.05], 200, 0.01)?;
/// for _ in 0..180 { mon.record(0); }
/// for _ in 0..10 { mon.record(1); }
/// for _ in 0..10 { mon.record(2); }
/// assert!(!mon.drift_detected()?); // matches the reference
/// # Ok::<(), sysunc_perception::PerceptionError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriftMonitor {
    reference: Vec<f64>,
    window: usize,
    alpha: f64,
    /// Ring buffer of recent outputs.
    recent: std::collections::VecDeque<usize>,
}

impl DriftMonitor {
    /// Creates a monitor with a design-time reference distribution, a
    /// sliding window length and a significance level `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`PerceptionError::InvalidClassifier`] for invalid
    /// reference distributions, `window < 2` or `alpha` outside `(0, 1)`.
    pub fn new(reference: Vec<f64>, window: usize, alpha: f64) -> Result<Self> {
        if reference.len() < 2
            || reference.iter().any(|&p| p < 0.0)
            || (reference.iter().sum::<f64>() - 1.0).abs() > 1e-9
        {
            return Err(PerceptionError::InvalidClassifier(
                "drift reference must be a distribution over >= 2 labels".into(),
            ));
        }
        if window < 2 {
            return Err(PerceptionError::InvalidClassifier("window must be >= 2".into()));
        }
        if !(alpha > 0.0 && alpha < 1.0) {
            return Err(PerceptionError::InvalidClassifier(format!(
                "alpha must be in (0,1), got {alpha}"
            )));
        }
        Ok(Self { reference, window, alpha, recent: std::collections::VecDeque::new() })
    }

    /// Records one output label (out-of-range labels are counted in the
    /// last bucket — the monitor's own unknown bin).
    pub fn record(&mut self, label: usize) {
        let label = label.min(self.reference.len() - 1);
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(label);
    }

    /// Number of observations currently in the window.
    pub fn observed(&self) -> usize {
        self.recent.len()
    }

    /// The chi-square goodness-of-fit p-value of the current window
    /// against the reference (1.0 while the window is still filling).
    ///
    /// # Errors
    ///
    /// Propagates statistical-input errors (not expected for a constructed
    /// monitor).
    pub fn p_value(&self) -> Result<f64> {
        if self.recent.len() < self.window {
            return Ok(1.0);
        }
        let mut counts = vec![0u64; self.reference.len()];
        for &l in &self.recent {
            counts[l] += 1;
        }
        let res = chi_square_gof(&counts, &self.reference, 0)
            .map_err(|e| PerceptionError::InvalidClassifier(e.to_string()))?;
        Ok(res.p_value)
    }

    /// Whether drift is detected at the configured significance level.
    ///
    /// # Errors
    ///
    /// See [`DriftMonitor::p_value`].
    pub fn drift_detected(&self) -> Result<bool> {
        Ok(self.p_value()? < self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::ClassifierModel;
    use crate::world::Truth;
    use sysunc_prob::rng::StdRng;
    use sysunc_prob::rng::SeedableRng;

    #[test]
    fn validation() {
        assert!(DriftMonitor::new(vec![1.0], 100, 0.01).is_err());
        assert!(DriftMonitor::new(vec![0.5, 0.4], 100, 0.01).is_err());
        assert!(DriftMonitor::new(vec![0.5, 0.5], 1, 0.01).is_err());
        assert!(DriftMonitor::new(vec![0.5, 0.5], 100, 0.0).is_err());
    }

    #[test]
    fn no_alarm_while_filling_or_matching() {
        let mut mon = DriftMonitor::new(vec![0.5, 0.5], 100, 0.01).unwrap();
        assert_eq!(mon.p_value().unwrap(), 1.0);
        for i in 0..100 {
            mon.record(i % 2);
        }
        assert!(!mon.drift_detected().unwrap());
        assert_eq!(mon.observed(), 100);
    }

    #[test]
    fn alarm_on_shifted_distribution() {
        let mut mon = DriftMonitor::new(vec![0.8, 0.1, 0.1], 300, 0.01).unwrap();
        for i in 0..300 {
            // Heavy drift: the third label dominates.
            mon.record(if i % 3 == 0 { 0 } else { 2 });
        }
        assert!(mon.drift_detected().unwrap());
    }

    #[test]
    fn detects_classifier_degradation_end_to_end() {
        // Design-time reference from the healthy camera; runtime stream
        // from a degraded one.
        let healthy = ClassifierModel::paper_camera().unwrap();
        let degraded = ClassifierModel::new(
            vec!["car".into(), "pedestrian".into()],
            vec![vec![0.6, 0.1, 0.3], vec![0.1, 0.55, 0.35]],
            vec![0.1, 0.1, 0.8],
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        // Reference = P(label | car) of the healthy camera.
        let reference: Vec<f64> = (0..3).map(|l| healthy.likelihood(0, l)).collect();
        let mut mon = DriftMonitor::new(reference, 500, 0.001).unwrap();
        // Phase 1: healthy stream — no alarm.
        for _ in 0..500 {
            mon.record(healthy.classify(Truth::Known(0), &mut rng).label);
        }
        assert!(!mon.drift_detected().unwrap(), "healthy stream must not alarm");
        // Phase 2: degraded stream — alarm.
        for _ in 0..500 {
            mon.record(degraded.classify(Truth::Known(0), &mut rng).label);
        }
        assert!(mon.drift_detected().unwrap(), "degraded stream must alarm");
    }

    #[test]
    fn out_of_range_labels_fold_into_last_bucket() {
        let mut mon = DriftMonitor::new(vec![0.5, 0.5], 10, 0.05).unwrap();
        for _ in 0..10 {
            mon.record(99);
        }
        // All mass in bucket 1 vs reference (0.5, 0.5): strong drift.
        assert!(mon.drift_detected().unwrap());
    }
}
