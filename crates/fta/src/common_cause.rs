//! Common-cause failure modeling (beta-factor method).
//!
//! The paper closes Sec. V-B by noting that dependency modeling "by common
//! parent nodes" identifies "common causes for uncertainties" — the
//! classic reliability counterpart is the beta-factor model: a fraction
//! `β` of each redundant component's failure rate is carried by a shared
//! cause that defeats the redundancy. This module rewrites a group of
//! redundant basic events into independent parts plus an explicit
//! common-cause event, so the standard (independence-assuming) fault tree
//! machinery stays sound.

use crate::error::{FtaError, Result};
use crate::tree::{FaultTree, GateKind, NodeRef};

/// Result of installing a beta-factor common-cause group.
#[derive(Debug, Clone)]
pub struct CommonCauseGroup {
    /// The common-cause basic event shared by the whole group.
    pub common_event: NodeRef,
    /// Per member: an OR gate `independent part ∨ common cause` that
    /// should be used in place of the original event.
    pub member_events: Vec<NodeRef>,
}

/// Installs a beta-factor common-cause group over `n` redundant components
/// with total per-component failure probability `p` and common-cause
/// fraction `beta ∈ [0, 1)`.
///
/// Each member's failure is modeled as `independent(p·(1-β)) ∨ common(p·β)`
/// with a single shared common event, so that:
/// - each member still fails with probability ≈ `p` (exactly
///   `1-(1-p(1-β))(1-pβ)`, equal to `p` to first order);
/// - all members fail together with probability at least `p·β`.
///
/// # Errors
///
/// Returns [`FtaError::InvalidEvent`] for `n == 0`, `p` outside `[0, 1]`,
/// or `beta` outside `[0, 1)`.
///
/// # Examples
///
/// ```
/// use sysunc_fta::{install_common_cause_group, FaultTree, GateKind};
/// let mut ft = FaultTree::new();
/// let group = install_common_cause_group(&mut ft, "sensor", 2, 1e-3, 0.1)?;
/// let top = ft.add_gate("both fail", GateKind::And, group.member_events)?;
/// ft.set_top(top)?;
/// // With β = 0.1 the pair failure is dominated by the common cause
/// // (1e-4), far above the independent product (≈ 8.1e-7).
/// let p = ft.top_probability_exact()?;
/// assert!(p > 0.9e-4 && p < 1.2e-4);
/// # Ok::<(), sysunc_fta::FtaError>(())
/// ```
pub fn install_common_cause_group(
    tree: &mut FaultTree,
    name_prefix: &str,
    n: usize,
    p: f64,
    beta: f64,
) -> Result<CommonCauseGroup> {
    if n == 0 {
        return Err(FtaError::InvalidEvent("common-cause group needs n > 0".into()));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(FtaError::InvalidEvent(format!(
            "component probability must be in [0,1], got {p}"
        )));
    }
    if !(0.0..1.0).contains(&beta) {
        return Err(FtaError::InvalidEvent(format!(
            "beta must be in [0,1), got {beta}"
        )));
    }
    let common =
        tree.add_basic_event(format!("{name_prefix}: common cause"), p * beta)?;
    let mut member_events = Vec::with_capacity(n);
    for i in 0..n {
        let independent = tree.add_basic_event(
            format!("{name_prefix} #{i}: independent failure"),
            p * (1.0 - beta),
        )?;
        let member = tree.add_gate(
            format!("{name_prefix} #{i} fails"),
            GateKind::Or,
            vec![independent, common],
        )?;
        member_events.push(member);
    }
    Ok(CommonCauseGroup { common_event: common, member_events })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        let mut ft = FaultTree::new();
        assert!(install_common_cause_group(&mut ft, "x", 0, 0.1, 0.1).is_err());
        assert!(install_common_cause_group(&mut ft, "x", 2, 1.5, 0.1).is_err());
        assert!(install_common_cause_group(&mut ft, "x", 2, 0.1, 1.0).is_err());
    }

    #[test]
    fn member_probability_is_preserved_to_first_order() {
        let mut ft = FaultTree::new();
        let p = 1e-3;
        let group = install_common_cause_group(&mut ft, "s", 3, p, 0.2).unwrap();
        ft.set_top(group.member_events[0]).unwrap();
        let member_p = ft.top_probability_exact().unwrap();
        assert!((member_p - p).abs() / p < 2e-4, "member p = {member_p}");
    }

    #[test]
    fn beta_floor_on_group_failure() {
        // The all-fail probability cannot drop below p*beta no matter the
        // redundancy depth — the paper's common-cause warning quantified.
        let p = 1e-3;
        let beta = 0.1;
        for n in [2usize, 3, 4] {
            let mut ft = FaultTree::new();
            let group = install_common_cause_group(&mut ft, "s", n, p, beta).unwrap();
            let top = ft.add_gate("all fail", GateKind::And, group.member_events).unwrap();
            ft.set_top(top).unwrap();
            let pf = ft.top_probability_exact().unwrap();
            assert!(pf >= p * beta, "n={n}: {pf} < floor {}", p * beta);
            assert!(pf < p * beta * 1.1, "n={n}: dominated by the common cause");
        }
    }

    #[test]
    fn zero_beta_recovers_independence() {
        let p = 0.01;
        let mut ft = FaultTree::new();
        let group = install_common_cause_group(&mut ft, "s", 2, p, 0.0).unwrap();
        let top = ft.add_gate("both", GateKind::And, group.member_events).unwrap();
        ft.set_top(top).unwrap();
        let pf = ft.top_probability_exact().unwrap();
        assert!((pf - p * p).abs() < 1e-9, "{pf} vs {}", p * p);
    }

    #[test]
    fn diversity_comparison() {
        // Diverse channels (two independent groups) beat same-technology
        // channels (one shared group) at equal per-channel probability.
        let p = 1e-3;
        let beta = 0.1;
        // Same technology: shared common cause.
        let mut same = FaultTree::new();
        let g = install_common_cause_group(&mut same, "cam", 2, p, beta).unwrap();
        let top = same.add_gate("both", GateKind::And, g.member_events).unwrap();
        same.set_top(top).unwrap();
        // Diverse: each channel its own (unshared) common-cause slot, so
        // effectively independent at probability p.
        let mut diverse = FaultTree::new();
        let a = diverse.add_basic_event("cam fails", p).unwrap();
        let b = diverse.add_basic_event("radar fails", p).unwrap();
        let top2 = diverse.add_gate("both", GateKind::And, vec![a, b]).unwrap();
        diverse.set_top(top2).unwrap();
        let p_same = same.top_probability_exact().unwrap();
        let p_div = diverse.top_probability_exact().unwrap();
        assert!(
            p_same > 50.0 * p_div,
            "common cause dominates: {p_same} vs {p_div}"
        );
    }
}
