//! Tier-1 gate: the workspace must pass its own static-analysis lint,
//! `sysunc-tidy`, with zero standing violations. The first test runs
//! the real binary the way CI does, so a regression in either the code
//! base or the lint itself fails the ordinary test suite; the rest
//! exercise the library in-process against the real tree — the JSON
//! findings round-trip through the workspace's own reader, parallel
//! and serial runs agree byte-for-byte, and the cross-file
//! `pub-reexport` rule demonstrably fires when a real re-export is
//! knocked out.

use std::path::Path;
use std::process::Command;

use sysunc::prob::json;
use sysunc_tidy::{check_files, check_files_serial, walk, FileKind, SourceFile};

fn root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn run_tidy(extra: &[&str]) -> (bool, String, String) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--offline", "-p", "sysunc-tidy", "--"])
        .args(extra)
        .arg(root())
        .current_dir(root())
        .output()
        .expect("sysunc-tidy should spawn");
    (
        output.status.success(),
        String::from_utf8_lossy(&output.stdout).into_owned(),
        String::from_utf8_lossy(&output.stderr).into_owned(),
    )
}

#[test]
fn workspace_passes_sysunc_tidy_with_zero_violations() {
    let (ok, stdout, stderr) = run_tidy(&[]);
    assert!(ok, "sysunc-tidy found violations:\n{stdout}\n{stderr}");
    assert!(
        stdout.contains("0 violation(s)"),
        "expected a clean summary, got:\n{stdout}"
    );
    // The gate must actually have scanned the tree, not vacuously passed.
    let scanned: usize = stdout
        .lines()
        .find_map(|l| l.strip_prefix("sysunc-tidy: scanned ")?.split(' ').next()?.parse().ok())
        .expect("summary line present");
    assert!(scanned > 100, "suspiciously few files scanned: {scanned}");
}

#[test]
fn json_findings_parse_with_the_in_tree_reader() {
    let (ok, stdout, stderr) = run_tidy(&["--json"]);
    assert!(ok, "sysunc-tidy --json failed:\n{stdout}\n{stderr}");
    let doc = json::parse(stdout.trim()).expect("findings must be valid JSON");
    assert_eq!(
        doc.get("schema").and_then(json::Json::as_str),
        Some("sysunc-tidy/3"),
        "schema id missing or wrong"
    );
    assert_eq!(doc.get("clean").and_then(json::Json::as_bool), Some(true));
    let scanned =
        doc.get("files_scanned").and_then(json::Json::as_usize).expect("files_scanned");
    assert!(scanned > 100, "suspiciously few files scanned: {scanned}");
    assert_eq!(
        doc.get("violations").and_then(json::Json::as_arr).map(<[json::Json]>::len),
        Some(0)
    );
    // Allowed findings carry the full file/line/rule/resolution/message
    // shape; resolution is one of the four analysis layers.
    let allowed = doc.get("allowed").and_then(json::Json::as_arr).expect("allowed array");
    assert!(!allowed.is_empty(), "the tree has acknowledged exceptions");
    for finding in allowed {
        assert!(finding.get("file").and_then(json::Json::as_str).is_some());
        assert!(finding.get("line").and_then(json::Json::as_u64).is_some());
        assert!(finding.get("rule").and_then(json::Json::as_str).is_some());
        assert!(finding.get("message").and_then(json::Json::as_str).is_some());
        let resolution = finding
            .get("resolution")
            .and_then(json::Json::as_str)
            .expect("every finding carries its resolution provenance");
        assert!(
            matches!(resolution, "token" | "module-graph" | "type-flow" | "cfg"),
            "unknown resolution layer `{resolution}`"
        );
    }
}

#[test]
fn bare_explain_lists_rules_and_unknown_rules_exit_two() {
    // No workspace-root argument here: a bare `--explain` would take a
    // following non-flag token as the rule name.
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".into());
    let output = Command::new(&cargo)
        .args(["run", "--quiet", "--offline", "-p", "sysunc-tidy", "--", "--explain"])
        .current_dir(root())
        .output()
        .expect("sysunc-tidy should spawn");
    assert!(output.status.success(), "bare --explain must exit 0");
    let stdout = String::from_utf8_lossy(&output.stdout);
    for rule in [
        "panic",
        "float-eq",
        "pub-reexport",
        "lock-hygiene",
        "lock-order-cycle",
        "panic-path",
        "unused-allow",
    ] {
        assert!(
            stdout.lines().any(|l| l.starts_with(rule)),
            "listing lacks `{rule}`:\n{stdout}"
        );
    }

    let output = Command::new(cargo)
        .args(["run", "--quiet", "--offline", "-p", "sysunc-tidy", "--", "--explain", "no-such"])
        .current_dir(root())
        .output()
        .expect("sysunc-tidy should spawn");
    assert_eq!(output.status.code(), Some(2), "unknown rule must exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown rule"), "{stderr}");
    assert!(stderr.contains("lock-hygiene"), "stderr lists the known rules: {stderr}");
}

#[test]
fn dump_modules_renders_the_resolved_tree() {
    let (ok, stdout, stderr) = run_tidy(&["--dump-modules"]);
    assert!(ok, "--dump-modules failed:\n{stderr}");
    assert!(stdout.contains("crate prob"), "lists the prob crate:\n{stdout}");
    assert!(stdout.contains("mod (root) [root]"), "marks crate roots:\n{stdout}");
    assert!(stdout.contains("pub use"), "shows re-export edges");
}

#[test]
fn parallel_and_serial_runs_agree_on_the_real_tree() {
    let files = walk::collect(root()).expect("workspace walks");
    let par = check_files(&files);
    let ser = check_files_serial(&files);
    assert_eq!(par, ser, "parallel checking must be deterministic");
}

#[test]
fn pub_reexport_fires_when_a_real_reexport_is_knocked_out() {
    // The live tree keeps every public item reachable, so the rule has
    // nothing to flag; prove it guards that state by removing one real
    // re-export in memory and checking the dead API is caught.
    let mut files = walk::collect(root()).expect("workspace walks");
    let lib = files
        .iter_mut()
        .find(|f| f.path == Path::new("crates/prob/src/lib.rs"))
        .expect("prob crate root present");
    let knocked: String = lib
        .content
        .lines()
        .filter(|l| !l.contains("pub use error::"))
        .map(|l| format!("{l}\n"))
        .collect();
    assert_ne!(knocked, lib.content, "fixture line must exist to knock out");
    *lib = SourceFile::new(lib.path.clone(), knocked, FileKind::RustLibrary);
    let report = check_files(&files);
    let hits: Vec<_> =
        report.violations.iter().filter(|v| v.rule == "pub-reexport").collect();
    assert!(
        hits.iter().any(|v| v.message.contains("ProbError")),
        "expected `ProbError` to become unreachable, got: {hits:?}"
    );
    assert!(hits.iter().all(|v| v.file == Path::new("crates/prob/src/error.rs")));
}

#[test]
fn dead_pub_use_chain_seeded_into_the_real_tree_is_caught() {
    // Seed the real prob crate with a module whose only re-export chain
    // stops short of the root: `seeded_dead` re-exports `inner::SeededSecret`,
    // but `mod seeded_dead;` is private and nothing re-exports it
    // upward. The pre-resolver rule name-matched re-exports from *any*
    // module, saw "SeededSecret is re-exported somewhere", and stayed
    // silent; root-reachability catches it.
    let mut files = walk::collect(root()).expect("workspace walks");
    let lib = files
        .iter_mut()
        .find(|f| f.path == Path::new("crates/prob/src/lib.rs"))
        .expect("prob crate root present");
    let seeded = format!("{}mod seeded_dead;\n", lib.content);
    *lib = SourceFile::new(lib.path.clone(), seeded, FileKind::RustLibrary);
    files.push(SourceFile::new(
        "crates/prob/src/seeded_dead.rs",
        "//! Seeded fixture.\nmod inner;\npub use inner::SeededSecret;\n",
        FileKind::RustLibrary,
    ));
    files.push(SourceFile::new(
        "crates/prob/src/seeded_dead/inner.rs",
        "//! Seeded fixture.\n/// Never reachable.\npub struct SeededSecret;\n",
        FileKind::RustLibrary,
    ));
    let report = check_files(&files);
    let hits: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule == "pub-reexport" && v.message.contains("SeededSecret"))
        .collect();
    assert!(!hits.is_empty(), "dead pub use chain must be caught");
    assert!(hits.iter().all(|v| v.resolution == "module-graph"));
}

#[test]
fn root_reachable_glob_reexport_seeded_into_the_real_tree_stays_clean() {
    // The inverse seeding: a private module whose items reach the root
    // through a glob re-export. The pre-resolver rule matched glob
    // paths only textually and flagged exactly this shape; the module
    // graph proves reachability and stays silent.
    let mut files = walk::collect(root()).expect("workspace walks");
    let lib = files
        .iter_mut()
        .find(|f| f.path == Path::new("crates/prob/src/lib.rs"))
        .expect("prob crate root present");
    let seeded = format!("{}mod seeded_live;\npub use seeded_live::*;\n", lib.content);
    *lib = SourceFile::new(lib.path.clone(), seeded, FileKind::RustLibrary);
    files.push(SourceFile::new(
        "crates/prob/src/seeded_live.rs",
        "//! Seeded fixture.\n/// Reachable through the glob.\npub struct SeededGlob;\n",
        FileKind::RustLibrary,
    ));
    let report = check_files(&files);
    let hits: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.message.contains("SeededGlob") || v.message.contains("seeded_live"))
        .collect();
    assert!(hits.is_empty(), "glob-reachable items are not dead API, got: {hits:?}");
}

#[test]
fn lock_hygiene_fires_on_a_seeded_fixture() {
    let files = vec![SourceFile::new(
        "crates/x/src/lib.rs",
        "//! Fixture.\n\
         use std::sync::Mutex;\n\
         /// Unwraps the lock, then sleeps on it.\n\
         pub fn bad(m: &Mutex<u32>) -> u32 {\n\
             let g = m.lock().unwrap();\n\
             std::thread::sleep(std::time::Duration::from_millis(1));\n\
             *g\n\
         }\n",
        FileKind::RustLibrary,
    )];
    let report = check_files(&files);
    let hits: Vec<_> =
        report.violations.iter().filter(|v| v.rule == "lock-hygiene").collect();
    assert_eq!(hits.len(), 2, "unwrap + guard-across-sleep, got: {hits:?}");
    // The unwrapped acquisition is a token-level fact; the guard being
    // live across the sleep is established on the CFG.
    assert!(
        hits.iter()
            .any(|v| v.resolution == "token" && v.message.contains("unwrap")),
        "{hits:?}"
    );
    assert!(
        hits.iter()
            .any(|v| v.resolution == "cfg" && v.message.contains("still live across")),
        "{hits:?}"
    );
}

#[test]
fn lock_hygiene_ignores_guards_gone_before_the_blocking_call() {
    // The CFG regression the rewrite exists for: the guard is returned
    // on one path and moved away on the other, so no path reaches the
    // blocking `join` with the guard live. The old per-scope scan
    // flagged exactly this shape.
    let files = vec![SourceFile::new(
        "crates/x/src/lib.rs",
        "//! Fixture.\n\
         use std::sync::{Mutex, MutexGuard};\n\
         /// Consumes the guard, releasing the lock.\n\
         fn consume(_g: MutexGuard<'_, u32>) {}\n\
         /// Early return on one path, explicit hand-off on the other.\n\
         pub fn drain(m: &Mutex<u32>, h: std::thread::JoinHandle<u32>) -> u32 {\n\
             let g = m.lock().unwrap_or_else(|e| e.into_inner());\n\
             if *g > 0 {\n\
                 return *g;\n\
             }\n\
             consume(g);\n\
             h.join().unwrap_or(0)\n\
         }\n",
        FileKind::RustLibrary,
    )];
    let report = check_files(&files);
    let hits: Vec<_> =
        report.violations.iter().filter(|v| v.rule == "lock-hygiene").collect();
    assert!(hits.is_empty(), "no path holds the guard across `join`, got: {hits:?}");
}

#[test]
fn lock_order_cycle_fires_when_two_fns_acquire_in_opposite_orders() {
    let files = vec![SourceFile::new(
        "crates/x/src/lib.rs",
        "//! Fixture.\n\
         use std::sync::Mutex;\n\
         /// Takes `a` then `b`.\n\
         pub fn ab(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {\n\
             let ga = a.lock().unwrap_or_else(|e| e.into_inner());\n\
             let gb = b.lock().unwrap_or_else(|e| e.into_inner());\n\
             *ga + *gb\n\
         }\n\
         /// Takes `b` then `a` — the opposite order.\n\
         pub fn ba(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {\n\
             let gb = b.lock().unwrap_or_else(|e| e.into_inner());\n\
             let ga = a.lock().unwrap_or_else(|e| e.into_inner());\n\
             *ga + *gb\n\
         }\n",
        FileKind::RustLibrary,
    )];
    let report = check_files(&files);
    let hits: Vec<_> =
        report.violations.iter().filter(|v| v.rule == "lock-order-cycle").collect();
    assert_eq!(hits.len(), 1, "one cycle, reported once, got: {hits:?}");
    assert_eq!(hits[0].resolution, "cfg");
    assert!(hits[0].message.contains("acquisition-order cycle"), "{hits:?}");
    assert!(hits[0].message.contains('a') && hits[0].message.contains('b'), "{hits:?}");
}

#[test]
fn panic_path_walks_call_edges_from_serve_entry_points() {
    // `handle_request` itself is panic-free; the unwrap sits one call
    // edge away in a private helper, so only the call graph finds it.
    let files = vec![
        SourceFile::new(
            "crates/serve/src/lib.rs",
            "//! Fixture serve crate.\npub mod server;\n",
            FileKind::RustLibrary,
        ),
        SourceFile::new(
            "crates/serve/src/server.rs",
            "//! Fixture.\n\
             /// Handles one request.\n\
             pub fn handle_request(body: &str) -> usize { decode(body) }\n\
             /// Decodes a body.\n\
             fn decode(body: &str) -> usize { body.parse().unwrap() }\n\
             /// Never called from an entry point.\n\
             pub fn offline_tool(body: &str) -> usize { body.parse().unwrap() }\n",
            FileKind::RustLibrary,
        ),
    ];
    let report = check_files(&files);
    let hits: Vec<_> =
        report.violations.iter().filter(|v| v.rule == "panic-path").collect();
    assert_eq!(hits.len(), 1, "only the reachable unwrap, got: {hits:?}");
    assert_eq!(hits[0].resolution, "cfg");
    assert!(
        hits[0].message.contains("handle_request → decode"),
        "message names the call path: {hits:?}"
    );
}

#[test]
fn cfg_invariants_hold_over_randomized_bodies() {
    use sysunc::prob::propcheck;
    use sysunc_tidy::{cfg, resolve};

    // Grow a random statement sequence from control-flow templates;
    // depth-bounded so nesting terminates.
    fn gen_stmts(g: &mut propcheck::Gen, depth: usize, out: &mut String) {
        let n = g.usize_in(0, 4);
        for _ in 0..n {
            let choice = if depth == 0 { g.usize_in(0, 3) } else { g.usize_in(0, 8) };
            match choice {
                0 => out.push_str("let x = probe();\n"),
                1 => out.push_str("tick();\n"),
                2 => out.push_str("return;\n"),
                3 => {
                    out.push_str("if probe() {\n");
                    gen_stmts(g, depth - 1, out);
                    out.push_str("} else {\n");
                    gen_stmts(g, depth - 1, out);
                    out.push_str("}\n");
                }
                4 => {
                    out.push_str("while probe() {\n");
                    gen_stmts(g, depth - 1, out);
                    out.push_str("}\n");
                }
                5 => {
                    out.push_str("loop {\n");
                    gen_stmts(g, depth - 1, out);
                    out.push_str("break;\n}\n");
                }
                6 => {
                    out.push_str("match probe() {\ntrue => {\n");
                    gen_stmts(g, depth - 1, out);
                    out.push_str("}\nfalse => {\n");
                    gen_stmts(g, depth - 1, out);
                    out.push_str("}\n}\n");
                }
                _ => {
                    out.push_str("for _i in 0..4 {\n");
                    gen_stmts(g, depth - 1, out);
                    out.push_str("continue;\n}\n");
                }
            }
        }
    }

    // Imperative recursive generation fits `gen_with` better than the
    // combinator strategies; it generates whole bodies with no shrink.
    propcheck::check(
        "cfg_invariants_hold_over_randomized_bodies",
        64,
        propcheck::gen_with(|g| {
            let mut body = String::from("//! Fixture.\npub fn f() {\n");
            gen_stmts(g, 3, &mut body);
            body.push_str("}\n");
            body
        }),
        |body| {
        let file = SourceFile::new("crates/x/src/lib.rs", body.clone(), FileKind::RustLibrary);
        let facts = resolve::parse_facts(&file);
        let f = facts.fns.first().expect("fixture declares one fn");
        let graph = cfg::build(&file, f.body.expect("fixture fn has a body"));

        // No dangling edges: every successor indexes a real block.
        for (bi, block) in graph.blocks.iter().enumerate() {
            for &s in &block.succs {
                assert!(s < graph.blocks.len(), "block {bi} has dangling edge {s}\n{body}");
            }
        }
        // Every block is reachable from the entry block.
        let mut seen = vec![false; graph.blocks.len()];
        let mut queue = vec![0usize];
        seen[0] = true;
        while let Some(b) = queue.pop() {
            for &s in &graph.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    queue.push(s);
                }
            }
        }
        assert!(
            seen.iter().all(|&r| r),
            "unreachable block survived pruning\n{body}"
        );
        // The exit block, when present, is terminal.
        if let Some(exit) = graph.exit {
            assert!(graph.blocks[exit].succs.is_empty(), "exit has successors\n{body}");
        }
    });
}

#[test]
fn float_eq_type_flow_fires_for_all_three_sources() {
    // One fixture per flow source: a float parameter, a float-returning
    // call (defined in a *different* file), and an inferred float let.
    let files = vec![
        SourceFile::new(
            "crates/x/src/lib.rs",
            "//! Fixture.\n\
             pub mod measure;\n\
             /// Parameter-typed flow.\n\
             pub fn param(a: f64, b: f64) -> bool { a == b }\n\
             /// Call-result flow; `reading` lives in measure.rs.\n\
             pub fn call(t: u64) -> bool { measure::reading(t) == measure::reading(t + 1) }\n\
             /// Inferred-let flow.\n\
             pub fn local(flag: bool) -> bool {\n\
                 let x = 0.5;\n\
                 let y = if flag { x } else { x };\n\
                 x == y\n\
             }\n",
            FileKind::RustLibrary,
        ),
        SourceFile::new(
            "crates/x/src/measure.rs",
            "//! Fixture.\n/// A reading.\npub fn reading(_t: u64) -> f64 { 0.0 }\n",
            FileKind::RustLibrary,
        ),
    ];
    let report = check_files(&files);
    let hits: Vec<_> = report.violations.iter().filter(|v| v.rule == "float-eq").collect();
    assert_eq!(hits.len(), 3, "one finding per flow source, got: {hits:?}");
    assert!(hits.iter().all(|v| v.resolution == "type-flow"));
    assert!(hits.iter().any(|v| v.message.contains("parameter-typed")), "{hits:?}");
    assert!(hits.iter().any(|v| v.message.contains("reading")), "{hits:?}");
    assert!(hits.iter().any(|v| v.message.contains("literal-inferred")), "{hits:?}");
}

#[test]
fn former_textual_false_positives_do_not_fire() {
    // Regression fixtures for the line-heuristic gate's false-positive
    // classes: forbidden constructs inside string literals, comparisons
    // in doc comments, braces inside strings around `#[cfg(test)]`.
    let files = vec![
        SourceFile::new(
            "crates/x/src/lib.rs",
            "//! Fixture crate root.\npub mod fixture;\n",
            FileKind::RustLibrary,
        ),
        SourceFile::new(
            "crates/x/src/fixture.rs",
            "//! Notes: `x == 0.5` is what the float-eq rule forbids.\n\
             /// Also prose: calling `.unwrap()` panics.\n\
             pub fn shipped() -> &'static str { \"s.unwrap() == 0.5 panic!\" }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 const BRACES: &str = \"}}}\";\n\
                 fn t() { shipped().unwrap(); }\n\
             }\n",
            FileKind::RustLibrary,
        ),
    ];
    let report = check_files(&files);
    assert!(
        report.violations.is_empty() && report.allowed.is_empty(),
        "fixture should be clean, got: {:?}",
        report.violations
    );
}
