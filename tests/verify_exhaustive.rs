//! Bounded-exhaustive verification tier (Kani-style, without Kani):
//! instead of sampling the input space, these harnesses enumerate it
//! completely for small bounds — all `2^n` basic-event assignments of a
//! structured fault-tree corpus, every request in a finite wire
//! universe, every byte string up to length 2 — and check the claims
//! the property tier only samples.
//!
//! The tests are `#[ignore]`-gated: they are exhaustive loops that
//! belong in a release build, not in the default debug `cargo test`.
//! `ci.sh`'s verify tier runs them with
//! `cargo test --release --test verify_exhaustive -- --ignored`.

use std::collections::{BTreeSet, HashMap, HashSet};

use sysunc::fta::{minimal_cut_sets, FaultTree, GateKind};
use sysunc::prob::json::{self, FromJson};
use sysunc::{fnv1a64, CanonicalRequest, UncertainInput, WireRequest, ENGINE_NAMES};

// ------------------------------------------------------------------
// Fault trees: 2^n enumeration versus MOCUS.
// ------------------------------------------------------------------

const KINDS: [GateKind; 3] = [GateKind::And, GateKind::Or, GateKind::KOfN(2)];

/// The structured corpus: every combination of three gate kinds in a
/// two-level tree over six basic events, once with disjoint subtrees
/// and once with a shared event — `27 × 2 = 54` trees.
fn tree_corpus() -> Vec<FaultTree> {
    let mut corpus = Vec::new();
    for top_kind in KINDS {
        for left_kind in KINDS {
            for right_kind in KINDS {
                for shared in [false, true] {
                    let mut tree = FaultTree::new();
                    let events: Vec<_> = (0..6)
                        .map(|i| {
                            tree.add_basic_event(format!("e{i}"), 0.05 + 0.03 * i as f64)
                                .expect("valid event")
                        })
                        .collect();
                    let left = tree
                        .add_gate(
                            "left",
                            left_kind,
                            vec![events[0], events[1], events[2]],
                        )
                        .expect("valid gate");
                    let right_members = if shared {
                        vec![events[2], events[3], events[4]]
                    } else {
                        vec![events[3], events[4], events[5]]
                    };
                    let right =
                        tree.add_gate("right", right_kind, right_members).expect("valid gate");
                    let top =
                        tree.add_gate("top", top_kind, vec![left, right]).expect("valid gate");
                    tree.set_top(top).expect("top exists");
                    corpus.push(tree);
                }
            }
        }
    }
    corpus
}

fn failed_vec(mask: u32, n: usize) -> Vec<bool> {
    (0..n).map(|i| mask & (1 << i) != 0).collect()
}

/// Enumerates all `2^6` assignments of every corpus tree and derives
/// the minimal failing subsets directly from the structure function
/// (monotone gates: a failing set is minimal iff dropping any single
/// member stops the failure). That ground truth must equal MOCUS.
#[test]
#[ignore = "exhaustive verify tier: run via ci.sh (release, --ignored)"]
fn mocus_cut_sets_equal_the_enumerated_minimal_failing_subsets() {
    for (t, tree) in tree_corpus().iter().enumerate() {
        let n = 6;
        let mut ground_truth: BTreeSet<BTreeSet<usize>> = BTreeSet::new();
        for mask in 0u32..1 << n {
            let failed = failed_vec(mask, n);
            if !tree.structure_function(&failed).expect("evaluates") {
                continue;
            }
            let minimal = (0..n).filter(|i| mask & (1 << i) != 0).all(|i| {
                let mut without = failed.clone();
                without[i] = false;
                !tree.structure_function(&without).expect("evaluates")
            });
            if minimal {
                ground_truth
                    .insert((0..n).filter(|i| mask & (1 << i) != 0).collect::<BTreeSet<_>>());
            }
        }
        let mocus: BTreeSet<BTreeSet<usize>> = minimal_cut_sets(tree)
            .expect("analyzable tree")
            .into_iter()
            .map(|cut| cut.into_iter().collect())
            .collect();
        assert_eq!(
            mocus, ground_truth,
            "tree #{t}: MOCUS disagrees with the 2^n enumeration"
        );

        // Completeness the other way: an assignment fails iff it
        // contains some cut set — the defining equivalence.
        for mask in 0u32..1 << n {
            let failed = failed_vec(mask, n);
            let fails = tree.structure_function(&failed).expect("evaluates");
            let covered = mocus
                .iter()
                .any(|cut| cut.iter().all(|&i| mask & (1 << i) != 0));
            assert_eq!(fails, covered, "tree #{t}, assignment {mask:#08b}");
        }
    }
}

/// `top_probability_exact` must match two independent routes: a direct
/// enumeration over assignments of the structure function, and
/// inclusion–exclusion over the MOCUS cut sets.
#[test]
#[ignore = "exhaustive verify tier: run via ci.sh (release, --ignored)"]
fn exact_top_probability_matches_enumeration_and_inclusion_exclusion() {
    for (t, tree) in tree_corpus().iter().enumerate() {
        let n = 6;
        let probs: Vec<f64> = (0..n).map(|i| 0.05 + 0.03 * i as f64).collect();
        let exact = tree.top_probability_exact().expect("small tree");

        let mut enumerated = 0.0;
        for mask in 0u32..1 << n {
            let failed = failed_vec(mask, n);
            if tree.structure_function(&failed).expect("evaluates") {
                let weight: f64 = (0..n)
                    .map(|i| if failed[i] { probs[i] } else { 1.0 - probs[i] })
                    .product();
                enumerated += weight;
            }
        }
        assert!(
            (exact - enumerated).abs() < 1e-12,
            "tree #{t}: exact {exact} vs enumerated {enumerated}"
        );

        let cuts = minimal_cut_sets(tree).expect("analyzable tree");
        let mut inclusion_exclusion = 0.0;
        for selector in 1u32..1 << cuts.len() {
            let union: BTreeSet<usize> = cuts
                .iter()
                .enumerate()
                .filter(|(c, _)| selector & (1 << c) != 0)
                .flat_map(|(_, cut)| cut.iter().copied())
                .collect();
            let term: f64 = union.iter().map(|&i| probs[i]).product();
            if selector.count_ones() % 2 == 1 {
                inclusion_exclusion += term;
            } else {
                inclusion_exclusion -= term;
            }
        }
        assert!(
            (exact - inclusion_exclusion).abs() < 1e-9,
            "tree #{t}: exact {exact} vs inclusion-exclusion {inclusion_exclusion}"
        );
    }
}

// ------------------------------------------------------------------
// Canonical JSON and content hashing over an enumerated universe.
// ------------------------------------------------------------------

/// Every request in a finite wire universe: engines × models ×
/// budgets × seeds × thresholds × input sets.
fn request_universe() -> Vec<WireRequest> {
    let models = ["sum", "linear-2x3y", "product", "orbital-period", "orbital-energy"];
    let input_sets: [Vec<UncertainInput>; 2] = [
        vec![
            UncertainInput::Normal { mu: 1.0, sigma: 0.5 },
            UncertainInput::Uniform { a: 0.0, b: 2.0 },
        ],
        vec![
            UncertainInput::Exponential { rate: 1.5 },
            UncertainInput::Beta { alpha: 2.0, beta: 3.0 },
            UncertainInput::Interval { lo: -1.0, hi: 1.0 },
        ],
    ];
    let mut universe = Vec::new();
    for engine in ENGINE_NAMES {
        for model in models {
            for inputs in &input_sets {
                for budget in [1usize, 4096] {
                    for seed in [0u64, 2020] {
                        for threshold in [None, Some(0.5)] {
                            let mut wire = WireRequest::new(*engine, model, inputs.clone());
                            wire.budget = budget;
                            wire.seed = seed;
                            wire.threshold = threshold;
                            universe.push(wire);
                        }
                    }
                }
            }
        }
    }
    universe
}

/// Canonicalization must be idempotent (canonical bytes decode and
/// re-canonicalize to themselves), spelling-invariant (a `to_string`
/// round trip lands on the same bytes), and collision-free across the
/// whole universe: distinct requests get distinct bytes AND distinct
/// FNV-1a/64 hashes.
#[test]
#[ignore = "exhaustive verify tier: run via ci.sh (release, --ignored)"]
fn canonical_json_is_idempotent_and_collision_free_over_the_universe() {
    let universe = request_universe();
    assert_eq!(universe.len(), 400, "the whole universe is enumerated");
    let mut by_bytes: HashMap<String, usize> = HashMap::new();
    let mut by_hash: HashMap<u64, usize> = HashMap::new();
    for (i, wire) in universe.iter().enumerate() {
        let canonical = CanonicalRequest::from_wire(wire).expect("known engine");

        // Idempotence: the canonical bytes are themselves a valid
        // request spelling that canonicalizes to the same bytes.
        let reparsed =
            WireRequest::from_json(&json::parse(canonical.bytes()).expect("canonical is JSON"))
                .expect("canonical bytes decode");
        let again = CanonicalRequest::from_wire(&reparsed).expect("same engine");
        assert_eq!(canonical.bytes(), again.bytes(), "request #{i}: idempotent");
        assert_eq!(canonical.content_hash(), again.content_hash());

        // Spelling invariance through the ordinary encoder.
        let respelled =
            WireRequest::from_json(&json::parse(&json::to_string(wire)).expect("valid JSON"))
                .expect("round trip decodes");
        assert_eq!(
            canonical.bytes(),
            CanonicalRequest::from_wire(&respelled).expect("same engine").bytes(),
            "request #{i}: to_string round trip is canonical-equal"
        );

        // Collision-freedom across the enumerated universe.
        if let Some(previous) = by_bytes.insert(canonical.bytes().to_string(), i) {
            panic!("requests #{previous} and #{i} share canonical bytes");
        }
        if let Some(previous) = by_hash.insert(canonical.content_hash(), i) {
            panic!("requests #{previous} and #{i} collide on the content hash");
        }
    }
}

/// FNV-1a/64 is injective on every byte string of length ≤ 2 — all
/// 65 793 inputs hash distinctly — and matches its defining fold.
#[test]
#[ignore = "exhaustive verify tier: run via ci.sh (release, --ignored)"]
fn fnv1a64_is_collision_free_on_all_inputs_up_to_two_bytes() {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let reference = |bytes: &[u8]| {
        bytes
            .iter()
            .fold(OFFSET, |h, &b| (h ^ u64::from(b)).wrapping_mul(PRIME))
    };

    let mut seen: HashSet<u64> = HashSet::new();
    let mut check = |bytes: &[u8]| {
        let hash = fnv1a64(bytes);
        assert_eq!(hash, reference(bytes), "defining fold for {bytes:?}");
        assert!(seen.insert(hash), "collision at {bytes:?}");
    };
    check(&[]);
    for a in 0u16..256 {
        check(&[a as u8]);
    }
    for a in 0u16..256 {
        for b in 0u16..256 {
            check(&[a as u8, b as u8]);
        }
    }
    assert_eq!(seen.len(), 1 + 256 + 256 * 256);
}
