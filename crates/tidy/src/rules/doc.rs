//! Rule `doc`: public items declared in a crate's `lib.rs` must carry
//! doc comments. The crate root is each crate's front door; an
//! undocumented public item there is an API whose meaning the caller
//! must guess — unnecessary epistemic uncertainty at the boundary.
//!
//! Scope is deliberately `lib.rs` only: submodule items surface through
//! documented re-exports, and policing every file would mostly generate
//! noise. `pub use` re-exports and `pub mod x;` declarations are exempt
//! (the module file opens with its own `//!` docs).

use crate::lexer::TokenKind;
use crate::rules::doc_comments_above;
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct DocCoverage;

/// Item keywords whose `pub` declarations require docs.
const ITEM_KINDS: &[&str] =
    &["fn", "struct", "enum", "trait", "const", "static", "type", "mod", "union"];

/// If the tokens at `i` start a documentable `pub <kind> <name>`
/// declaration, returns `(kind, name, inline_mod)`.
fn pub_item_at(file: &SourceFile, i: usize) -> Option<(&'static str, String, bool)> {
    let mut c = file.cursor();
    c.seek(i);
    if !c.eat_ident("pub") {
        return None;
    }
    c.skip_comments();
    if c.at_punct("(") {
        // Restricted visibility is not public API; no doc required.
        return None;
    }
    let kind = loop {
        let word = c.eat_any_ident()?;
        match word {
            "unsafe" | "async" | "default" => continue,
            "extern" => {
                c.skip_comments();
                if matches!(c.peek().map(|t| t.kind), Some(TokenKind::Str | TokenKind::RawStr)) {
                    c.bump();
                }
                continue;
            }
            "const" => {
                c.skip_comments();
                if c.at_ident("fn") {
                    c.bump();
                    break "fn";
                }
                break "const";
            }
            "static" => {
                c.skip_comments();
                if c.at_ident("mut") {
                    c.bump();
                }
                break "static";
            }
            w => break ITEM_KINDS.iter().find(|k| **k == w).copied()?,
        }
    };
    let name = c.eat_any_ident()?;
    // `pub mod x;` is exempt (the module file carries `//!` docs);
    // `pub mod x { … }` declares items here and needs docs here.
    let inline_mod = kind == "mod" && {
        c.skip_comments();
        !c.at_punct(";")
    };
    if kind == "mod" && !inline_mod {
        return None;
    }
    Some((kind, name.to_string(), inline_mod))
}

impl Lint for DocCoverage {
    fn name(&self) -> &'static str {
        "doc"
    }

    fn explain(&self) -> &'static str {
        "Public items declared in a crate's `lib.rs` must carry `///` doc \
         comments. The crate root is the crate's front door; an undocumented \
         public item there is an API whose meaning the caller must guess — \
         unnecessary epistemic uncertainty at the boundary. Scope is lib.rs \
         only: submodule items surface through documented re-exports, `pub \
         use` is exempt, and `pub mod x;` is exempt because the module file \
         opens with its own `//!` docs."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.path.file_name().map(|n| n != "lib.rs").unwrap_or(true) {
            return;
        }
        for (i, t) in file.tokens().iter().enumerate() {
            if t.kind != TokenKind::Ident
                || file.text(t) != "pub"
                || file.in_test_block(t.line)
            {
                continue;
            }
            let Some((kind, name, _)) = pub_item_at(file, i) else { continue };
            if doc_comments_above(file, i).is_empty() {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    resolution: "token",
                    message: format!("public {kind} `{name}` has no doc comment"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Violation> {
        let file = SourceFile::new(path, src, FileKind::RustLibrary);
        let mut out = Vec::new();
        DocCoverage.check(&file, &mut out);
        out
    }

    #[test]
    fn undocumented_public_items_fire() {
        let bad = "\
pub fn naked() {}
pub struct Bare;
pub enum Also { X }
";
        let out = run("crates/x/src/lib.rs", bad);
        assert_eq!(out.len(), 3);
        assert!(out[0].message.contains("naked"));
    }

    #[test]
    fn documented_items_pass_including_through_attributes() {
        let good = "\
/// Does the thing.
pub fn covered() {}

/// A type.
#[derive(Debug)]
pub struct T;
";
        assert!(run("crates/x/src/lib.rs", good).is_empty());
    }

    #[test]
    fn mod_declarations_and_pub_use_are_exempt() {
        let src = "\
pub mod dist;
pub use error::ProbError;
";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn a_doc_comment_mentioning_pub_fn_is_not_a_declaration() {
        // Former textual false-positive class: declarations quoted in
        // prose or strings are tokens of a different kind.
        let src = "\
//! Module docs show `pub fn naked()` as an example.
const SNIPPET: &str = \"pub struct Bare;\";
";
        assert!(run("crates/x/src/lib.rs", src).is_empty());
    }

    #[test]
    fn module_docs_do_not_count_as_item_docs() {
        let src = "//! Crate docs.\npub fn naked() {}\n";
        assert_eq!(run("crates/x/src/lib.rs", src).len(), 1);
    }

    #[test]
    fn only_lib_rs_is_in_scope() {
        assert!(run("crates/x/src/other.rs", "pub fn naked() {}\n").is_empty());
    }
}
