/root/repo/target/debug/deps/exp_fig2_models-54a6ba93b5caa50b.d: crates/bench/src/bin/exp_fig2_models.rs

/root/repo/target/debug/deps/exp_fig2_models-54a6ba93b5caa50b: crates/bench/src/bin/exp_fig2_models.rs

crates/bench/src/bin/exp_fig2_models.rs:
