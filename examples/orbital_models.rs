//! The paper's two-planet universe (Fig. 2): one physical system, two
//! models — deterministic (Newton/RK4) and probabilistic (frequentist
//! occupancy) — plus the epistemic and ontological experiments of
//! Sec. III.
//!
//! Run with `cargo run --release --example orbital_models`.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::orbital::{
    Body, Integrator, NBodySystem, ObservationChannel, OccupancyGrid, SurpriseMonitor, Vec2,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2);
    let (m1, m2, d) = (1.0, 0.4, 2.0);
    let period = NBodySystem::circular_period(m1, m2, d);

    // ------------------------------------------------------------------
    // Model A: deterministic trajectory with conservation diagnostics.
    // ------------------------------------------------------------------
    println!("== Model A: deterministic (Newton + velocity Verlet) ==");
    let mut sys = NBodySystem::two_planets(m1, m2, d)?;
    let e0 = sys.total_energy();
    let dt = period / 2_000.0;
    Integrator::VelocityVerlet.propagate(&mut sys, dt, 10_000);
    println!("  5 orbits integrated; relative energy drift = {:.2e}", ((sys.total_energy() - e0) / e0).abs());

    // ------------------------------------------------------------------
    // Model B: frequentist occupancy grid; epistemic error vs samples.
    // ------------------------------------------------------------------
    println!("\n== Model B: frequentist occupancy (epistemic convergence) ==");
    let channel = ObservationChannel::new(0.02)?;
    let bounds = (Vec2::new(-2.5, -2.5), Vec2::new(2.5, 2.5));
    // Reference grid from a long run.
    let mut reference = OccupancyGrid::new(bounds.0, bounds.1, 24, 24)?;
    {
        let mut sys = NBodySystem::two_planets(m1, m2, d)?;
        for _ in 0..200_000 {
            Integrator::VelocityVerlet.step(&mut sys, dt);
            reference.add(channel.observe(sys.bodies[0].position, &mut rng));
        }
    }
    for n in [500usize, 5_000, 50_000] {
        let mut grid = OccupancyGrid::new(bounds.0, bounds.1, 24, 24)?;
        let mut sys = NBodySystem::two_planets(m1, m2, d)?;
        for _ in 0..n {
            Integrator::VelocityVerlet.step(&mut sys, dt);
            grid.add(channel.observe(sys.bodies[0].position, &mut rng));
        }
        println!(
            "  {n:>6} observations -> TV distance to converged model {:.4}",
            grid.total_variation(&reference)?
        );
    }

    // ------------------------------------------------------------------
    // Sec. III-C: ontological surprise from a third planet.
    // ------------------------------------------------------------------
    println!("\n== Ontological event: a third planet appears ==");
    let mut reality = NBodySystem::two_planets(m1, m2, d)?;
    let mut model = reality.clone(); // the developers' 2-body model
    let mut monitor = SurpriseMonitor::new(channel, 200)?;
    let steps_before = 4_000usize;
    let steps_after = 4_000usize;
    for step in 0..steps_before + steps_after {
        if step == steps_before {
            reality.inject_third_planet(0.3, 3.0)?;
            println!("  [step {step}] third planet injected into reality (model unchanged)");
        }
        Integrator::VelocityVerlet.step(&mut reality, dt);
        Integrator::VelocityVerlet.step(&mut model, dt);
        let obs = channel.observe(reality.bodies[0].position, &mut rng);
        monitor.record(model.bodies[0].position, obs);
        if step % 1_000 == 999 {
            println!(
                "  [step {:>5}] mean surprisal {:.2} nats (baseline {:.2}) alarm: {}",
                step,
                monitor.recent_mean(),
                monitor.baseline(),
                monitor.alarm(2.0)
            );
        }
    }
    // Reformulation: a 3-body model removes the surprise again.
    println!("\n== Model reformulation (3-body) restores adequacy ==");
    let mut reformed = NBodySystem::two_planets(m1, m2, d)?;
    reformed.inject_third_planet(0.3, 3.0)?;
    // Synchronize the reformed model to reality's pre-injection history:
    // rerun the whole timeline with the injection at the same step.
    let mut reality2 = NBodySystem::two_planets(m1, m2, d)?;
    let mut model2 = NBodySystem::two_planets(m1, m2, d)?;
    let mut monitor2 = SurpriseMonitor::new(channel, 200)?;
    for step in 0..steps_before + steps_after {
        if step == steps_before {
            reality2.inject_third_planet(0.3, 3.0)?;
            model2.inject_third_planet(0.3, 3.0)?; // the reformulated model
        }
        Integrator::VelocityVerlet.step(&mut reality2, dt);
        Integrator::VelocityVerlet.step(&mut model2, dt);
        let obs = channel.observe(reality2.bodies[0].position, &mut rng);
        monitor2.record(model2.bodies[0].position, obs);
    }
    println!(
        "  mean surprisal after reformulation {:.2} nats (baseline {:.2}) alarm: {}",
        monitor2.recent_mean(),
        monitor2.baseline(),
        monitor2.alarm(2.0)
    );

    // ------------------------------------------------------------------
    // Sec. III-B: epistemic model error from heterogeneous bodies.
    // ------------------------------------------------------------------
    println!("\n== Epistemic refinement: mascon fidelity ladder ==");
    let lumpy = |k: usize| -> Result<NBodySystem, Box<dyn std::error::Error>> {
        let planet = Body::point_mass("planet", 1.0, Vec2::zero(), Vec2::zero())?
            .with_mascon_ring(k, 0.4, 0.5, 3.0)?;
        let probe = Body::point_mass("probe", 1e-9, Vec2::new(1.2, 0.0), Vec2::new(0.0, 0.9))?;
        Ok(NBodySystem::new(vec![probe, planet], 1.0)?)
    };
    let mut truth = lumpy(16)?; // high-fidelity "reality"
    let horizon = 3_000;
    let truth_traj = Integrator::VelocityVerlet.propagate(&mut truth, 0.002, horizon);
    for k in [1usize, 2, 4, 8, 16] {
        let mut model = lumpy(k)?;
        let traj = Integrator::VelocityVerlet.propagate(&mut model, 0.002, horizon);
        let err: f64 = traj
            .iter()
            .zip(&truth_traj)
            .map(|(a, b)| a[0].distance(b[0]))
            .fold(0.0, f64::max);
        println!("  {k:>2}-mascon model -> max trajectory error {err:.5}");
    }
    Ok(())
}
