/root/repo/target/debug/deps/exp_fig3_means-55138d24e7d55ec9.d: crates/bench/src/bin/exp_fig3_means.rs

/root/repo/target/debug/deps/libexp_fig3_means-55138d24e7d55ec9.rmeta: crates/bench/src/bin/exp_fig3_means.rs

crates/bench/src/bin/exp_fig3_means.rs:
