//! Standalone fleet supervisor + router.
//!
//! ```text
//! sysunc-fleet [--shards N] [--addr HOST:PORT] [--serve-bin PATH]
//!              [--child-workers N] [--child-queue N]
//!              [--child-cache-capacity N] [--child-cache-ttl-ms N]
//!              [--max-connections N] [--probe-interval-ms N]
//! ```
//!
//! Spawns N supervised `sysunc-serve` shards, binds the routing front
//! (port 0 = ephemeral), prints `fleet listening on <addr>` to stdout,
//! and serves until stdin reaches EOF — the same signal-free drain
//! convention the shards themselves use, so fleets nest under any
//! process manager that can close a pipe. The serve binary is located
//! via `--serve-bin`, the `SYSUNC_SERVE_BIN` environment variable, or
//! the supervisor's own build tree.

use std::io::Read;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;
use sysunc_fleet::{Fleet, FleetConfig};

fn parse_args(args: &[String]) -> Result<FleetConfig, String> {
    let mut config = FleetConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--shards" => {
                config.shards =
                    value("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?
            }
            "--addr" => config.addr = value("--addr")?,
            "--serve-bin" => config.serve_bin = Some(PathBuf::from(value("--serve-bin")?)),
            "--child-workers" => {
                config.child_workers = value("--child-workers")?
                    .parse()
                    .map_err(|e| format!("--child-workers: {e}"))?
            }
            "--child-queue" => {
                config.child_queue = value("--child-queue")?
                    .parse()
                    .map_err(|e| format!("--child-queue: {e}"))?
            }
            "--child-cache-capacity" => {
                config.child_cache_capacity = value("--child-cache-capacity")?
                    .parse()
                    .map_err(|e| format!("--child-cache-capacity: {e}"))?
            }
            "--child-cache-ttl-ms" => {
                config.child_cache_ttl = Some(Duration::from_millis(
                    value("--child-cache-ttl-ms")?
                        .parse()
                        .map_err(|e| format!("--child-cache-ttl-ms: {e}"))?,
                ))
            }
            "--max-connections" => {
                config.max_connections = value("--max-connections")?
                    .parse()
                    .map_err(|e| format!("--max-connections: {e}"))?
            }
            "--probe-interval-ms" => {
                config.probe_interval = Duration::from_millis(
                    value("--probe-interval-ms")?
                        .parse()
                        .map_err(|e| format!("--probe-interval-ms: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&raw) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("sysunc-fleet: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let shards = config.shards;
    let fleet = match Fleet::start(config) {
        Ok(fleet) => fleet,
        Err(e) => {
            eprintln!("sysunc-fleet: cannot start: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("fleet listening on {}", fleet.addr());
    eprintln!("sysunc-fleet: {shards} shard(s) up, routing on {}", fleet.addr());
    // Serve until stdin closes.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    eprintln!("sysunc-fleet: stdin closed, draining fleet");
    fleet.shutdown();
    ExitCode::SUCCESS
}
