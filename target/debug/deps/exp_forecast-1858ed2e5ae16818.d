/root/repo/target/debug/deps/exp_forecast-1858ed2e5ae16818.d: crates/bench/src/bin/exp_forecast.rs

/root/repo/target/debug/deps/exp_forecast-1858ed2e5ae16818: crates/bench/src/bin/exp_forecast.rs

crates/bench/src/bin/exp_forecast.rs:
