/root/repo/target/debug/deps/fta_quantification-055ea39090a0be83.d: crates/bench/benches/fta_quantification.rs

/root/repo/target/debug/deps/fta_quantification-055ea39090a0be83: crates/bench/benches/fta_quantification.rs

crates/bench/benches/fta_quantification.rs:
