//! The strategy-combinator layer of the propcheck harness: a
//! [`Strategy`] describes how to *generate* a value and, through the
//! [`ValueTree`] it produces, how to *simplify* it toward a minimal
//! counterexample once the runner has seen it fail.
//!
//! The contract between runner and tree (mirrored from `proptest`):
//!
//! - [`ValueTree::simplify`] is only called when [`ValueTree::current`]
//!   was just observed to **fail** the property; the tree records that
//!   value as its best counterexample so far and proposes a simpler
//!   candidate. Returning `false` means the search is exhausted and
//!   `current` is restored to the best failing value.
//! - [`ValueTree::complicate`] is only called when `current` was just
//!   observed to **pass**; the tree backs off toward the last failing
//!   value. Returning `false` restores `current` to that failing value.
//! - [`ValueTree::valid`] lets filtered trees mark a candidate as
//!   outside the strategy's domain; on such candidates (and on
//!   `assume` rejections) the runner calls [`ValueTree::reject`],
//!   which proposes another candidate *without* concluding pass or
//!   fail — integer trees step linearly past the filter hole instead
//!   of surrendering the bisection window.
//!
//! Numeric strategies shrink by binary search toward an *origin* (zero
//! when the range contains it, else the bound nearest zero), so the
//! minimal counterexample of a range strategy is locally minimal: no
//! value strictly between the origin and the reported value still
//! fails, up to bisection resolution. Collections first shrink their
//! length, then their elements, one at a time.

use crate::rng::{RngCore as _, SeedableRng as _, StdRng};
use std::ops::Range;
use std::rc::Rc;

/// One generated value plus its shrink state. See the module docs for
/// the runner protocol.
pub trait ValueTree {
    /// The value type this tree holds.
    type Value;

    /// The candidate currently proposed by the tree.
    fn current(&self) -> Self::Value;

    /// Records that `current` failed and proposes a simpler candidate.
    /// Returns `false` when no simpler candidate exists.
    fn simplify(&mut self) -> bool;

    /// Records that `current` passed and backs off toward the last
    /// failing value. Returns `false` when the probe is exhausted, in
    /// which case `current` is the last failing value again.
    fn complicate(&mut self) -> bool;

    /// Whether `current` lies in the strategy's domain (filters narrow
    /// it). The runner never evaluates the property on invalid
    /// candidates; it calls [`ValueTree::reject`] instead.
    fn valid(&self) -> bool {
        true
    }

    /// Records that `current` was out of domain (filter miss or
    /// `assume` rejection) — neither pass nor fail — and proposes
    /// another candidate. Returns `false` when the probe is exhausted,
    /// in which case `current` is the last failing value again.
    /// Defaults to [`ValueTree::complicate`]; ordered trees override
    /// this with a probe that does not narrow the shrink window.
    fn reject(&mut self) -> bool {
        self.complicate()
    }
}

/// A recipe for generating values of one type, with shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// The shrinkable tree this strategy generates.
    type Tree: ValueTree<Value = Self::Value>;

    /// Generates one value (as a shrinkable tree) from `rng`.
    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree;

    /// Maps generated values through `f`; shrinking happens on the
    /// underlying values and is mapped through.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f: Rc::new(f) }
    }

    /// Restricts the strategy to values satisfying `pred`. Generation
    /// retries a bounded number of times; candidates produced during
    /// shrinking that violate `pred` are skipped (treated as passing).
    /// `label` names the constraint in reject accounting.
    fn prop_filter<F>(self, label: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, label, pred: Rc::new(pred) }
    }

    /// Type-erases the strategy so heterogeneous alternatives can live
    /// in one collection (see [`one_of`] and [`recursive`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Tree: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

// ------------------------------------------------------------------
// Numeric ranges: binary-search shrinking toward an origin.
// ------------------------------------------------------------------

/// Uniform `f64` in the half-open interval `[lo, hi)`, shrinking
/// toward zero when the range contains it, else toward the bound
/// nearest zero.
pub fn f64_range(lo: f64, hi: f64) -> F64Range {
    debug_assert!(lo < hi, "f64_range requires lo < hi");
    F64Range { lo, hi }
}

/// See [`f64_range`].
#[derive(Clone, Debug)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

impl Strategy for F64Range {
    type Value = f64;
    type Tree = F64Tree;

    fn new_tree(&self, rng: &mut StdRng) -> F64Tree {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let value = self.lo + u * (self.hi - self.lo);
        // The origin is the simplest value shrinking aims for. When it
        // is the exclusive upper bound (all-negative range) it must
        // never be proposed itself, only approached.
        let (origin, origin_in_range) = if self.lo <= 0.0 && 0.0 < self.hi {
            (0.0, true)
        } else if self.lo > 0.0 {
            (self.lo, true)
        } else {
            (self.hi, false)
        };
        let off = value - origin;
        F64Tree {
            origin,
            off_lo: 0.0,
            off_fail: off,
            off_curr: off,
            // `+0.0` has all-zero bits, so this is an exact is-at-origin
            // test (a `-0.0` offset proposes the origin once; harmless).
            try_origin: origin_in_range && off.to_bits() != 0,
        }
    }
}

/// Binary-search shrink state for a float, in offset-from-origin form.
#[derive(Clone, Debug)]
pub struct F64Tree {
    origin: f64,
    /// Offset below which (toward zero) every candidate passed.
    off_lo: f64,
    /// Offset of the best (smallest) failing value seen so far.
    off_fail: f64,
    /// Offset of the candidate currently proposed.
    off_curr: f64,
    /// Whether to propose the origin itself first.
    try_origin: bool,
}

impl ValueTree for F64Tree {
    type Value = f64;

    fn current(&self) -> f64 {
        self.origin + self.off_curr
    }

    fn simplify(&mut self) -> bool {
        self.off_fail = self.off_curr;
        if self.try_origin {
            self.try_origin = false;
            if self.off_fail.to_bits() != 0 {
                self.off_curr = 0.0;
                return true;
            }
        }
        let cand = self.off_lo + (self.off_fail - self.off_lo) / 2.0;
        if cand.to_bits() == self.off_lo.to_bits() || cand.to_bits() == self.off_fail.to_bits() {
            self.off_curr = self.off_fail;
            return false;
        }
        self.off_curr = cand;
        true
    }

    fn complicate(&mut self) -> bool {
        self.off_lo = self.off_curr;
        let cand = self.off_lo + (self.off_fail - self.off_lo) / 2.0;
        if cand.to_bits() == self.off_lo.to_bits() || cand.to_bits() == self.off_fail.to_bits() {
            self.off_curr = self.off_fail;
            return false;
        }
        self.off_curr = cand;
        true
    }
}

/// Uniform `u64` in the half-open range `lo..hi`, shrinking toward
/// `lo` by binary search.
pub fn u64_range(range: Range<u64>) -> U64Range {
    debug_assert!(range.start < range.end, "u64_range requires a non-empty range");
    U64Range { lo: range.start, hi: range.end }
}

/// See [`u64_range`].
#[derive(Clone, Debug)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

impl Strategy for U64Range {
    type Value = u64;
    type Tree = U64Tree;

    fn new_tree(&self, rng: &mut StdRng) -> U64Tree {
        let value = self.lo + rng.next_u64() % (self.hi - self.lo);
        U64Tree { lo: self.lo, fail: value, curr: value }
    }
}

/// Binary-search shrink state for an unsigned integer.
#[derive(Clone, Debug)]
pub struct U64Tree {
    /// Values in `origin..lo` are known to pass.
    lo: u64,
    /// The best (smallest) failing value seen so far.
    fail: u64,
    /// The candidate currently proposed.
    curr: u64,
}

impl ValueTree for U64Tree {
    type Value = u64;

    fn current(&self) -> u64 {
        self.curr
    }

    fn simplify(&mut self) -> bool {
        self.fail = self.curr;
        if self.fail <= self.lo {
            return false;
        }
        self.curr = self.lo + (self.fail - self.lo) / 2;
        true
    }

    fn complicate(&mut self) -> bool {
        self.lo = self.curr + 1;
        if self.lo >= self.fail {
            self.curr = self.fail;
            return false;
        }
        self.curr = self.lo + (self.fail - self.lo) / 2;
        true
    }

    fn reject(&mut self) -> bool {
        // The candidate was out of domain, so it proves nothing about
        // where the pass/fail boundary lies: step linearly toward the
        // failing value without raising `lo`, so the bisection window
        // still covers every untested in-domain value.
        if self.curr + 1 >= self.fail {
            self.curr = self.fail;
            return false;
        }
        self.curr += 1;
        true
    }
}

/// Uniform `usize` in the half-open range `lo..hi`, shrinking toward
/// `lo`.
pub fn usize_range(range: Range<usize>) -> Map<U64Range, fn(u64) -> usize> {
    u64_range(range.start as u64..range.end as u64).map(|v| v as usize)
}

/// A fair coin, shrinking toward `false`.
pub fn any_bool() -> AnyBool {
    AnyBool
}

/// See [`any_bool`].
#[derive(Clone, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    type Tree = BoolTree;

    fn new_tree(&self, rng: &mut StdRng) -> BoolTree {
        BoolTree { curr: rng.next_u64() & 1 == 1 }
    }
}

/// Shrink state for a boolean: one step, `true` → `false`.
#[derive(Clone, Debug)]
pub struct BoolTree {
    curr: bool,
}

impl ValueTree for BoolTree {
    type Value = bool;

    fn current(&self) -> bool {
        self.curr
    }

    fn simplify(&mut self) -> bool {
        if self.curr {
            self.curr = false;
            return true;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        self.curr = true;
        false
    }
}

/// The constant strategy: always `value`, no shrinking.
pub fn just<T: Clone>(value: T) -> Just<T> {
    Just { value }
}

/// See [`just`].
#[derive(Clone, Debug)]
pub struct Just<T: Clone> {
    value: T,
}

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    type Tree = JustTree<T>;

    fn new_tree(&self, _rng: &mut StdRng) -> JustTree<T> {
        JustTree { value: self.value.clone() }
    }
}

/// Tree of [`just`]: a constant with no shrink moves.
#[derive(Clone, Debug)]
pub struct JustTree<T: Clone> {
    value: T,
}

impl<T: Clone> ValueTree for JustTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.value.clone()
    }

    fn simplify(&mut self) -> bool {
        false
    }

    fn complicate(&mut self) -> bool {
        false
    }
}

// ------------------------------------------------------------------
// Map / Filter.
// ------------------------------------------------------------------

/// See [`Strategy::map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Self {
        Map { inner: self.inner.clone(), f: Rc::clone(&self.f) }
    }
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    type Tree = MapTree<S::Tree, F>;

    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
        MapTree { inner: self.inner.new_tree(rng), f: Rc::clone(&self.f) }
    }
}

/// Tree of [`Strategy::map`]: shrinks the inner tree, maps `current`.
pub struct MapTree<T, F> {
    inner: T,
    f: Rc<F>,
}

impl<T, U, F> ValueTree for MapTree<T, F>
where
    T: ValueTree,
    F: Fn(T::Value) -> U,
{
    type Value = U;

    fn current(&self) -> U {
        (self.f)(self.inner.current())
    }

    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }

    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }

    fn valid(&self) -> bool {
        self.inner.valid()
    }

    fn reject(&mut self) -> bool {
        self.inner.reject()
    }
}

/// How many times generation retries before handing the runner an
/// invalid tree (which it accounts as a reject).
const FILTER_RETRIES: usize = 64;

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    label: &'static str,
    pred: Rc<F>,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    type Tree = FilterTree<S::Tree, F>;

    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
        let mut tree = self.inner.new_tree(rng);
        for _ in 0..FILTER_RETRIES {
            if (self.pred)(&tree.current()) {
                break;
            }
            tree = self.inner.new_tree(rng);
        }
        FilterTree { inner: tree, label: self.label, pred: Rc::clone(&self.pred) }
    }
}

/// Tree of [`Strategy::prop_filter`]: candidates violating the
/// predicate report `valid() == false`.
pub struct FilterTree<T, F> {
    inner: T,
    label: &'static str,
    pred: Rc<F>,
}

impl<T, F> FilterTree<T, F> {
    /// The constraint label, for reject accounting.
    pub fn label(&self) -> &'static str {
        self.label
    }
}

impl<T, F> ValueTree for FilterTree<T, F>
where
    T: ValueTree,
    F: Fn(&T::Value) -> bool,
{
    type Value = T::Value;

    fn current(&self) -> T::Value {
        self.inner.current()
    }

    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }

    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }

    fn valid(&self) -> bool {
        self.inner.valid() && (self.pred)(&self.inner.current())
    }

    fn reject(&mut self) -> bool {
        self.inner.reject()
    }
}

// ------------------------------------------------------------------
// Tuples: shrink one component at a time, left to right.
// ------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($tree:ident, $($S:ident/$T:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            type Tree = $tree<$($S::Tree,)+>;

            fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
                $tree { trees: ($(self.$idx.new_tree(rng),)+), cursor: 0, last: 0 }
            }
        }

        /// Tuple tree: components shrink one at a time, left to right.
        pub struct $tree<$($T,)+> {
            trees: ($($T,)+),
            cursor: usize,
            last: usize,
        }

        impl<$($T: ValueTree),+> ValueTree for $tree<$($T,)+> {
            type Value = ($($T::Value,)+);

            fn current(&self) -> Self::Value {
                ($(self.trees.$idx.current(),)+)
            }

            fn simplify(&mut self) -> bool {
                loop {
                    let step = match self.cursor {
                        $($idx => self.trees.$idx.simplify(),)+
                        _ => return false,
                    };
                    if step {
                        self.last = self.cursor;
                        return true;
                    }
                    self.cursor += 1;
                }
            }

            fn complicate(&mut self) -> bool {
                match self.last {
                    $($idx => self.trees.$idx.complicate(),)+
                    _ => false,
                }
            }

            fn valid(&self) -> bool {
                true $(&& self.trees.$idx.valid())+
            }

            fn reject(&mut self) -> bool {
                // Only the last-stepped component can have left its
                // domain; probe it without narrowing its window.
                match self.last {
                    $($idx => self.trees.$idx.reject(),)+
                    _ => false,
                }
            }
        }
    };
}

tuple_strategy!(Tuple2Tree, S0/T0/0, S1/T1/1);
tuple_strategy!(Tuple3Tree, S0/T0/0, S1/T1/1, S2/T2/2);
tuple_strategy!(Tuple4Tree, S0/T0/0, S1/T1/1, S2/T2/2, S3/T3/3);
tuple_strategy!(Tuple5Tree, S0/T0/0, S1/T1/1, S2/T2/2, S3/T3/3, S4/T4/4);
tuple_strategy!(Tuple6Tree, S0/T0/0, S1/T1/1, S2/T2/2, S3/T3/3, S4/T4/4, S5/T5/5);

// ------------------------------------------------------------------
// Vectors: shrink length first (binary search toward the minimum),
// then elements one at a time.
// ------------------------------------------------------------------

/// A vector whose length is uniform in `len` (half-open) and whose
/// elements come from `element`. Shrinks the length toward the range
/// minimum first, dropping tail elements, then shrinks the surviving
/// elements one at a time.
pub fn vec_of<S: Strategy>(element: S, len: Range<usize>) -> VecOf<S> {
    debug_assert!(len.start < len.end, "vec_of requires a non-empty length range");
    VecOf { element, min_len: len.start, max_len: len.end }
}

/// See [`vec_of`].
#[derive(Clone, Debug)]
pub struct VecOf<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecOf<S> {
    type Value = Vec<S::Value>;
    type Tree = VecTree<S::Tree>;

    fn new_tree(&self, rng: &mut StdRng) -> Self::Tree {
        let span = (self.max_len - self.min_len) as u64;
        let len = self.min_len + (rng.next_u64() % span) as usize;
        let elems = (0..len.max(self.min_len)).map(|_| self.element.new_tree(rng)).collect();
        VecTree {
            elems,
            len,
            lo_len: self.min_len,
            fail_len: len,
            len_done: false,
            cursor: 0,
            last: 0,
        }
    }
}

/// Tree of [`vec_of`]; see the function docs for the shrink order.
pub struct VecTree<T> {
    elems: Vec<T>,
    /// The current prefix length exposed through `current`.
    len: usize,
    /// Lengths in `min..lo_len` are known to pass.
    lo_len: usize,
    /// The shortest failing length seen so far.
    fail_len: usize,
    /// Whether length shrinking is exhausted.
    len_done: bool,
    cursor: usize,
    last: usize,
}

impl<T: ValueTree> ValueTree for VecTree<T> {
    type Value = Vec<T::Value>;

    fn current(&self) -> Vec<T::Value> {
        self.elems[..self.len].iter().map(ValueTree::current).collect()
    }

    fn simplify(&mut self) -> bool {
        if !self.len_done {
            self.fail_len = self.len;
            if self.fail_len > self.lo_len {
                self.len = self.lo_len + (self.fail_len - self.lo_len) / 2;
                return true;
            }
            self.len_done = true;
        }
        while self.cursor < self.len {
            if self.elems[self.cursor].simplify() {
                self.last = self.cursor;
                return true;
            }
            self.cursor += 1;
        }
        false
    }

    fn complicate(&mut self) -> bool {
        if !self.len_done {
            self.lo_len = self.len + 1;
            if self.lo_len >= self.fail_len {
                self.len = self.fail_len;
                return false;
            }
            self.len = self.lo_len + (self.fail_len - self.lo_len) / 2;
            return true;
        }
        if self.last < self.elems.len() {
            return self.elems[self.last].complicate();
        }
        false
    }

    fn valid(&self) -> bool {
        self.elems[..self.len].iter().all(ValueTree::valid)
    }

    fn reject(&mut self) -> bool {
        // Truncation never leaves the element domain, so rejection can
        // only originate from the last-stepped element.
        if !self.len_done {
            return self.complicate();
        }
        if self.last < self.elems.len() {
            return self.elems[self.last].reject();
        }
        false
    }
}

// ------------------------------------------------------------------
// Type erasure, alternation, recursion.
// ------------------------------------------------------------------

/// Object-safe face of [`Strategy`], for type erasure.
trait DynStrategy<T> {
    fn new_tree_dyn(&self, rng: &mut StdRng) -> BoxTree<T>;
}

impl<S> DynStrategy<S::Value> for S
where
    S: Strategy,
    S::Tree: 'static,
{
    fn new_tree_dyn(&self, rng: &mut StdRng) -> BoxTree<S::Value> {
        BoxTree(Box::new(self.new_tree(rng)))
    }
}

/// Object-safe face of [`ValueTree`], for type erasure.
trait DynValueTree<T> {
    fn current_dyn(&self) -> T;
    fn simplify_dyn(&mut self) -> bool;
    fn complicate_dyn(&mut self) -> bool;
    fn valid_dyn(&self) -> bool;
    fn reject_dyn(&mut self) -> bool;
}

impl<V: ValueTree> DynValueTree<V::Value> for V {
    fn current_dyn(&self) -> V::Value {
        self.current()
    }

    fn simplify_dyn(&mut self) -> bool {
        self.simplify()
    }

    fn complicate_dyn(&mut self) -> bool {
        self.complicate()
    }

    fn valid_dyn(&self) -> bool {
        self.valid()
    }

    fn reject_dyn(&mut self) -> bool {
        self.reject()
    }
}

/// A type-erased [`ValueTree`], produced by [`BoxedStrategy`].
pub struct BoxTree<T>(Box<dyn DynValueTree<T>>);

impl<T> ValueTree for BoxTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.current_dyn()
    }

    fn simplify(&mut self) -> bool {
        self.0.simplify_dyn()
    }

    fn complicate(&mut self) -> bool {
        self.0.complicate_dyn()
    }

    fn valid(&self) -> bool {
        self.0.valid_dyn()
    }

    fn reject(&mut self) -> bool {
        self.0.reject_dyn()
    }
}

/// A type-erased, cheaply clonable [`Strategy`] (see
/// [`Strategy::boxed`]). The building block of [`one_of`] and
/// [`recursive`].
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    type Tree = BoxTree<T>;

    fn new_tree(&self, rng: &mut StdRng) -> BoxTree<T> {
        self.0.new_tree_dyn(rng)
    }
}

/// Picks one of `options` uniformly at random per case. Shrinking
/// stays within the chosen alternative (it does not jump to earlier
/// options).
pub fn one_of<T: 'static>(options: Vec<BoxedStrategy<T>>) -> OneOf<T> {
    debug_assert!(!options.is_empty(), "one_of requires at least one option");
    OneOf { options }
}

/// See [`one_of`].
pub struct OneOf<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T: 'static> Strategy for OneOf<T> {
    type Value = T;
    type Tree = BoxTree<T>;

    fn new_tree(&self, rng: &mut StdRng) -> BoxTree<T> {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].new_tree(rng)
    }
}

/// Builds a recursive strategy: starting from `leaf`, applies `expand`
/// up to `depth` times, at each level choosing between a fresh leaf
/// and the expanded strategy. The classic shape for trees and nested
/// expressions; depth is statically bounded so generation terminates.
pub fn recursive<T, L, E>(leaf: L, depth: usize, expand: E) -> BoxedStrategy<T>
where
    T: 'static,
    L: Fn() -> BoxedStrategy<T>,
    E: Fn(BoxedStrategy<T>) -> BoxedStrategy<T>,
{
    let mut strategy = leaf();
    for _ in 0..depth {
        strategy = one_of(vec![leaf(), expand(strategy)]).boxed();
    }
    strategy
}

// ------------------------------------------------------------------
// Opaque generation: arbitrary closures over a Gen, no shrinking.
// ------------------------------------------------------------------

/// Per-case raw value generator, for [`gen_with`] strategies whose
/// structure is easier to express as imperative draws than as
/// combinators (recursive fixtures, formatted text, ...).
#[derive(Debug)]
pub struct Gen {
    rng: StdRng,
}

impl Gen {
    /// Uniform `f64` in the half-open interval `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi, "f64_in requires lo < hi");
        let u = (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u * (hi - lo)
    }

    /// Uniform `usize` in the half-open range `lo..hi`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo < hi, "usize_in requires lo < hi");
        lo + (self.rng.next_u64() % (hi - lo) as u64) as usize
    }

    /// Uniform `u64` in the half-open range `lo..hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi, "u64_in requires lo < hi");
        lo + self.rng.next_u64() % (hi - lo)
    }

    /// A vector of `len` uniform draws from `[lo, hi)`.
    pub fn vec_f64(&mut self, lo: f64, hi: f64, len: usize) -> Vec<f64> {
        (0..len).map(|_| self.f64_in(lo, hi)).collect()
    }

    /// A normalized probability vector of length `len`.
    /// Range: each entry lies in `(0, 1]` and the entries sum to one.
    pub fn prob_vec(&mut self, len: usize) -> Vec<f64> {
        let raw = self.vec_f64(1e-6, 1.0, len);
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / total).collect()
    }

    /// Direct access to the underlying generator for custom draws.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}

/// A strategy generating values by running `f` over a per-case
/// [`Gen`]. No shrinking — the escape hatch for generators whose
/// structure does not decompose into combinators; prefer combinators
/// where possible so failures shrink.
pub fn gen_with<T, F>(f: F) -> GenWith<F>
where
    T: Clone,
    F: Fn(&mut Gen) -> T,
{
    GenWith { f: Rc::new(f) }
}

/// See [`gen_with`].
pub struct GenWith<F> {
    f: Rc<F>,
}

impl<T, F> Strategy for GenWith<F>
where
    T: Clone,
    F: Fn(&mut Gen) -> T,
{
    type Value = T;
    type Tree = JustTree<T>;

    fn new_tree(&self, rng: &mut StdRng) -> JustTree<T> {
        let mut g = Gen { rng: StdRng::seed_from_u64(rng.next_u64()) };
        JustTree { value: (self.f)(&mut g) }
    }
}

// ------------------------------------------------------------------
// Domain helpers.
// ------------------------------------------------------------------

/// A normalized probability vector of length `len` (entries positive,
/// summing to one) — the workhorse input for distribution-valued
/// properties. Shrinks the underlying raw draws toward uniformity.
/// Range: each entry lies in `(0, 1]` and the entries sum to one.
pub fn prob_vec(len: usize) -> Map<VecOf<F64Range>, fn(Vec<f64>) -> Vec<f64>> {
    fn normalize(raw: Vec<f64>) -> Vec<f64> {
        let total: f64 = raw.iter().sum();
        raw.into_iter().map(|x| x / total).collect()
    }
    vec_of(f64_range(1e-6, 1.0), len..len + 1).map(normalize)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Drives a tree to its minimal failing value under `fails`,
    /// mirroring the runner's shrink loop; returns the result.
    fn shrink_to_minimal<T: ValueTree>(tree: &mut T, fails: impl Fn(&T::Value) -> bool) -> T::Value
    where
        T::Value: Clone,
    {
        assert!(fails(&tree.current()), "shrink_to_minimal needs a failing start");
        let mut best = tree.current();
        let mut iters = 0;
        'outer: while iters < 10_000 {
            if !tree.simplify() {
                break;
            }
            iters += 1;
            loop {
                let out_of_domain = !tree.valid();
                if !out_of_domain && fails(&tree.current()) {
                    best = tree.current();
                    continue 'outer;
                }
                iters += 1;
                let more = if out_of_domain { tree.reject() } else { tree.complicate() };
                if iters >= 10_000 || !more {
                    continue 'outer;
                }
            }
        }
        best
    }

    #[test]
    fn u64_bisect_finds_exact_boundary() {
        for seed in 0..32 {
            let mut r = rng(seed);
            let mut tree = u64_range(0..100_000).new_tree(&mut r);
            if tree.current() < 777 {
                continue; // this case starts passing; nothing to shrink
            }
            let min = shrink_to_minimal(&mut tree, |&v| v >= 777);
            assert_eq!(min, 777, "seed {seed}");
        }
    }

    #[test]
    fn u64_range_respects_bounds_and_shrinks_toward_lo() {
        let mut r = rng(3);
        for _ in 0..200 {
            let mut tree = u64_range(10..20).new_tree(&mut r);
            assert!((10..20).contains(&tree.current()));
            let min = shrink_to_minimal(&mut tree, |_| true);
            assert_eq!(min, 10, "everything fails, so the minimum is the range floor");
        }
    }

    #[test]
    fn f64_bisect_converges_to_boundary() {
        for seed in 0..16 {
            let mut r = rng(seed);
            let mut tree = f64_range(0.0, 1000.0).new_tree(&mut r);
            if tree.current() < 250.0 {
                continue;
            }
            let min = shrink_to_minimal(&mut tree, |&v| v >= 250.0);
            assert!(
                (min - 250.0).abs() < 1e-6,
                "seed {seed}: expected ~250, got {min}"
            );
        }
    }

    #[test]
    fn f64_shrinks_to_exact_zero_when_range_contains_it() {
        let mut r = rng(9);
        let mut tree = f64_range(-5.0, 5.0).new_tree(&mut r);
        let min = shrink_to_minimal(&mut tree, |_| true);
        assert_eq!(min.to_bits(), 0.0f64.to_bits(), "origin is proposed exactly");
    }

    #[test]
    fn tuple_shrinks_components_independently() {
        let mut r = rng(11);
        loop {
            let strategy = (u64_range(0..1000), u64_range(0..1000));
            let mut tree = strategy.new_tree(&mut r);
            let (a, b) = tree.current();
            if a < 50 || b < 120 {
                continue;
            }
            let min = shrink_to_minimal(&mut tree, |&(a, b)| a >= 50 && b >= 120);
            assert_eq!(min, (50, 120));
            break;
        }
    }

    #[test]
    fn vec_shrinks_length_then_elements() {
        let mut r = rng(13);
        loop {
            let mut tree = vec_of(u64_range(0..100), 0..10).new_tree(&mut r);
            let v = tree.current();
            if v.iter().filter(|&&x| x >= 10).count() < 3 {
                continue;
            }
            // Fails while at least 3 elements are >= 10: minimal is
            // exactly 3 elements, each shrunk to exactly 10.
            let min =
                shrink_to_minimal(&mut tree, |v| v.iter().filter(|&&x| x >= 10).count() >= 3);
            assert_eq!(min.len(), 3, "length shrank to the minimum, got {min:?}");
            assert!(min.iter().all(|&x| x == 10), "elements shrank to the boundary: {min:?}");
            break;
        }
    }

    #[test]
    fn map_preserves_shrinking() {
        let mut r = rng(17);
        loop {
            let strategy = u64_range(0..1000).map(|v| v * 2);
            let mut tree = strategy.new_tree(&mut r);
            if tree.current() < 100 {
                continue;
            }
            let min = shrink_to_minimal(&mut tree, |&v| v >= 100);
            assert_eq!(min, 100, "shrinks through the map to the doubled boundary");
            break;
        }
    }

    #[test]
    fn filter_marks_out_of_domain_candidates_invalid() {
        let mut r = rng(19);
        let strategy = u64_range(0..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            let tree = strategy.new_tree(&mut r);
            assert!(tree.valid());
            assert_eq!(tree.current() % 2, 0, "generation respects the filter");
        }
        // Shrinking a filtered strategy never lands on an odd value:
        // the minimal even value >= 31 is 32.
        loop {
            let mut tree = strategy.new_tree(&mut r);
            if tree.current() < 31 {
                continue;
            }
            let min = shrink_to_minimal(&mut tree, |&v| v >= 31);
            assert_eq!(min, 32);
            break;
        }
    }

    #[test]
    fn one_of_generates_all_alternatives() {
        let mut r = rng(23);
        let strategy = one_of(vec![
            u64_range(0..1).boxed(),
            u64_range(100..101).boxed(),
            u64_range(200..201).boxed(),
        ]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            match strategy.new_tree(&mut r).current() {
                0 => seen[0] = true,
                100 => seen[1] = true,
                200 => seen[2] = true,
                other => panic!("value {other} outside every alternative"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_bounds_depth() {
        // A tiny expression language: leaves are numbers, nodes double.
        #[derive(Clone, Debug)]
        enum Expr {
            N(u64),
            Twice(Box<Expr>),
        }
        fn depth(e: &Expr) -> usize {
            match e {
                Expr::N(_) => 0,
                Expr::Twice(inner) => 1 + depth(inner),
            }
        }
        let strategy = recursive(
            || u64_range(0..10).map(Expr::N).boxed(),
            4,
            |inner| inner.map(|e| Expr::Twice(Box::new(e))).boxed(),
        );
        let mut r = rng(29);
        for _ in 0..100 {
            let e = strategy.new_tree(&mut r).current();
            assert!(depth(&e) <= 4, "depth bound violated: {e:?}");
        }
    }

    #[test]
    fn gen_with_produces_stable_values() {
        let strategy = gen_with(|g| format!("{}-{}", g.usize_in(0, 10), g.u64_in(0, 100)));
        let mut r = rng(31);
        let tree = strategy.new_tree(&mut r);
        assert_eq!(tree.current(), tree.current(), "current() is stable");
    }

    #[test]
    fn prob_vec_normalizes_and_shrinks() {
        let mut r = rng(37);
        for _ in 0..50 {
            let tree = prob_vec(5).new_tree(&mut r);
            let p = tree.current();
            assert_eq!(p.len(), 5);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert!(p.iter().all(|&x| x > 0.0));
        }
    }
}
