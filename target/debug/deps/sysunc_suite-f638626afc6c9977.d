/root/repo/target/debug/deps/sysunc_suite-f638626afc6c9977.d: src/lib.rs

/root/repo/target/debug/deps/sysunc_suite-f638626afc6c9977: src/lib.rs

src/lib.rs:
