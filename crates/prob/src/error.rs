//! Error types for the probability substrate.

use std::fmt;

/// Errors produced when constructing or evaluating probabilistic objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbError {
    /// A distribution or estimator parameter was invalid (e.g. a negative
    /// scale). The payload describes the offending parameter.
    InvalidParameter(String),
    /// An operation that needs data received an empty slice.
    EmptyData,
    /// Two inputs that must agree in length or shape did not.
    DimensionMismatch {
        /// Expected length/shape.
        expected: usize,
        /// Actual length/shape.
        actual: usize,
    },
    /// A probability vector did not sum to one (within tolerance) or
    /// contained negative entries.
    InvalidProbabilities(String),
}

impl fmt::Display for ProbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            ProbError::EmptyData => write!(f, "operation requires non-empty data"),
            ProbError::DimensionMismatch { expected, actual } => {
                write!(f, "dimension mismatch: expected {expected}, got {actual}")
            }
            ProbError::InvalidProbabilities(msg) => write!(f, "invalid probabilities: {msg}"),
        }
    }
}

impl std::error::Error for ProbError {}

/// Convenience result alias for the probability substrate.
pub type Result<T> = std::result::Result<T, ProbError>;
