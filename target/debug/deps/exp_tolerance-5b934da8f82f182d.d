/root/repo/target/debug/deps/exp_tolerance-5b934da8f82f182d.d: crates/bench/src/bin/exp_tolerance.rs

/root/repo/target/debug/deps/libexp_tolerance-5b934da8f82f182d.rmeta: crates/bench/src/bin/exp_tolerance.rs

crates/bench/src/bin/exp_tolerance.rs:
