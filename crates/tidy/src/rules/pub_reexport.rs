//! Rule `pub-reexport`: every public item of a substrate crate must be
//! root-reachable — and every substrate crate must be re-exported from
//! the `sysunc::` facade.
//!
//! A `pub` item inside a privately-declared module (`mod x;` without
//! `pub`, and no `pub use` chain pulling the name up) is dead public
//! API: visible in the source, promised by the keyword, unreachable by
//! any caller. That gap between what the code *says* it exports and
//! what it *actually* exports is exactly the kind of self-inflicted
//! epistemic uncertainty the gate exists to remove. The check is
//! cross-file by nature, so it runs on the [`crate::symbols::Workspace`]
//! table.
//!
//! Reachability is **exact**: [`crate::resolve::CrateGraph`] resolves
//! `use` paths (aliases, `crate::`/`super::` prefixes, re-export
//! chains) against the real module tree and expands glob re-exports
//! item-by-item, so an item is public API iff a `pub` chain from the
//! crate root reaches it. Earlier revisions name-matched re-exports
//! from *any* module, which both missed dead `pub use` chains and
//! flagged root-reachable glob re-exports. The one remaining
//! concession: a `pub use` path the resolver cannot see (macro output,
//! another crate) falls back to name-matching for that path only — a
//! lint must never accuse reachable code. Toolchain crates (`tidy`,
//! `bench`) are not part of the modeling surface and are exempt from
//! the facade check.

use crate::symbols::Workspace;
use crate::{Violation, WorkspaceLint};

/// See the module docs.
pub struct PubReexport;

/// Crates that are not modeling substrate: workspace tooling (`tidy`,
/// `bench`) and layers that sit *above* the facade and depend on it
/// (`serve`, `fleet`), which a `core` re-export would turn into a
/// dependency cycle.
const FACADE_EXEMPT: &[&str] = &["core", "tidy", "bench", "serve", "fleet"];

/// The facade crate's directory name.
const FACADE: &str = "core";

impl WorkspaceLint for PubReexport {
    fn name(&self) -> &'static str {
        "pub-reexport"
    }

    fn explain(&self) -> &'static str {
        "Every public item of a substrate crate must be root-reachable: a \
         chain of `pub mod` declarations, `pub use` re-exports (aliases \
         and multi-hop chains included), or glob re-exports — resolved \
         against the real module tree, not matched by name — must connect \
         the crate root to the item. A `pub` item in a privately-declared \
         module is dead public API: promised by the keyword, unreachable \
         by any caller — a gap between what the code says it exports and \
         what it actually exports. Additionally, every substrate crate \
         must be re-exported from the `sysunc::` facade so one \
         `use sysunc::…` reaches the whole workspace. Deliberately \
         internal items take `// tidy: allow(pub-reexport)`."
    }

    fn check(&self, ws: &Workspace<'_>, out: &mut Vec<Violation>) {
        for krate in &ws.crates {
            for (mi, module) in krate.modules().iter().enumerate() {
                if module.path.is_empty() {
                    continue; // root items are reachable by definition
                }
                if krate.reach.module_ns[mi] {
                    continue; // the whole namespace is publicly reachable
                }
                let file = &ws.files[module.file_idx];
                for (ii, item) in module.items.iter().enumerate() {
                    if !item.vis.is_pub() {
                        continue;
                    }
                    if krate.reach.items[mi][ii] {
                        continue; // a pub use chain reaches this item
                    }
                    if krate.reach.unresolved_names.contains(&item.name) {
                        continue; // conservative fallback for opaque paths
                    }
                    let via = if module.declared {
                        format!("private module `{}`", module.path.join("::"))
                    } else {
                        format!(
                            "undeclared module `{}` (no `mod` statement attaches \
                             its file)",
                            module.path.join("::")
                        )
                    };
                    out.push(Violation {
                        file: file.path.clone(),
                        line: item.line,
                        rule: self.name(),
                        resolution: "module-graph",
                        message: format!(
                            "public {} `{}` in {via} of crate `{}` is \
                             unreachable from the crate root; re-export it, make \
                             the module `pub`, or drop the `pub`",
                            item.kind, item.name, krate.name
                        ),
                    });
                }
            }
        }

        // Facade coverage: every substrate crate surfaces as a
        // `pub use sysunc_<name> …` somewhere in the facade crate.
        let Some(facade) = ws.crate_named(FACADE) else { return };
        for krate in &ws.crates {
            if FACADE_EXEMPT.contains(&krate.name.as_str()) {
                continue;
            }
            let package = format!("sysunc_{}", krate.name.replace('-', "_"));
            let covered = facade
                .modules()
                .iter()
                .flat_map(|m| m.uses.iter())
                .any(|u| u.vis.is_pub() && u.path.first().map(|s| s == &package).unwrap_or(false));
            if !covered {
                let file = &ws.files[facade
                    .root()
                    .map(|m| m.file_idx)
                    .unwrap_or_else(|| facade.modules()[0].file_idx)];
                out.push(Violation {
                    file: file.path.clone(),
                    line: 1,
                    rule: self.name(),
                    resolution: "module-graph",
                    message: format!(
                        "substrate crate `{}` is not re-exported from the \
                         `sysunc` facade; add `pub use {package} as {};`",
                        krate.name,
                        krate.name.replace('-', "_")
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::Workspace;
    use crate::{FileKind, SourceFile};

    fn run(specs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = specs
            .iter()
            .map(|(p, s)| SourceFile::new(*p, *s, FileKind::RustLibrary))
            .collect();
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        PubReexport.check(&ws, &mut out);
        out
    }

    /// A facade fixture covering crate `x`, so only the finding under
    /// test appears.
    const FACADE_LIB: (&str, &str) = ("crates/core/src/lib.rs", "pub use sysunc_x as x;\n");

    #[test]
    fn item_in_private_module_without_reexport_fires() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "mod hidden;\n"),
            ("crates/x/src/hidden.rs", "pub fn lost() {}\n"),
        ]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "pub-reexport");
        assert!(out[0].message.contains("lost"));
        assert!(out[0].file.ends_with("hidden.rs"));
    }

    #[test]
    fn pub_mod_chain_reaches_the_item() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "pub mod open;\n"),
            ("crates/x/src/open.rs", "pub fn found() {}\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn name_reexport_reaches_the_item() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "mod hidden;\npub use hidden::Rescued;\n"),
            ("crates/x/src/hidden.rs", "pub struct Rescued;\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn glob_reexport_reaches_the_whole_module() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "mod hidden;\npub use hidden::*;\n"),
            ("crates/x/src/hidden.rs", "pub fn a() {}\npub fn b() {}\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn dead_pub_use_chain_is_caught() {
        // `hidden` re-exports `inner::Secret`, but nothing re-exports
        // `hidden` itself: the chain never reaches the root, so both
        // `Secret` and the sibling `Orphan` are dead public API. The
        // old name table saw "Secret re-exported somewhere" and stayed
        // silent — the knockout this rewrite exists to close.
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "mod hidden;\n"),
            (
                "crates/x/src/hidden.rs",
                "mod inner;\npub use inner::Secret;\n",
            ),
            (
                "crates/x/src/hidden/inner.rs",
                "pub struct Secret;\npub struct Orphan;\n",
            ),
        ]);
        let names: Vec<&str> = out
            .iter()
            .map(|v| {
                if v.message.contains("Secret") {
                    "Secret"
                } else if v.message.contains("Orphan") {
                    "Orphan"
                } else {
                    "?"
                }
            })
            .collect();
        assert!(names.contains(&"Secret"), "dead chain target caught, got: {out:?}");
        assert!(names.contains(&"Orphan"), "dead chain sibling caught, got: {out:?}");
    }

    #[test]
    fn module_reexport_makes_items_reachable() {
        // `pub use hidden;` (a module re-export, no item name) makes
        // every pub item of `hidden` reachable as `x::hidden::…`. The
        // old name table flagged these — the false-positive class this
        // rewrite removes.
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "mod hidden;\npub use hidden as shown;\n"),
            ("crates/x/src/hidden.rs", "pub fn a() {}\npub fn b() {}\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn aliased_glob_chain_is_root_reachable() {
        // Root globs an *aliased* module path; the old table matched
        // glob paths only by their last segment ("prelude"), so items
        // in `grp::detail` were flagged despite being reachable.
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "mod grp;\npub use grp::prelude::*;\n"),
            ("crates/x/src/grp.rs", "mod detail;\npub use detail as prelude;\n"),
            ("crates/x/src/grp/detail.rs", "pub fn via_glob() {}\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn unresolvable_pub_use_paths_never_accuse_matching_names() {
        // A pub use through a path the resolver cannot see (pretend
        // macro output) must suppress findings for items of that name.
        let out = run(&[
            FACADE_LIB,
            (
                "crates/x/src/lib.rs",
                "mod hidden;\npub use generated_by_macro::Thing;\n",
            ),
            ("crates/x/src/hidden.rs", "pub struct Thing;\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }

    #[test]
    fn undeclared_files_are_reported_as_such() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "pub fn f() {}\n"),
            ("crates/x/src/floating.rs", "pub fn adrift() {}\n"),
        ]);
        assert_eq!(out.len(), 1, "got: {out:?}");
        assert!(out[0].message.contains("undeclared module"));
        assert!(out[0].message.contains("adrift"));
    }

    #[test]
    fn missing_facade_reexport_fires_on_the_facade() {
        let out = run(&[
            ("crates/core/src/lib.rs", "pub use sysunc_x as x;\n"),
            ("crates/x/src/lib.rs", "pub fn f() {}\n"),
            ("crates/y/src/lib.rs", "pub fn g() {}\n"),
        ]);
        assert_eq!(out.len(), 1);
        assert!(out[0].message.contains("`y`"));
        assert!(out[0].file.ends_with("crates/core/src/lib.rs"));
    }

    #[test]
    fn toolchain_crates_are_exempt_from_the_facade_check() {
        let out = run(&[
            FACADE_LIB,
            ("crates/x/src/lib.rs", "pub fn f() {}\n"),
            ("crates/tidy/src/lib.rs", "pub fn lint() {}\n"),
            ("crates/bench/src/lib.rs", "pub fn measure() {}\n"),
            ("crates/serve/src/lib.rs", "pub fn listen() {}\n"),
        ]);
        assert!(out.is_empty(), "got: {out:?}");
    }
}
