//! Rule `panic-path`: nothing reachable from a serve request-handling
//! entry point may panic.
//!
//! The server's contract is that every failure maps to an HTTP status
//! (408 deadline, 503 backpressure, 500 engine error) — never a dead
//! worker thread. A panic anywhere on the request path breaks that
//! contract for every in-flight connection the worker owned. The
//! per-file `panic` rule polices `unwrap`/`expect`/`panic!` textually,
//! but an acknowledged `// tidy: allow(panic)` or a panicking
//! construct it does not cover (element indexing) can still sit on the
//! hot path. This rule closes the gap by walking the *resolved call
//! graph* of the `serve` crate from its request-handling entry points
//! and flagging, in every reached function:
//!
//! - `.unwrap()` / `.expect(..)` calls,
//! - `panic!` / `todo!` / `unimplemented!` / `unreachable!` macros,
//! - element indexing (`xs[i]`) — a panicking operation in disguise;
//!   range *slicing* (`&buf[..n]`) is exempt because the HTTP parser
//!   is built on it and every use is length-guarded at the call site.
//!
//! The entry-point list is not a copy maintained here: the rule reads
//! the serve crate's own `REQUEST_ENTRY_POINTS` declaration — the
//! constant `router.rs` keeps next to its route registration — so a
//! new request-handling root added to the server is walked the moment
//! it is declared. Only when the scanned file set carries no such
//! declaration (partial workspaces, fixtures) does the rule fall back
//! to the built-in list (`start`, `acceptor_loop`,
//! `handle_connection`, `handle_request`, `reject_connection`).
//!
//! Calls inside closures are attributed to the function that creates
//! them: work deferred to the pool still runs on the request's behalf.
//! Each finding names the shortest call path from an entry point, so
//! the fix site is obvious. Limits, by design: calls are resolved
//! crate-locally (cross-crate panics are the per-file `panic` rule's
//! jurisdiction) and `cfg(test)` code is exempt.

use std::collections::HashMap;

use crate::calls::{crate_of, CrateIndex, FnRef};
use crate::lexer::TokenKind;
use crate::symbols::Workspace;
use crate::{SourceFile, Violation, WorkspaceLint};

/// See the module docs.
pub struct PanicPath;

/// Fallback request-handling roots, used only when the scanned file
/// set lacks the serve crate's own [`ENTRY_POINT_CONST`] declaration.
const DEFAULT_ENTRY_POINTS: &[&str] =
    &["start", "acceptor_loop", "handle_connection", "handle_request", "reject_connection"];

/// The serve-crate constant that declares the request-handling roots
/// authoritatively (kept next to the route registration in
/// `router.rs`).
const ENTRY_POINT_CONST: &str = "REQUEST_ENTRY_POINTS";

/// The crate whose call graph is walked.
const SERVE_CRATE: &str = "serve";

/// Macros that panic by definition.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

impl WorkspaceLint for PanicPath {
    fn name(&self) -> &'static str {
        "panic-path"
    }

    fn explain(&self) -> &'static str {
        "Nothing reachable from a serve request-handling entry point may \
         panic: the server's contract maps every failure to an HTTP status \
         (408/503/500), never a dead worker. The roots are read from the \
         serve crate's own `REQUEST_ENTRY_POINTS` declaration (falling back \
         to the built-in `start`/`acceptor_loop`/`handle_connection`/\
         `handle_request`/`reject_connection` list when absent). The \
         rule walks the crate's resolved call graph from those entries — \
         through method receivers, `Type::method` paths, and closures — \
         and flags `.unwrap()`, `.expect(..)`, `panic!`-family macros, and \
         element indexing (`xs[i]`, a panicking operation in disguise) in \
         every reached function. Range slicing (`&buf[..n]`) is exempt. \
         Replace the construct with `.get(..)`, a typed error, or an \
         explicit length guard; `cfg(test)` code is not checked."
    }

    fn check(&self, ws: &Workspace<'_>, out: &mut Vec<Violation>) {
        let roots = entry_points(ws);
        let idx = CrateIndex::build(ws, SERVE_CRATE);
        let fns = idx.all_fns();
        // BFS from the entry points over resolved call edges, keeping
        // the parent pointer that yields the shortest call path.
        let mut parent: HashMap<FnRef, Option<FnRef>> = HashMap::new();
        let mut queue: Vec<FnRef> = Vec::new();
        for &f in &fns {
            if roots.iter().any(|r| r == &idx.fn_info(f).name) {
                parent.insert(f, None);
                queue.push(f);
            }
        }
        let mut head = 0;
        while head < queue.len() {
            let f = queue[head];
            head += 1;
            for call in idx.resolve_calls(ws, f) {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(call.callee)
                {
                    e.insert(Some(f));
                    queue.push(call.callee);
                }
            }
        }
        // Scan every reached function, in BFS order (entries first,
        // then by discovery — deterministic given the sorted file set).
        for &fref in &queue {
            let path = call_path(&idx, &parent, fref);
            scan_fn(&idx, ws, fref, &path, out);
        }
    }
}

/// The request-handling roots to walk from: the string literals of the
/// serve crate's `pub const REQUEST_ENTRY_POINTS: &[&str] = &[…];`
/// declaration when present (the authoritative list `router.rs` keeps
/// next to its route registration), otherwise the built-in fallback.
fn entry_points(ws: &Workspace<'_>) -> Vec<String> {
    for file in ws.files.iter() {
        if crate_of(file) != Some(SERVE_CRATE) {
            continue;
        }
        let tokens = file.tokens();
        for (k, t) in tokens.iter().enumerate() {
            if t.kind != TokenKind::Ident || file.text(t) != ENTRY_POINT_CONST {
                continue;
            }
            // Only the declaration counts: `const REQUEST_ENTRY_POINTS …`,
            // not a use of the constant elsewhere.
            let declared = tokens[..k]
                .iter()
                .rfind(|p| !p.is_comment())
                .map(|p| p.kind == TokenKind::Ident && file.text(p) == "const")
                .unwrap_or(false);
            if !declared {
                continue;
            }
            // Collect the string literals of the initializer, up to `;`.
            let mut names = Vec::new();
            for t in tokens.iter().skip(k + 1) {
                match t.kind {
                    TokenKind::Str | TokenKind::RawStr => {
                        let name =
                            file.text(t).trim_start_matches(['b', 'r', '#']).trim_matches('"');
                        let name = name.trim_matches('#');
                        if !name.is_empty() {
                            names.push(name.to_string());
                        }
                    }
                    TokenKind::Punct if file.text(t) == ";" => break,
                    _ => {}
                }
            }
            if !names.is_empty() {
                return names;
            }
        }
    }
    DEFAULT_ENTRY_POINTS.iter().map(|s| (*s).to_string()).collect()
}

/// The shortest entry→function call path as `a → b → c`.
fn call_path(idx: &CrateIndex<'_>, parent: &HashMap<FnRef, Option<FnRef>>, f: FnRef) -> String {
    let mut names = vec![idx.fn_info(f).name.clone()];
    let mut at = f;
    while let Some(&Some(p)) = parent.get(&at) {
        names.push(idx.fn_info(p).name.clone());
        at = p;
    }
    names.reverse();
    names.join(" → ")
}

/// Flags the panicking constructs inside one reached function's body
/// (closures included; nested `fn` items excluded — they are reached
/// only via their own call edges).
fn scan_fn(
    idx: &CrateIndex<'_>,
    ws: &Workspace<'_>,
    fref: FnRef,
    path: &str,
    out: &mut Vec<Violation>,
) {
    let info = idx.fn_info(fref);
    let Some((open, close)) = info.body else { return };
    let file = &ws.files[fref.file];
    let tokens = file.tokens();
    if file.in_test_block(info.line) {
        return;
    }
    let mut k = open + 1;
    let end = close.min(tokens.len());
    while k < end {
        let t = &tokens[k];
        if t.is_comment() || file.in_test_block(t.line) {
            k += 1;
            continue;
        }
        if t.kind == TokenKind::Ident {
            let name = file.text(t);
            if name == "fn" {
                // Nested item: skip to past its body.
                k = skip_fn_item(file, k, end);
                continue;
            }
            let next = sig_after(file, k, end);
            let next_text = next.map(|n| file.text(&tokens[n]));
            if matches!(name, "unwrap" | "expect")
                && next_text == Some("(")
                && prev_is_dot(file, k)
            {
                out.push(violation(
                    file,
                    t.line,
                    format!(
                        "`.{name}(..)` on the request path (reached via {path}) panics \
                         the worker instead of mapping the failure to an HTTP status; \
                         return a typed error or recover explicitly"
                    ),
                ));
            } else if PANIC_MACROS.contains(&name) && next_text == Some("!") {
                out.push(violation(
                    file,
                    t.line,
                    format!(
                        "`{name}!` on the request path (reached via {path}) kills the \
                         worker; map the condition to an HTTP error response instead"
                    ),
                ));
            }
        } else if t.kind == TokenKind::Punct
            && file.text(t) == "["
            && is_element_index(file, k)
        {
            out.push(violation(
                file,
                t.line,
                format!(
                    "element indexing on the request path (reached via {path}) panics \
                     when out of bounds; use `.get(..)` or guard the length explicitly"
                ),
            ));
        }
        k += 1;
    }
}

fn violation(file: &SourceFile, line: usize, message: String) -> Violation {
    Violation {
        file: file.path.clone(),
        line,
        rule: "panic-path",
        resolution: "cfg",
        message,
    }
}

/// True when the `[` at `k` is an element index — a postfix bracket
/// after an expression whose bracketed content has no top-level range
/// operator. `&buf[..n]` slicing and `[T; N]` literals do not match.
fn is_element_index(file: &SourceFile, k: usize) -> bool {
    let tokens = file.tokens();
    let postfix = tokens[..k]
        .iter()
        .rfind(|t| !t.is_comment())
        .map(|t| match t.kind {
            TokenKind::Ident => !matches!(
                file.text(t),
                "return" | "break" | "in" | "else" | "match" | "as" | "mut" | "move" | "let"
            ),
            TokenKind::Punct => matches!(file.text(t), ")" | "]"),
            _ => false,
        })
        .unwrap_or(false);
    if !postfix {
        return false;
    }
    // Range operators at bracket depth 0 make it a slice.
    let mut depth = 0i64;
    for j in k..tokens.len() {
        let t = &tokens[j];
        if t.kind != TokenKind::Punct {
            continue;
        }
        match file.text(t) {
            "(" | "[" | "{" => depth += 1,
            ")" | "}" => depth -= 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return true; // closed with no range seen
                }
            }
            ".." | "..=" if depth == 1 => return false,
            _ => {}
        }
    }
    false
}

fn prev_is_dot(file: &SourceFile, k: usize) -> bool {
    file.tokens()[..k]
        .iter()
        .rfind(|t| !t.is_comment())
        .map(|t| t.kind == TokenKind::Punct && file.text(t) == ".")
        .unwrap_or(false)
}

fn sig_after(file: &SourceFile, k: usize, end: usize) -> Option<usize> {
    let tokens = file.tokens();
    (k + 1..end.min(tokens.len())).find(|&j| !tokens[j].is_comment())
}

fn skip_fn_item(file: &SourceFile, kw: usize, end: usize) -> usize {
    let tokens = file.tokens();
    let mut j = kw + 1;
    while j < end {
        if tokens[j].kind == TokenKind::Punct {
            match file.text(&tokens[j]) {
                "{" => return crate::resolve::matching_close(file, j, "{", "}") + 1,
                ";" => return j + 1,
                _ => {}
            }
        }
        j += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FileKind;

    fn run(srcs: &[(&str, &str)]) -> Vec<Violation> {
        let files: Vec<SourceFile> = srcs
            .iter()
            .map(|(p, s)| SourceFile::new(*p, *s, FileKind::RustLibrary))
            .collect();
        let ws = Workspace::build(&files);
        let mut out = Vec::new();
        PanicPath.check(&ws, &mut out);
        out
    }

    #[test]
    fn unwrap_reached_from_an_entry_point_fires_with_the_call_path() {
        let src = "\
pub fn handle_request(req: Request) -> Response {
    decode(req)
}
fn decode(req: Request) -> Response {
    req.body.parse().unwrap()
}
";
        let out = run(&[("crates/serve/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("handle_request → decode"), "{}", out[0].message);
        assert_eq!(out[0].resolution, "cfg");
    }

    #[test]
    fn unreached_functions_are_not_flagged() {
        let src = "\
pub fn handle_request(req: Request) -> Response {
    respond(req)
}
fn respond(req: Request) -> Response {
    Response::ok(req)
}
fn offline_tool(x: Data) -> Out {
    x.parse().unwrap()
}
";
        assert!(run(&[("crates/serve/src/lib.rs", src)]).is_empty());
    }

    #[test]
    fn other_crates_are_out_of_jurisdiction() {
        let src = "\
pub fn handle_request(req: Request) -> Response {
    req.body.parse().unwrap()
}
";
        assert!(
            run(&[("crates/core/src/lib.rs", src)]).is_empty(),
            "only the serve crate's entry points are walked"
        );
    }

    #[test]
    fn element_indexing_fires_but_range_slicing_is_exempt() {
        let src = "\
pub fn handle_request(buf: &[u8], n: usize) -> u8 {
    let head = &buf[..n];
    head[0]
}
";
        let out = run(&[("crates/serve/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("element indexing"));
        assert_eq!(out[0].line, 3, "the slice on line 2 is exempt");
    }

    #[test]
    fn panic_macros_fire_and_closure_work_is_attributed() {
        let src = "\
pub fn handle_connection(pool: &Pool, req: Request) {
    pool.submit(move || {
        if req.bad() {
            panic!(\"bad request\");
        }
    });
}
";
        let out = run(&[("crates/serve/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`panic!`"), "{}", out[0].message);
    }

    #[test]
    fn calls_through_receiver_types_extend_the_walk() {
        let src = "\
pub struct Codec;
impl Codec {
    pub fn decode(&self, raw: &str) -> u64 {
        raw.parse().expect(\"digits\")
    }
}
pub fn handle_request(c: &Codec, raw: &str) -> u64 {
    c.decode(raw)
}
";
        let out = run(&[("crates/serve/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("handle_request → decode"));
    }

    #[test]
    fn roots_are_derived_from_the_serve_declaration_not_the_builtin_list() {
        // The serve crate declares its own entry points; the built-in
        // fallback name `handle_request` must NOT be walked once a
        // declaration exists — that knockout proves derivation.
        let src = "\
pub const REQUEST_ENTRY_POINTS: &[&str] = &[\"serve_loop\"];
pub fn serve_loop(req: Request) -> Response {
    req.body.parse().unwrap()
}
pub fn handle_request(req: Request) -> Response {
    req.body.parse().unwrap()
}
";
        let out = run(&[("crates/serve/src/router.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].message.contains("serve_loop"),
            "the declared root is walked: {}",
            out[0].message
        );
    }

    #[test]
    fn declared_roots_spanning_files_drive_the_walk() {
        let decl = "\
pub const REQUEST_ENTRY_POINTS: &[&str] = &[
    \"accept\",
    \"respond\",
];
";
        let src = "\
pub fn accept(req: Request) -> Response {
    decode(req)
}
fn decode(req: Request) -> Response {
    req.body.parse().unwrap()
}
pub fn respond(buf: &[u8]) -> u8 {
    buf[0]
}
";
        let out = run(&[
            ("crates/serve/src/router.rs", decl),
            ("crates/serve/src/server.rs", src),
        ]);
        assert_eq!(out.len(), 2, "both declared roots are walked: {out:?}");
        assert!(out.iter().any(|v| v.message.contains("accept → decode")), "{out:?}");
        assert!(out.iter().any(|v| v.message.contains("element indexing")), "{out:?}");
    }

    #[test]
    fn builtin_roots_back_up_a_missing_declaration() {
        // No REQUEST_ENTRY_POINTS anywhere: the fallback list applies
        // (this is what keeps partial-workspace fixtures meaningful).
        let src = "\
pub fn reject_connection(buf: &[u8]) -> u8 {
    buf[0]
}
";
        let out = run(&[("crates/serve/src/lib.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "\
pub fn handle_request(req: Request) -> Response {
    respond(req)
}
fn respond(req: Request) -> Response {
    Response::ok(req)
}
#[cfg(test)]
mod tests {
    fn handle_request(x: u8) -> u8 {
        [1u8, 2][usize::from(x)]
    }
}
";
        assert!(run(&[("crates/serve/src/lib.rs", src)]).is_empty());
    }
}
