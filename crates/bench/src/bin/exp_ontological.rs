//! E4 — Sec. III-C: ontological uncertainty as model incompleteness.
//! A third planet appears in reality while the deployed model stays
//! 2-body. The surprisal trace must (a) stay at baseline before the
//! event, (b) spike after it, (c) stay high under *epistemic* refinement
//! of the wrong model (better parameters cannot fix a missing planet),
//! and (d) return to baseline only after *reformulation* to a 3-body
//! model.

use sysunc_prob::rng::StdRng;
use sysunc_prob::rng::SeedableRng;
use sysunc::orbital::{Integrator, NBodySystem, ObservationChannel, SurpriseMonitor};
use sysunc_bench::{header, section};

const STEPS_BEFORE: usize = 3_000;
const STEPS_AFTER: usize = 3_000;

/// Runs the scenario with a given model-building policy; returns
/// (pre-event mean surprisal, post-event mean surprisal, detection step).
fn run(
    reform_model: bool,
    better_epistemic: bool,
    seed: u64,
) -> Result<(f64, f64, Option<usize>), Box<dyn std::error::Error>> {
    let (m1, m2, d) = (1.0, 0.4, 2.0);
    let dt = NBodySystem::circular_period(m1, m2, d) / 2_000.0;
    let mut rng = StdRng::seed_from_u64(seed);
    let channel = ObservationChannel::new(0.02)?;
    let mut reality = NBodySystem::two_planets(m1, m2, d)?;
    let mut model = NBodySystem::two_planets(m1, m2, d)?;
    if better_epistemic {
        // "Refine" the wrong model: smaller integration steps (higher
        // numerical fidelity) — epistemic improvement of model accuracy.
        // (Implemented as a finer inner loop below.)
    }
    let substeps = if better_epistemic { 4 } else { 1 };
    let mut monitor = SurpriseMonitor::new(channel, 200)?;
    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut detection = None;
    for step in 0..STEPS_BEFORE + STEPS_AFTER {
        if step == STEPS_BEFORE {
            reality.inject_third_planet(0.3, 3.0)?;
            if reform_model {
                model.inject_third_planet(0.3, 3.0)?;
            }
        }
        Integrator::VelocityVerlet.step(&mut reality, dt);
        for _ in 0..substeps {
            Integrator::VelocityVerlet.step(&mut model, dt / substeps as f64);
        }
        let obs = channel.observe(reality.bodies[0].position, &mut rng);
        let s = monitor.record(model.bodies[0].position, obs);
        if step < STEPS_BEFORE {
            pre.push(s);
        } else {
            post.push(s);
            if detection.is_none() && monitor.alarm(3.0) {
                detection = Some(step - STEPS_BEFORE);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    Ok((mean(&pre), mean(&post), detection))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    header("E4", "Sec. III-C — ontological surprise and model reformulation");
    let channel_baseline = {
        let ch = ObservationChannel::new(0.02)?;
        SurpriseMonitor::new(ch, 1)?.baseline()
    };
    println!("  surprisal baseline (correct model): {channel_baseline:.2} nats\n");

    section("policies");
    println!(
        "  {:<34} {:>12} {:>12} {:>12}",
        "model policy", "pre (nats)", "post (nats)", "detect step"
    );
    for (name, reform, epi) in [
        ("stale 2-body model", false, false),
        ("epistemically refined 2-body", false, true),
        ("reformulated 3-body model", true, false),
    ] {
        let (pre, post, det) = run(reform, epi, 99)?;
        println!(
            "  {:<34} {:>12.2} {:>12.2} {:>12}",
            name,
            pre,
            post,
            det.map_or("none".to_string(), |d| d.to_string())
        );
    }
    println!("\n  Expected shape (paper Sec. III-C): the stale and refined 2-body");
    println!("  models both alarm shortly after the event — epistemic refinement");
    println!("  cannot remove ontological uncertainty — while the reformulated");
    println!("  3-body model never leaves baseline.");
    Ok(())
}
