//! Error types for the perception case study.

use std::fmt;

/// Errors from world, classifier, fusion and forecast construction.
#[derive(Debug, Clone, PartialEq)]
pub enum PerceptionError {
    /// The world model specification was invalid.
    InvalidWorld(String),
    /// The classifier specification was invalid.
    InvalidClassifier(String),
    /// The fusion system specification or inputs were invalid.
    InvalidFusion(String),
    /// A forecast parameter was invalid.
    InvalidForecast(String),
}

impl fmt::Display for PerceptionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PerceptionError::InvalidWorld(msg) => write!(f, "invalid world model: {msg}"),
            PerceptionError::InvalidClassifier(msg) => write!(f, "invalid classifier: {msg}"),
            PerceptionError::InvalidFusion(msg) => write!(f, "invalid fusion: {msg}"),
            PerceptionError::InvalidForecast(msg) => write!(f, "invalid forecast: {msg}"),
        }
    }
}

impl std::error::Error for PerceptionError {}

/// Convenience result alias for the perception crate.
pub type Result<T> = std::result::Result<T, PerceptionError>;
