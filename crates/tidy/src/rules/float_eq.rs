//! Rule `float-eq`: library code must not compare float-typed
//! expressions with `==` or `!=`. Exact float equality silently encodes
//! a zero-tolerance assumption; numerical code should compare against
//! an explicit tolerance (or use `total_cmp` for ordering).
//!
//! Detection is token-based but type-blind: a comparison is flagged
//! when either adjacent operand *is* float-shaped — a float literal
//! token (`0.5`, `1e-3`, `1f64`) or an `f64::`/`f32::` associated
//! constant. Comparisons of two bare identifiers are not flagged (no
//! type inference in a lexical lint), so the rule catches the common
//! literal-comparison case, not every possible one. A `==` inside a
//! string literal or a comment is not a comparison and cannot fire.
//! Intentional exact comparisons (e.g. checking a CDF saturates at
//! exactly 0 or 1) take `// tidy: allow(float-eq)`.

use crate::lexer::{Token, TokenKind};
use crate::{FileKind, Lint, SourceFile, Violation};

/// See the module docs.
pub struct FloatEq;

/// True when the operand whose *last* significant token sits at `i`
/// (scanning left from the operator) is float-shaped.
fn left_is_float(file: &SourceFile, i: usize) -> bool {
    let sig: Vec<&Token> =
        file.tokens()[..i].iter().rev().filter(|t| !t.is_comment()).take(3).collect();
    match sig.first() {
        Some(t) if t.kind == TokenKind::Float => true,
        // `f64::CONST` / `f32::CONST`: ident preceded by `::` preceded
        // by the float type name.
        Some(t) if t.kind == TokenKind::Ident => matches!(
            (sig.get(1), sig.get(2)),
            (Some(colons), Some(ty))
                if colons.kind == TokenKind::Punct
                    && file.text(colons) == "::"
                    && ty.kind == TokenKind::Ident
                    && matches!(file.text(ty), "f64" | "f32")
        ),
        _ => false,
    }
}

/// True when the operand starting at token index `i` (scanning right
/// from the operator) is float-shaped. A leading unary `-` is skipped.
fn right_is_float(file: &SourceFile, i: usize) -> bool {
    let mut sig = file.tokens()[i..].iter().filter(|t| !t.is_comment());
    let Some(mut first) = sig.next() else { return false };
    if first.kind == TokenKind::Punct && file.text(first) == "-" {
        match sig.next() {
            Some(t) => first = t,
            None => return false,
        }
    }
    match first.kind {
        TokenKind::Float => true,
        TokenKind::Ident if matches!(file.text(first), "f64" | "f32") => sig
            .next()
            .map(|t| t.kind == TokenKind::Punct && file.text(t) == "::")
            .unwrap_or(false),
        _ => false,
    }
}

impl Lint for FloatEq {
    fn name(&self) -> &'static str {
        "float-eq"
    }

    fn explain(&self) -> &'static str {
        "Float-typed expressions must not be compared with `==` or `!=` in \
         library code: exact float equality silently encodes a zero-tolerance \
         assumption that numerical error will violate. Compare against an \
         explicit tolerance, or use `total_cmp` for ordering. The check fires \
         when either operand is a float literal or an `f64::`/`f32::` \
         constant; intentional exact comparisons (saturation checks, IEEE \
         special cases) take `// tidy: allow(float-eq)` with a justification."
    }

    fn applies(&self, kind: FileKind) -> bool {
        kind == FileKind::RustLibrary
    }

    fn check(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        for (i, t) in file.tokens().iter().enumerate() {
            if t.kind != TokenKind::Punct || file.in_test_block(t.line) {
                continue;
            }
            let op = file.text(t);
            if op != "==" && op != "!=" {
                continue;
            }
            if left_is_float(file, i) || right_is_float(file, i + 1) {
                out.push(Violation {
                    file: file.path.clone(),
                    line: t.line,
                    rule: self.name(),
                    message: format!(
                        "float compared with `{op}`; compare against a tolerance instead"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Violation> {
        let file = SourceFile::new("crates/x/src/lib.rs", src, FileKind::RustLibrary);
        let mut out = Vec::new();
        FloatEq.check(&file, &mut out);
        out
    }

    #[test]
    fn literal_comparisons_fire() {
        assert_eq!(run("fn f(x: f64) -> bool { x == 0.5 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { 1.0 != x }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == f64::INFINITY }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == 1f64 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == -0.5 }").len(), 1);
        assert_eq!(run("fn f(x: f64) -> bool { x == 1e-3 }").len(), 1);
    }

    #[test]
    fn integer_and_identifier_comparisons_pass() {
        assert!(run("fn f(x: usize) -> bool { x == 5 }").is_empty());
        assert!(run("fn f(a: T, b: T) -> bool { a == b }").is_empty());
        assert!(run("fn f(s: &str) -> bool { s == \"0.5\" }").is_empty());
    }

    #[test]
    fn strings_and_doc_comments_mentioning_eq_pass() {
        // Former textual false-positive classes: `==` in prose or data.
        assert!(run("/// Checks whether `x == 0.5` holds approximately.\nfn f() {}\n")
            .is_empty());
        assert!(run("const RULE: &str = \"never write x == 0.5\";\n").is_empty());
        assert!(run("fn f() { /* x == 1.0 would be wrong */ }\n").is_empty());
    }

    #[test]
    fn tests_and_comments_are_exempt() {
        let src = "\
// exact: x == 0.5 is fine to mention
#[cfg(test)]
mod tests {
    fn t(x: f64) -> bool { x == 0.5 }
}
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn multiline_comparisons_fire() {
        assert_eq!(run("fn f(x: f64) -> bool {\n    x\n        == 0.5\n}\n").len(), 1);
    }
}
