/root/repo/target/debug/deps/exp_fta-f1a6c99b19564a43.d: crates/bench/src/bin/exp_fta.rs

/root/repo/target/debug/deps/exp_fta-f1a6c99b19564a43: crates/bench/src/bin/exp_fta.rs

crates/bench/src/bin/exp_fta.rs:
