//! Machine-readable output and the baseline ratchet.
//!
//! ## JSON findings schema (`sysunc-tidy --json`)
//!
//! The gate emits one JSON object, schema id `sysunc-tidy/3`:
//!
//! ```json
//! {
//!   "schema": "sysunc-tidy/3",
//!   "files_scanned": 139,
//!   "clean": true,
//!   "violations": [
//!     {"file": "crates/x/src/lib.rs", "line": 7, "rule": "panic",
//!      "resolution": "token", "message": "…"}
//!   ],
//!   "allowed":   [ …same shape… ],
//!   "baselined": [ …same shape… ]
//! }
//! ```
//!
//! `resolution` records which analysis layer produced each finding —
//! `"token"` (plain token-stream scan), `"module-graph"` (resolved
//! over the module tree / item graph), `"type-flow"` (derived from
//! the type-annotation dataflow), or `"cfg"` (control-flow-graph
//! dataflow: lock liveness, lock-order cycles, panic reachability) —
//! so downstream consumers can weigh provenance. Schema `/1` lacked
//! the field; `/2` added it; `/3` added the `cfg` value and the
//! `lock-order-cycle` / `panic-path` rules.
//!
//! `violations` are the findings that fail the gate; `allowed` were
//! acknowledged with `tidy: allow` comments; `baselined` were absorbed
//! by the ratchet file. The emitter is hand-rolled (the gate has zero
//! dependencies by design) and the output is asserted parseable by the
//! workspace's own JSON reader (`sysunc::prob::json`) in CI.
//!
//! ## Baseline ratchet (`tidy.baseline`)
//!
//! A baseline lets a newly tightened rule land without first fixing
//! every historical finding, while guaranteeing the count only ever
//! goes down. Each non-comment line budgets standing findings for one
//! file/rule pair, tab-separated:
//!
//! ```text
//! # comment
//! crates/legacy/src/lib.rs<TAB>panic<TAB>3
//! ```
//!
//! Up to `count` matching violations are downgraded to `baselined`;
//! any excess still fails the gate. When fewer findings fire than the
//! budget allows, the entry is *stale* and reported so the budget can
//! be ratcheted down — a baseline that only ever grows would be the
//! same silent epistemic debt the `unused-allow` rule exists to
//! prevent.

use std::collections::HashMap;

use crate::{Report, Violation};

/// Escapes `s` as the body of a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn violation_json(v: &Violation) -> String {
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"resolution\":\"{}\",\
         \"message\":\"{}\"}}",
        escape_json(&v.file.display().to_string()),
        v.line,
        escape_json(v.rule),
        escape_json(v.resolution),
        escape_json(&v.message)
    )
}

fn violations_json(vs: &[Violation]) -> String {
    let items: Vec<String> = vs.iter().map(violation_json).collect();
    format!("[{}]", items.join(","))
}

/// Renders a [`Report`] in the `sysunc-tidy/3` JSON findings format.
pub fn to_json(report: &Report) -> String {
    format!(
        "{{\"schema\":\"sysunc-tidy/3\",\"files_scanned\":{},\"clean\":{},\
         \"violations\":{},\"allowed\":{},\"baselined\":{}}}",
        report.files_scanned,
        report.clean(),
        violations_json(&report.violations),
        violations_json(&report.allowed),
        violations_json(&report.baselined)
    )
}

/// A parsed `tidy.baseline` ratchet file: per-(file, rule) budgets of
/// tolerated standing findings.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    entries: Vec<BaselineEntry>,
}

/// One budget line of the baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Workspace-relative path the budget applies to.
    pub file: String,
    /// Rule name the budget applies to.
    pub rule: String,
    /// How many standing findings are absorbed.
    pub count: usize,
}

/// A baseline entry whose budget exceeds the findings that actually
/// fired — the signal to ratchet the budget down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// The over-budgeted entry.
    pub entry: BaselineEntry,
    /// Findings that actually fired for the pair.
    pub actual: usize,
}

impl Baseline {
    /// Builds the baseline that budgets exactly the standing
    /// violations of `report`, one entry per (file, rule) pair, sorted
    /// — the generator behind `sysunc-tidy --write-baseline`. Applying
    /// the result to the same report absorbs every violation with no
    /// stale entries.
    pub fn from_report(report: &Report) -> Baseline {
        let mut counts: std::collections::BTreeMap<(String, String), usize> =
            std::collections::BTreeMap::new();
        for v in &report.violations {
            let key = (v.file.display().to_string(), v.rule.to_string());
            *counts.entry(key).or_insert(0) += 1;
        }
        Baseline {
            entries: counts
                .into_iter()
                .map(|((file, rule), count)| BaselineEntry { file, rule, count })
                .collect(),
        }
    }

    /// Renders the tab-separated file format [`Baseline::parse`]
    /// reads, with a header explaining the ratchet contract.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# sysunc-tidy baseline — generated by `sysunc-tidy --write-baseline`.\n\
             # Budgets standing findings per file/rule (file<TAB>rule<TAB>count);\n\
             # counts must only ratchet down. Regenerate instead of hand-editing.\n",
        );
        for e in &self.entries {
            out.push_str(&format!("{}\t{}\t{}\n", e.file, e.rule, e.count));
        }
        out
    }

    /// Parses the tab-separated baseline format. Blank lines and `#`
    /// comments are ignored; malformed lines are errors (a baseline
    /// that silently drops entries would un-ratchet the gate).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (no, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (file, rule, count) = match (parts.next(), parts.next(), parts.next()) {
                (Some(f), Some(r), Some(c)) => (f, r, c),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `file<TAB>rule<TAB>count`, got `{line}`",
                        no + 1
                    ))
                }
            };
            let count: usize = count
                .trim()
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", no + 1))?;
            entries.push(BaselineEntry {
                file: file.trim().to_string(),
                rule: rule.trim().to_string(),
                count,
            });
        }
        Ok(Baseline { entries })
    }

    /// True when the baseline has no budget lines.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Applies the ratchet to `report`: up to each entry's budget of
    /// matching standing violations move to `report.baselined`.
    /// Returns the stale entries whose budgets exceed reality.
    pub fn apply(&self, report: &mut Report) -> Vec<StaleEntry> {
        let mut budget: HashMap<(&str, &str), usize> = HashMap::new();
        for e in &self.entries {
            *budget.entry((e.file.as_str(), e.rule.as_str())).or_insert(0) += e.count;
        }
        let mut spent: HashMap<(&str, &str), usize> = HashMap::new();
        let mut standing = Vec::new();
        for v in report.violations.drain(..) {
            let key = (v.file.to_str().unwrap_or(""), v.rule);
            let allowance = budget.get(&key).copied().unwrap_or(0);
            let used = spent.get(&key).copied().unwrap_or(0);
            if used < allowance {
                // Keys borrow from the baseline, not the moved violation.
                let owned_key = self
                    .entries
                    .iter()
                    .find(|e| e.file == key.0 && e.rule == key.1)
                    .map(|e| (e.file.as_str(), e.rule.as_str()));
                if let Some(k) = owned_key {
                    *spent.entry(k).or_insert(0) += 1;
                }
                report.baselined.push(v);
            } else {
                standing.push(v);
            }
        }
        report.violations = standing;
        let mut stale = Vec::new();
        for e in &self.entries {
            let key = (e.file.as_str(), e.rule.as_str());
            let used = spent.get(&key).copied().unwrap_or(0);
            let total = budget.get(&key).copied().unwrap_or(0);
            if used < total {
                stale.push(StaleEntry { entry: e.clone(), actual: used });
            }
        }
        stale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn v(file: &str, line: usize, rule: &'static str, msg: &str) -> Violation {
        Violation { file: PathBuf::from(file), line, rule, resolution: "token", message: msg.into() }
    }

    #[test]
    fn json_output_has_schema_counts_and_escaping() {
        let report = Report {
            violations: vec![v("a/b.rs", 3, "panic", "found `x.unwrap()` \"quoted\"")],
            allowed: vec![v("a/b.rs", 9, "float-eq", "tab\there")],
            baselined: vec![],
            files_scanned: 2,
        };
        let json = to_json(&report);
        assert!(json.starts_with("{\"schema\":\"sysunc-tidy/3\""));
        assert!(json.contains("\"resolution\":\"token\""));
        assert!(json.contains("\"files_scanned\":2"));
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("\"baselined\":[]"));
    }

    #[test]
    fn baseline_parses_comments_blanks_and_entries() {
        let text = "# header\n\ncrates/x/src/lib.rs\tpanic\t2\n";
        let b = Baseline::parse(text).expect("valid");
        assert!(!b.is_empty());
        assert_eq!(
            b,
            Baseline {
                entries: vec![BaselineEntry {
                    file: "crates/x/src/lib.rs".into(),
                    rule: "panic".into(),
                    count: 2
                }]
            }
        );
        assert!(Baseline::parse("no tabs here").is_err());
        assert!(Baseline::parse("a\tb\tnot-a-number").is_err());
    }

    #[test]
    fn baseline_absorbs_up_to_budget_and_reports_stale() {
        let b = Baseline::parse("a.rs\tpanic\t2\nb.rs\tdoc\t1\n").expect("valid");
        let mut report = Report {
            violations: vec![
                v("a.rs", 1, "panic", "one"),
                v("a.rs", 2, "panic", "two"),
                v("a.rs", 3, "panic", "three"),
                v("a.rs", 4, "doc", "unrelated rule"),
            ],
            ..Report::default()
        };
        let stale = b.apply(&mut report);
        assert_eq!(report.baselined.len(), 2, "two absorbed by the budget");
        assert_eq!(report.violations.len(), 2, "excess panic + unrelated doc stand");
        assert_eq!(stale.len(), 1, "the b.rs budget went unused");
        assert_eq!(stale[0].entry.file, "b.rs");
        assert_eq!(stale[0].actual, 0);
    }

    #[test]
    fn write_then_check_round_trips_clean() {
        // The --write-baseline contract: generating a baseline from a
        // dirty report and applying it to the same findings absorbs
        // everything, with no stale entries left over.
        let mk_report = || Report {
            violations: vec![
                v("crates/x/src/lib.rs", 1, "panic", "one"),
                v("crates/x/src/lib.rs", 5, "panic", "two"),
                v("crates/y/src/a.rs", 2, "doc", "three"),
            ],
            ..Report::default()
        };
        let baseline = Baseline::from_report(&mk_report());
        let text = baseline.render();
        assert!(text.starts_with('#'), "rendered baseline carries its header");
        assert!(text.contains("crates/x/src/lib.rs\tpanic\t2\n"));
        assert!(text.contains("crates/y/src/a.rs\tdoc\t1\n"));
        let reparsed = Baseline::parse(&text).expect("rendered baseline parses");
        assert_eq!(reparsed, baseline, "render/parse round-trip is exact");
        let mut report = mk_report();
        let stale = reparsed.apply(&mut report);
        assert!(report.violations.is_empty(), "all findings absorbed");
        assert_eq!(report.baselined.len(), 3);
        assert!(stale.is_empty(), "a freshly written baseline is never stale");
        assert!(report.clean());
    }

    #[test]
    fn from_report_of_a_clean_report_is_empty() {
        let baseline = Baseline::from_report(&Report::default());
        assert!(baseline.is_empty());
        let reparsed = Baseline::parse(&baseline.render()).expect("parses");
        assert!(reparsed.is_empty());
    }

    #[test]
    fn empty_baseline_is_a_no_op() {
        let b = Baseline::parse("# only comments\n").expect("valid");
        assert!(b.is_empty());
        let mut report =
            Report { violations: vec![v("a.rs", 1, "panic", "x")], ..Report::default() };
        let stale = b.apply(&mut report);
        assert!(stale.is_empty());
        assert_eq!(report.violations.len(), 1);
        assert!(report.baselined.is_empty());
    }
}
