//! Bayesian network structure: DAG of discrete nodes with conditional
//! probability tables — the graphical model of the paper's Fig. 4.

use crate::error::{BnError, Result};
use crate::factor::Factor;
use sysunc_prob::json::{field, obj, FromJson, Json, JsonError, ToJson};

/// A node of the network: name, state names, parents and CPT.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Node name (unique in the network).
    pub name: String,
    /// State names (the node's sample space).
    pub states: Vec<String>,
    /// Parent node ids.
    pub parents: Vec<usize>,
    /// CPT rows: one row per parent-state combination (row index iterates
    /// the *last* parent fastest), each row a distribution over `states`.
    pub cpt: Vec<Vec<f64>>,
}

/// A discrete Bayesian network.
///
/// # Examples
///
/// The paper's Fig. 4 perception chain:
///
/// ```
/// use sysunc_bayesnet::BayesNet;
///
/// let mut bn = BayesNet::new();
/// let gt = bn.add_root("ground_truth", vec!["car", "pedestrian", "unknown"],
///                      vec![0.6, 0.3, 0.1])?;
/// bn.add_node("perception", vec!["car", "pedestrian", "car_pedestrian", "none"],
///             vec![gt], vec![
///     vec![0.9, 0.005, 0.05, 0.045],
///     vec![0.005, 0.9, 0.05, 0.045],
///     vec![0.0, 0.0, 2.0 / 9.0, 7.0 / 9.0], // Table I row renormalized
/// ])?;
/// let marginal = bn.marginal("perception", &[])?;
/// assert!((marginal[0] - 0.5415).abs() < 1e-12);
/// # Ok::<(), sysunc_bayesnet::BnError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BayesNet {
    nodes: Vec<Node>,
}

impl BayesNet {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a root (parentless) node with the given prior.
    ///
    /// # Errors
    ///
    /// See [`BayesNet::add_node`].
    pub fn add_root<S: Into<String>, T: Into<String>>(
        &mut self,
        name: S,
        states: Vec<T>,
        prior: Vec<f64>,
    ) -> Result<usize> {
        self.add_node(name, states, vec![], vec![prior])
    }

    /// Adds a node with parents and a CPT (one row per parent-state
    /// combination, last parent fastest). Returns the node id.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::InvalidNode`] for duplicate names, empty states,
    /// unknown parents (which also enforces acyclicity, since parents must
    /// already exist) or malformed CPTs.
    pub fn add_node<S: Into<String>, T: Into<String>>(
        &mut self,
        name: S,
        states: Vec<T>,
        parents: Vec<usize>,
        cpt: Vec<Vec<f64>>,
    ) -> Result<usize> {
        let name = name.into();
        let states: Vec<String> = states.into_iter().map(Into::into).collect();
        if states.is_empty() {
            return Err(BnError::InvalidNode(format!("node '{name}' has no states")));
        }
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(BnError::InvalidNode(format!("duplicate node name '{name}'")));
        }
        // Parents must already exist: insertion order is a topological
        // order, so the graph is a DAG by construction.
        for &p in &parents {
            if p >= self.nodes.len() {
                return Err(BnError::InvalidNode(format!(
                    "node '{name}': parent id {p} does not exist"
                )));
            }
        }
        let rows: usize = parents.iter().map(|&p| self.nodes[p].states.len()).product();
        if cpt.len() != rows {
            return Err(BnError::InvalidNode(format!(
                "node '{name}': expected {rows} CPT rows, got {}",
                cpt.len()
            )));
        }
        for (i, row) in cpt.iter().enumerate() {
            if row.len() != states.len() {
                return Err(BnError::InvalidNode(format!(
                    "node '{name}': CPT row {i} has {} entries, expected {}",
                    row.len(),
                    states.len()
                )));
            }
            if row.iter().any(|&p| p < 0.0 || !p.is_finite()) {
                return Err(BnError::InvalidNode(format!(
                    "node '{name}': CPT row {i} has negative entries"
                )));
            }
            let total: f64 = row.iter().sum();
            if (total - 1.0).abs() > 1e-9 {
                return Err(BnError::InvalidNode(format!(
                    "node '{name}': CPT row {i} sums to {total}, expected 1"
                )));
            }
        }
        self.nodes.push(Node { name, states, parents, cpt });
        Ok(self.nodes.len() - 1)
    }

    /// Replaces a node's CPT without re-validation (callers validate).
    pub(crate) fn set_cpt_unchecked(&mut self, node: usize, cpt: Vec<Vec<f64>>) {
        self.nodes[node].cpt = cpt;
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The nodes in insertion (topological) order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Node id by name.
    pub fn node_id(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// State index of a node by name.
    pub fn state_id(&self, node: usize, state: &str) -> Option<usize> {
        self.nodes.get(node)?.states.iter().position(|s| s == state)
    }

    /// The CPT of a node as a factor over `parents ∪ {node}`.
    pub(crate) fn node_factor(&self, id: usize) -> Factor {
        let node = &self.nodes[id];
        let mut vars = node.parents.clone();
        vars.push(id);
        let mut card: Vec<usize> =
            node.parents.iter().map(|&p| self.nodes[p].states.len()).collect();
        card.push(node.states.len());
        // CPT rows iterate last parent fastest — matching row-major order
        // with the node's own states innermost.
        let values: Vec<f64> = node.cpt.iter().flatten().copied().collect();
        Factor::new(vars, card, values).expect("validated at construction") // tidy: allow(panic)
    }

    /// Resolves `(node name, state name)` pairs to ids.
    ///
    /// # Errors
    ///
    /// Returns [`BnError::UnknownNode`] / [`BnError::UnknownState`].
    pub fn resolve_evidence(&self, evidence: &[(&str, &str)]) -> Result<Vec<(usize, usize)>> {
        evidence
            .iter()
            .map(|(node, state)| {
                let nid = self
                    .node_id(node)
                    .ok_or_else(|| BnError::UnknownNode((*node).to_string()))?;
                let sid = self
                    .state_id(nid, state)
                    .ok_or_else(|| BnError::UnknownState((*state).to_string()))?;
                Ok((nid, sid))
            })
            .collect()
    }

    /// Posterior marginal of a node given evidence, by variable
    /// elimination. Convenience wrapper around
    /// [`crate::infer::VariableElimination`].
    ///
    /// # Errors
    ///
    /// Propagates resolution and inference errors.
    pub fn marginal(&self, node: &str, evidence: &[(&str, &str)]) -> Result<Vec<f64>> {
        let nid = self.node_id(node).ok_or_else(|| BnError::UnknownNode(node.to_string()))?;
        let ev = self.resolve_evidence(evidence)?;
        crate::infer::VariableElimination::new(self).marginal(nid, &ev)
    }

    /// The probability of the evidence itself, `P(e)`.
    ///
    /// # Errors
    ///
    /// Propagates resolution and inference errors.
    /// Range: `[0, 1]` — a normalized probability of the evidence.
    pub fn evidence_probability(&self, evidence: &[(&str, &str)]) -> Result<f64> {
        let ev = self.resolve_evidence(evidence)?;
        crate::infer::VariableElimination::new(self).evidence_probability(&ev)
    }
}

impl ToJson for Node {
    fn to_json(&self) -> Json {
        let cpt: Vec<Json> = self
            .cpt
            .iter()
            .map(|row| Json::Arr(row.iter().map(|&p| Json::Num(p)).collect()))
            .collect();
        obj([
            ("name", self.name.to_json()),
            ("states", self.states.to_json()),
            ("parents", self.parents.to_json()),
            ("cpt", Json::Arr(cpt)),
        ])
    }
}

impl ToJson for BayesNet {
    fn to_json(&self) -> Json {
        obj([("nodes", self.nodes.to_json())])
    }
}

impl FromJson for BayesNet {
    /// Rebuilds the network through [`BayesNet::add_node`], so every CPT is
    /// re-validated (row counts, normalization, parent existence) on load.
    fn from_json(v: &Json) -> std::result::Result<Self, JsonError> {
        let nodes = v.get("nodes").and_then(Json::as_arr).ok_or_else(|| JsonError::missing("nodes"))?;
        let mut bn = BayesNet::new();
        for node in nodes {
            let name: String = field(node, "name")?;
            let states: Vec<String> = field(node, "states")?;
            let parents: Vec<usize> = field(node, "parents")?;
            let cpt_json = node.get("cpt").and_then(Json::as_arr).ok_or_else(|| JsonError::missing("cpt"))?;
            let cpt = cpt_json
                .iter()
                .map(|row| Vec::<f64>::from_json(row))
                .collect::<std::result::Result<Vec<Vec<f64>>, JsonError>>()?;
            bn.add_node(name, states, parents, cpt)
                .map_err(|e| JsonError::decode(e.to_string()))?;
        }
        Ok(bn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The textbook sprinkler network (Pearl).
    pub(crate) fn sprinkler() -> BayesNet {
        let mut bn = BayesNet::new();
        let rain = bn.add_root("rain", vec!["yes", "no"], vec![0.2, 0.8]).unwrap();
        let sprinkler = bn
            .add_node(
                "sprinkler",
                vec!["on", "off"],
                vec![rain],
                vec![vec![0.01, 0.99], vec![0.4, 0.6]],
            )
            .unwrap();
        bn.add_node(
            "grass_wet",
            vec!["yes", "no"],
            vec![sprinkler, rain],
            vec![
                vec![0.99, 0.01], // sprinkler on, rain yes
                vec![0.9, 0.1],   // on, no
                vec![0.8, 0.2],   // off, yes
                vec![0.0, 1.0],   // off, no
            ],
        )
        .unwrap();
        bn
    }

    #[test]
    fn validation_rules() {
        let mut bn = BayesNet::new();
        assert!(bn.add_root("a", vec!["x", "y"], vec![0.5, 0.6]).is_err());
        assert!(bn.add_root::<_, String>("a", vec![], vec![]).is_err());
        let a = bn.add_root("a", vec!["x", "y"], vec![0.5, 0.5]).unwrap();
        assert!(bn.add_root("a", vec!["x", "y"], vec![0.5, 0.5]).is_err()); // dup
        assert!(bn.add_node("b", vec!["u"], vec![5], vec![vec![1.0]]).is_err()); // parent
        assert!(bn.add_node("b", vec!["u", "v"], vec![a], vec![vec![1.0, 0.0]]).is_err()); // rows
        assert!(bn
            .add_node("b", vec!["u", "v"], vec![a], vec![vec![1.0, 0.0], vec![-0.5, 1.5]])
            .is_err());
    }

    #[test]
    fn sprinkler_prior_marginals() {
        let bn = sprinkler();
        // P(grass wet) = Σ P(R)P(S|R)P(W|S,R)
        // = 0.2*(0.01*0.99 + 0.99*0.8) + 0.8*(0.4*0.9 + 0.6*0.0)
        let expect = 0.2 * (0.01 * 0.99 + 0.99 * 0.8) + 0.8 * (0.4 * 0.9);
        let m = bn.marginal("grass_wet", &[]).unwrap();
        assert!((m[0] - expect).abs() < 1e-12, "{} vs {expect}", m[0]);
    }

    #[test]
    fn sprinkler_posterior_explaining_away() {
        let bn = sprinkler();
        // Classic check: P(rain | grass wet) and explaining away by the
        // sprinkler.
        let p_rain_wet = bn.marginal("rain", &[("grass_wet", "yes")]).unwrap()[0];
        assert!(p_rain_wet > 0.2, "wet grass raises rain belief");
        let p_rain_wet_sprinkler =
            bn.marginal("rain", &[("grass_wet", "yes"), ("sprinkler", "on")]).unwrap()[0];
        assert!(
            p_rain_wet_sprinkler < p_rain_wet,
            "knowing the sprinkler was on explains the wet grass away"
        );
    }

    #[test]
    fn evidence_probability() {
        let bn = sprinkler();
        let p = bn.evidence_probability(&[("rain", "yes")]).unwrap();
        assert!((p - 0.2).abs() < 1e-12);
        let p_all = bn.evidence_probability(&[]).unwrap();
        assert!((p_all - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_names_error() {
        let bn = sprinkler();
        assert!(matches!(bn.marginal("nothere", &[]), Err(BnError::UnknownNode(_))));
        assert!(matches!(
            bn.marginal("rain", &[("rain", "maybe")]),
            Err(BnError::UnknownState(_))
        ));
    }

    #[test]
    fn impossible_evidence_is_flagged() {
        let mut bn = BayesNet::new();
        let a = bn.add_root("a", vec!["x", "y"], vec![1.0, 0.0]).unwrap();
        bn.add_node(
            "b",
            vec!["u", "v"],
            vec![a],
            vec![vec![1.0, 0.0], vec![0.5, 0.5]],
        )
        .unwrap();
        // b = v is impossible: requires a = y which has prior 0.
        assert!(matches!(
            bn.marginal("a", &[("b", "v")]),
            Err(BnError::InconsistentEvidence)
        ));
    }
}
